//! Interval entailment — the small trusted core behind abstract-interpretation
//! guard discharge.
//!
//! An [`AbsEnv`] maps *atoms* (variables or opaque subterms) to value
//! abstractions: numeric intervals tagged with the value's kind
//! (`nat`/`int`/machine word), three-valued booleans, and pointer nullness —
//! plus a set of expressions assumed true (*facts*, used to re-match repeated
//! `is_valid` obligations syntactically). [`AbsEnv::assume`] refines the
//! environment by a hypothesis; [`AbsEnv::eval`] evaluates an expression
//! bottom-up, *hypothesis-aware*: the right side of `∧`/`⟶` is evaluated
//! under the left side assumed, so the `if (a+b<a)` wrap-check idiom and
//! guards of the form `c ⟶ g` discharge without case analysis.
//!
//! Three consumers share this engine:
//!
//! * the `absint` phase builds flow-sensitive environments and asks whether
//!   each guard holds,
//! * the kernel's `AbsintDischarge` rule re-validates a discharge from its
//!   recorded hypothesis alone ([`entails`]) — the independent-checker story,
//! * `vcg::auto` tries [`prove`] before invoking the decision procedures.
//!
//! Everything here is *conservative*: `eval` returning `Bool(Some(true))`
//! means the expression is true in every concrete state satisfying the
//! environment; any unsupported construct degrades to `Top`/unknown.

use std::collections::HashMap;

use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::names::Symbol;
use ir::ty::{Signedness, Ty, TypeEnv, Width};
use ir::value::Value;

/// A closed integer interval with optional (= infinite) endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Iv {
    /// Lower bound (`None` = −∞; for `nat`-kinded values, 0).
    pub lo: Option<i128>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i128>,
}

impl Iv {
    /// The unbounded interval.
    #[must_use]
    pub fn top() -> Iv {
        Iv { lo: None, hi: None }
    }

    /// A point interval.
    #[must_use]
    pub fn point(v: i128) -> Iv {
        Iv {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// A bounded interval.
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Iv {
        Iv {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// Is the interval empty (contradictory bounds)?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// Intersection (meet).
    #[must_use]
    pub fn meet(&self, other: &Iv) -> Iv {
        Iv {
            lo: opt_max(self.lo, other.lo),
            hi: opt_min(self.hi, other.hi),
        }
    }

    /// Convex hull (join).
    #[must_use]
    pub fn join(&self, other: &Iv) -> Iv {
        Iv {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Is `self` contained in `[lo, hi]`?
    #[must_use]
    pub fn within(&self, lo: i128, hi: i128) -> bool {
        matches!(self.lo, Some(l) if l >= lo) && matches!(self.hi, Some(h) if h <= hi)
    }
}

fn opt_max(a: Option<i128>, b: Option<i128>) -> Option<i128> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (x, None) | (None, x) => x,
    }
}

fn opt_min(a: Option<i128>, b: Option<i128>) -> Option<i128> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

/// The kind of a numeric abstraction: which concrete semantics its interval
/// bounds refer to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumKind {
    /// Ideal natural (`unat`-abstracted): implicitly ≥ 0, subtraction is
    /// truncated (monus).
    Nat,
    /// Ideal integer (`sint`-abstracted): exact arithmetic.
    Int,
    /// A machine word of the given shape; the interval bounds the word's
    /// *semantic* value (two's-complement for signed words).
    Word(Width, Signedness),
}

impl NumKind {
    /// The representable range of this kind (`None` endpoints = unbounded).
    #[must_use]
    pub fn range(self) -> Iv {
        match self {
            NumKind::Nat => Iv {
                lo: Some(0),
                hi: None,
            },
            NumKind::Int => Iv::top(),
            NumKind::Word(w, s) => word_range(w, s),
        }
    }

    fn clamp(self, iv: Iv) -> Iv {
        iv.meet(&self.range())
    }
}

/// The semantic value range of a word shape.
#[must_use]
pub fn word_range(w: Width, s: Signedness) -> Iv {
    let bits = i128::from(w.bits());
    match s {
        Signedness::Unsigned => Iv::new(0, (1i128 << bits) - 1),
        Signedness::Signed => Iv::new(-(1i128 << (bits - 1)), (1i128 << (bits - 1)) - 1),
    }
}

/// An abstract value.
#[derive(Clone, Debug, PartialEq)]
pub enum AbsVal {
    /// No information.
    Top,
    /// A numeric value of the given kind within the interval.
    Num(NumKind, Iv),
    /// A three-valued boolean.
    Bool(Option<bool>),
    /// A pointer: `Some(true)` = definitely NULL, `Some(false)` =
    /// definitely non-NULL.
    Ptr(Option<bool>),
}

impl AbsVal {
    /// The interval of a numeric abstraction.
    #[must_use]
    pub fn iv(&self) -> Option<(NumKind, Iv)> {
        match self {
            AbsVal::Num(k, iv) => Some((*k, *iv)),
            _ => None,
        }
    }

    /// Join (least upper bound).
    #[must_use]
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Num(k1, a), AbsVal::Num(k2, b)) if k1 == k2 => AbsVal::Num(*k1, a.join(b)),
            (AbsVal::Bool(a), AbsVal::Bool(b)) if a == b => AbsVal::Bool(*a),
            (AbsVal::Ptr(a), AbsVal::Ptr(b)) if a == b => AbsVal::Ptr(*a),
            (AbsVal::Bool(_), AbsVal::Bool(_)) => AbsVal::Bool(None),
            (AbsVal::Ptr(_), AbsVal::Ptr(_)) => AbsVal::Ptr(None),
            _ => AbsVal::Top,
        }
    }

    /// The abstraction of a literal value.
    #[must_use]
    pub fn of_value(v: &Value) -> AbsVal {
        match v {
            Value::Bool(b) => AbsVal::Bool(Some(*b)),
            Value::Nat(n) => n
                .to_u128()
                .and_then(|u| i128::try_from(u).ok())
                .map_or(AbsVal::Num(NumKind::Nat, NumKind::Nat.range()), |u| {
                    AbsVal::Num(NumKind::Nat, Iv::point(u))
                }),
            Value::Int(i) => i.to_i128().map_or(AbsVal::Num(NumKind::Int, Iv::top()), |i| {
                AbsVal::Num(NumKind::Int, Iv::point(i))
            }),
            Value::Word(w) => {
                let k = NumKind::Word(w.width(), w.sign());
                let sem = match w.sign() {
                    Signedness::Unsigned => i128::from(w.bits()),
                    Signedness::Signed => i128::from(w.signed_value()),
                };
                AbsVal::Num(k, Iv::point(sem))
            }
            Value::Ptr(p) => AbsVal::Ptr(Some(p.is_null())),
            _ => AbsVal::Top,
        }
    }

    /// The coarsest abstraction consistent with a semantic type (used to
    /// seed parameter environments from signatures).
    #[must_use]
    pub fn of_ty(ty: &Ty) -> AbsVal {
        match ty {
            Ty::Bool => AbsVal::Bool(None),
            Ty::Word(w, s) => AbsVal::Num(NumKind::Word(*w, *s), word_range(*w, *s)),
            Ty::Nat => AbsVal::Num(NumKind::Nat, NumKind::Nat.range()),
            Ty::Int => AbsVal::Num(NumKind::Int, Iv::top()),
            Ty::Ptr(_) => AbsVal::Ptr(None),
            _ => AbsVal::Top,
        }
    }
}

/// One recorded fact: an expression assumed true, with precomputed kill
/// metadata.
#[derive(Clone, Debug, PartialEq)]
struct Fact {
    expr: Expr,
    reads_heap: bool,
    reads_global: bool,
    is_validity: bool,
}

/// One refined atom bound: an opaque subterm (not a plain `Var`) with a
/// tightened interval, keyed by structural equality.
#[derive(Clone, Debug, PartialEq)]
struct AtomBound {
    expr: Expr,
    kind: NumKind,
    iv: Iv,
    reads_heap: bool,
    reads_global: bool,
}

/// The abstract environment: per-variable abstractions, refined opaque-atom
/// bounds, and assumed facts. Deterministic by construction (`BTreeMap`
/// over spelling-ordered [`Symbol`]s; facts in insertion order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AbsEnv {
    vars: std::collections::BTreeMap<Symbol, AbsVal>,
    atoms: Vec<AtomBound>,
    facts: Vec<Fact>,
    /// Structure layouts for field-width lookups (optional precision).
    tenv: Option<TypeEnv>,
}

impl AbsEnv {
    /// An empty environment.
    #[must_use]
    pub fn new() -> AbsEnv {
        AbsEnv::default()
    }

    /// Attaches structure layouts (field reads gain width bounds).
    #[must_use]
    pub fn with_tenv(mut self, tenv: TypeEnv) -> AbsEnv {
        self.tenv = Some(tenv);
        self
    }

    /// Binds variable `v` to `val`, dropping facts and bounds that mention
    /// the old binding.
    pub fn bind(&mut self, v: impl Into<Symbol>, val: AbsVal) {
        let v: Symbol = v.into();
        let name = v.to_string();
        self.facts.retain(|f| !f.expr.free_vars().contains(&name));
        self.atoms.retain(|a| !a.expr.free_vars().contains(&name));
        self.vars.insert(v, val);
    }

    /// The current abstraction of variable `v`.
    #[must_use]
    pub fn var(&self, v: &Symbol) -> AbsVal {
        self.vars.get(v).cloned().unwrap_or(AbsVal::Top)
    }

    /// Iterates the tracked variables (spelling order).
    pub fn vars(&self) -> impl Iterator<Item = (&Symbol, &AbsVal)> {
        self.vars.iter()
    }

    /// Iterates the recorded facts (insertion order).
    pub fn facts(&self) -> impl Iterator<Item = &Expr> {
        self.facts.iter().map(|f| &f.expr)
    }

    /// Iterates the refined opaque-atom bounds (insertion order): the
    /// expression, its numeric kind, and the tightened interval.
    pub fn atom_bounds(&self) -> impl Iterator<Item = (&Expr, NumKind, Iv)> {
        self.atoms.iter().map(|a| (&a.expr, a.kind, a.iv))
    }

    /// Drops knowledge invalidated by a typed-heap **data** write: heap
    /// reads go stale, but `is_valid` facts survive (validity is untouched
    /// by data writes — paper Sec 4.4; the model has no allocation).
    pub fn heap_write(&mut self) {
        self.facts.retain(|f| !f.reads_heap || f.is_validity);
        self.atoms.retain(|a| !a.reads_heap);
    }

    /// Drops knowledge invalidated by a global-variable write.
    pub fn global_write(&mut self) {
        self.facts.retain(|f| !f.reads_global);
        self.atoms.retain(|a| !a.reads_global);
    }

    /// Drops knowledge invalidated by an opaque call: globals and heap data
    /// may change; validity facts survive (callees cannot allocate or
    /// retype — `TagRegion` never appears above the byte level).
    pub fn call(&mut self) {
        self.facts
            .retain(|f| (!f.reads_heap || f.is_validity) && !f.reads_global);
        self.atoms.retain(|a| !a.reads_heap && !a.reads_global);
    }

    /// Drops *all* state-dependent knowledge (byte-level effects).
    pub fn state_blast(&mut self) {
        self.facts.retain(|f| !f.reads_heap && !f.reads_global);
        self.atoms.retain(|a| !a.reads_heap && !a.reads_global);
    }

    /// Join with another environment (control-flow merge): variable-wise
    /// joins, facts and atom bounds by intersection (hulled).
    #[must_use]
    pub fn join(&self, other: &AbsEnv) -> AbsEnv {
        let mut vars = std::collections::BTreeMap::new();
        for (v, a) in &self.vars {
            let b = other.var(v);
            vars.insert(*v, a.join(&b));
        }
        // Variables only known on `other`'s side join with Top — drop them.
        let facts = self
            .facts
            .iter()
            .filter(|f| other.facts.iter().any(|g| g.expr == f.expr))
            .cloned()
            .collect();
        let atoms = self
            .atoms
            .iter()
            .filter_map(|a| {
                other
                    .atoms
                    .iter()
                    .find(|b| b.expr == a.expr && b.kind == a.kind)
                    .map(|b| AtomBound {
                        iv: a.iv.join(&b.iv),
                        ..a.clone()
                    })
            })
            .collect();
        AbsEnv {
            vars,
            atoms,
            facts,
            tenv: self.tenv.clone(),
        }
    }

    /// Widen against a previous iterate: any variable whose interval still
    /// moved widens to its kind's full range (classic interval widening at
    /// loop heads).
    #[must_use]
    pub fn widen(&self, prev: &AbsEnv) -> AbsEnv {
        let mut out = self.clone();
        for (v, val) in &mut out.vars {
            if prev.var(v) != *val {
                if let AbsVal::Num(k, _) = val {
                    *val = AbsVal::Num(*k, k.range());
                } else {
                    *val = match val {
                        AbsVal::Bool(_) => AbsVal::Bool(None),
                        AbsVal::Ptr(_) => AbsVal::Ptr(None),
                        _ => AbsVal::Top,
                    };
                }
            }
        }
        out
    }

    /// Does `e` definitely hold in every state satisfying this environment?
    #[must_use]
    pub fn holds(&self, e: &Expr) -> bool {
        self.eval(e) == AbsVal::Bool(Some(true))
    }

    /// Is `e` definitely false in every state satisfying this environment?
    #[must_use]
    pub fn refutes(&self, e: &Expr) -> bool {
        self.eval(e) == AbsVal::Bool(Some(false))
    }

    // ---- evaluation -------------------------------------------------------

    /// Evaluates `e` to an abstract value.
    #[must_use]
    pub fn eval(&self, e: &Expr) -> AbsVal {
        // Assumed facts match first: a repeated guard expression is true by
        // fiat, whatever its structure.
        if self.facts.iter().any(|f| f.expr == *e) {
            return AbsVal::Bool(Some(true));
        }
        if let Some(a) = self.atoms.iter().find(|a| a.expr == *e) {
            return AbsVal::Num(a.kind, a.iv);
        }
        match e {
            Expr::Lit(v) => AbsVal::of_value(v),
            Expr::Var(v) => self.var(v),
            Expr::UnOp(op, a) => self.eval_unop(*op, a),
            Expr::BinOp(op, a, b) => self.eval_binop(*op, a, b),
            Expr::Cast(k, a) => self.eval_cast(k, a),
            Expr::Ite(c, t, f) => match self.eval(c) {
                AbsVal::Bool(Some(true)) => self.refined(c).eval(t),
                AbsVal::Bool(Some(false)) => self.refined_not(c).eval(f),
                _ => self.refined(c).eval(t).join(&self.refined_not(c).eval(f)),
            },
            Expr::IsValid(_, p) => match self.eval(p) {
                // `is_valid` of NULL is false by definition.
                AbsVal::Ptr(Some(true)) => AbsVal::Bool(Some(false)),
                _ => AbsVal::Bool(None),
            },
            Expr::ReadHeap(ty, _) => AbsVal::of_ty(ty),
            Expr::Field(base, fname) => self.field_abs(base, fname),
            Expr::Proj(_, _) | Expr::Tuple(_) => AbsVal::Top,
            _ => AbsVal::Top,
        }
    }

    /// Field select: bound by the field's declared type when layouts are
    /// available.
    fn field_abs(&self, base: &Expr, fname: &str) -> AbsVal {
        let Some(tenv) = &self.tenv else {
            return AbsVal::Top;
        };
        let sname = match base {
            Expr::ReadHeap(Ty::Struct(n), _) => n.clone(),
            _ => return AbsVal::Top,
        };
        tenv.struct_def(&sname)
            .and_then(|d| d.fields.iter().find(|f| f.name == fname))
            .map_or(AbsVal::Top, |f| AbsVal::of_ty(&f.ty))
    }

    fn eval_unop(&self, op: UnOp, a: &Expr) -> AbsVal {
        let va = self.eval(a);
        match op {
            UnOp::Not => match va {
                AbsVal::Bool(b) => AbsVal::Bool(b.map(|x| !x)),
                _ => AbsVal::Bool(None),
            },
            UnOp::Neg => match va {
                AbsVal::Num(NumKind::Int, iv) => AbsVal::Num(
                    NumKind::Int,
                    Iv {
                        lo: iv.hi.map(|h| -h),
                        hi: iv.lo.map(|l| -l),
                    },
                ),
                AbsVal::Num(k @ NumKind::Word(..), iv) => {
                    // Wrapping negation: exact when no endpoint wraps.
                    let neg = Iv {
                        lo: iv.hi.map(|h| -h),
                        hi: iv.lo.map(|l| -l),
                    };
                    if !neg.is_empty() && iv_subset(&neg, &k.range()) {
                        AbsVal::Num(k, neg)
                    } else {
                        AbsVal::Num(k, k.range())
                    }
                }
                _ => AbsVal::Top,
            },
            UnOp::BitNot => match va {
                AbsVal::Num(k @ NumKind::Word(..), _) => AbsVal::Num(k, k.range()),
                _ => AbsVal::Top,
            },
        }
    }

    fn eval_cast(&self, k: &CastKind, a: &Expr) -> AbsVal {
        let va = self.eval(a);
        match k {
            CastKind::Unat => match va {
                AbsVal::Num(NumKind::Word(_, Signedness::Unsigned), iv) => {
                    AbsVal::Num(NumKind::Nat, iv)
                }
                // Signed word under `unat`: the bit pattern, top within width.
                AbsVal::Num(NumKind::Word(w, _), _) => AbsVal::Num(
                    NumKind::Nat,
                    word_range(w, Signedness::Unsigned),
                ),
                _ => AbsVal::Num(NumKind::Nat, NumKind::Nat.range()),
            },
            CastKind::Sint => match va {
                AbsVal::Num(NumKind::Word(_, Signedness::Signed), iv) => {
                    AbsVal::Num(NumKind::Int, iv)
                }
                AbsVal::Num(NumKind::Word(w, _), _) => {
                    AbsVal::Num(NumKind::Int, word_range(w, Signedness::Signed))
                }
                _ => AbsVal::Num(NumKind::Int, Iv::top()),
            },
            CastKind::OfNat(w, s) | CastKind::OfInt(w, s) => {
                let k = NumKind::Word(*w, *s);
                match va {
                    AbsVal::Num(NumKind::Nat | NumKind::Int, iv)
                        if iv_subset(&iv, &word_range(*w, *s)) =>
                    {
                        AbsVal::Num(k, iv)
                    }
                    _ => AbsVal::Num(k, k.range()),
                }
            }
            CastKind::NatToInt => match va {
                AbsVal::Num(NumKind::Nat, iv) => AbsVal::Num(NumKind::Int, iv),
                _ => AbsVal::Num(NumKind::Int, Iv::top()),
            },
            CastKind::IntToNat => match va {
                AbsVal::Num(NumKind::Int, iv) => AbsVal::Num(
                    NumKind::Nat,
                    Iv {
                        lo: Some(iv.lo.map_or(0, |l| l.max(0))),
                        hi: iv.hi.map(|h| h.max(0)),
                    },
                ),
                _ => AbsVal::Num(NumKind::Nat, NumKind::Nat.range()),
            },
            CastKind::WordToWord(w, s) => {
                let k = NumKind::Word(*w, *s);
                match va {
                    // C conversion is the identity exactly on the target's
                    // representable range.
                    AbsVal::Num(NumKind::Word(..), iv) if iv_subset(&iv, &word_range(*w, *s)) => {
                        AbsVal::Num(k, iv)
                    }
                    _ => AbsVal::Num(k, k.range()),
                }
            }
            CastKind::PtrToWord => match va {
                AbsVal::Ptr(Some(true)) => {
                    AbsVal::Num(NumKind::Word(Width::W32, Signedness::Unsigned), Iv::point(0))
                }
                AbsVal::Ptr(Some(false)) => AbsVal::Num(
                    NumKind::Word(Width::W32, Signedness::Unsigned),
                    Iv::new(1, (1i128 << 32) - 1),
                ),
                _ => AbsVal::Num(
                    NumKind::Word(Width::W32, Signedness::Unsigned),
                    word_range(Width::W32, Signedness::Unsigned),
                ),
            },
            CastKind::WordToPtr(_) => match va {
                AbsVal::Num(_, iv) if iv == Iv::point(0) => AbsVal::Ptr(Some(true)),
                AbsVal::Num(_, iv) if iv_excludes(&iv, 0) => AbsVal::Ptr(Some(false)),
                _ => AbsVal::Ptr(None),
            },
            CastKind::PtrRetype(_) => match va {
                AbsVal::Ptr(n) => AbsVal::Ptr(n),
                _ => AbsVal::Ptr(None),
            },
        }
    }

    fn eval_binop(&self, op: BinOp, a: &Expr, b: &Expr) -> AbsVal {
        match op {
            BinOp::And => {
                let va = self.eval(a);
                if va == AbsVal::Bool(Some(false)) {
                    return AbsVal::Bool(Some(false));
                }
                // Hypothesis-aware: the right conjunct is evaluated under
                // the left assumed (sound for deciding the conjunction).
                let vb = self.refined(a).eval(b);
                match (va, vb) {
                    (_, AbsVal::Bool(Some(false))) => AbsVal::Bool(Some(false)),
                    (AbsVal::Bool(Some(true)), AbsVal::Bool(Some(true))) => {
                        AbsVal::Bool(Some(true))
                    }
                    _ => AbsVal::Bool(None),
                }
            }
            BinOp::Or => {
                let va = self.eval(a);
                if va == AbsVal::Bool(Some(true)) {
                    return AbsVal::Bool(Some(true));
                }
                let vb = self.refined_not(a).eval(b);
                match (va, vb) {
                    (_, AbsVal::Bool(Some(true))) => AbsVal::Bool(Some(true)),
                    (AbsVal::Bool(Some(false)), AbsVal::Bool(Some(false))) => {
                        AbsVal::Bool(Some(false))
                    }
                    _ => AbsVal::Bool(None),
                }
            }
            BinOp::Implies => {
                let va = self.eval(a);
                if va == AbsVal::Bool(Some(false)) {
                    return AbsVal::Bool(Some(true));
                }
                let vb = self.refined(a).eval(b);
                match (va, vb) {
                    (_, AbsVal::Bool(Some(true))) => AbsVal::Bool(Some(true)),
                    (AbsVal::Bool(Some(true)), AbsVal::Bool(Some(false))) => {
                        AbsVal::Bool(Some(false))
                    }
                    _ => AbsVal::Bool(None),
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le => self.eval_cmp(op, a, b),
            _ => self.eval_arith(op, a, b),
        }
    }

    fn eval_cmp(&self, op: BinOp, a: &Expr, b: &Expr) -> AbsVal {
        let va = self.eval(a);
        let vb = self.eval(b);
        // Structural `nat` laws: monus/div/mod never grow the left operand
        // (`x div 0 = 0`, `x mod 0 = x` in HOL, so these hold outright).
        if op == BinOp::Le {
            if let Expr::BinOp(BinOp::Sub | BinOp::Div | BinOp::Mod, x, _) = a {
                if **x == *b && matches!(va, AbsVal::Num(NumKind::Nat, _)) {
                    return AbsVal::Bool(Some(true));
                }
            }
        }
        // Pointer (dis)equality via nullness.
        if let (AbsVal::Ptr(na), AbsVal::Ptr(nb)) = (&va, &vb) {
            let eq = match (na, nb) {
                (Some(true), Some(true)) => Some(true),
                (Some(x), Some(y)) if x != y => Some(false),
                _ => None,
            };
            return match op {
                BinOp::Eq => AbsVal::Bool(eq),
                BinOp::Ne => AbsVal::Bool(eq.map(|x| !x)),
                _ => AbsVal::Bool(None),
            };
        }
        let (Some((_, ia)), Some((_, ib))) = (va.iv(), vb.iv()) else {
            // Structural equality on identical terms still decides `=`/`≠`.
            if a == b {
                return match op {
                    BinOp::Eq | BinOp::Le => AbsVal::Bool(Some(true)),
                    BinOp::Ne | BinOp::Lt => AbsVal::Bool(Some(false)),
                    _ => AbsVal::Bool(None),
                };
            }
            return AbsVal::Bool(None);
        };
        let lt = iv_cmp_lt(&ia, &ib);
        let le = iv_cmp_le(&ia, &ib);
        let eq = if ia == ib && ia.lo.is_some() && ia.lo == ia.hi {
            Some(true)
        } else if iv_disjoint(&ia, &ib) {
            Some(false)
        } else {
            None
        };
        match op {
            BinOp::Lt => AbsVal::Bool(lt),
            BinOp::Le => AbsVal::Bool(le),
            BinOp::Eq => AbsVal::Bool(eq),
            BinOp::Ne => AbsVal::Bool(eq.map(|x| !x)),
            _ => AbsVal::Bool(None),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_arith(&self, op: BinOp, a: &Expr, b: &Expr) -> AbsVal {
        let va = self.eval(a);
        let vb = self.eval(b);
        // A `Top` operand beside a known numeric kind coerces to that
        // kind's full range: well-typed arithmetic has same-kind operands.
        let (ia, ib, k) = match (va.iv(), vb.iv()) {
            (Some((ka, ia)), Some((kb, ib))) if ka == kb => (ia, ib, ka),
            (Some((ka, ia)), None) if vb == AbsVal::Top => (ia, ka.range(), ka),
            (None, Some((kb, ib))) if va == AbsVal::Top => (kb.range(), ib, kb),
            _ => return AbsVal::Top,
        };
        let exact = |iv: Iv| -> AbsVal {
            if iv.is_empty() {
                return AbsVal::Num(k, k.range());
            }
            match k {
                // Ideal arithmetic is exact; machine words wrap — keep the
                // mathematical interval only when it is representable.
                NumKind::Nat | NumKind::Int => AbsVal::Num(k, k.clamp(iv)),
                NumKind::Word(..) => {
                    if iv_subset(&iv, &k.range()) {
                        AbsVal::Num(k, iv)
                    } else {
                        AbsVal::Num(k, k.range())
                    }
                }
            }
        };
        match op {
            BinOp::Add => exact(iv_add(&ia, &ib)),
            BinOp::Sub => {
                let raw = iv_sub(&ia, &ib);
                match k {
                    // nat subtraction is monus: truncated at 0.
                    NumKind::Nat => AbsVal::Num(
                        NumKind::Nat,
                        Iv {
                            lo: Some(raw.lo.map_or(0, |l| l.max(0))),
                            hi: raw.hi.map(|h| h.max(0)),
                        },
                    ),
                    _ => exact(raw),
                }
            }
            BinOp::Mul => match iv_mul(&ia, &ib) {
                Some(iv) => exact(iv),
                None => AbsVal::Num(k, k.range()),
            },
            BinOp::Div => match k {
                NumKind::Nat | NumKind::Word(_, Signedness::Unsigned) => {
                    if let (Some(bl), Some(bh)) = (ib.lo, ib.hi) {
                        if bl >= 1 {
                            let lo = ia.lo.map(|l| l.div_euclid(bh));
                            let hi = ia.hi.map(|h| h.div_euclid(bl));
                            return exact(Iv { lo, hi });
                        }
                    }
                    // Division by zero yields 0 (HOL) — result ≤ dividend
                    // either way on naturals/unsigned words.
                    AbsVal::Num(k, k.clamp(Iv { lo: Some(0), hi: ia.hi }))
                }
                _ => AbsVal::Num(k, k.range()),
            },
            BinOp::Mod => match k {
                NumKind::Nat | NumKind::Word(_, Signedness::Unsigned) => {
                    if let (Some(bl), Some(bh)) = (ib.lo, ib.hi) {
                        if bl >= 1 {
                            let hi = opt_min(Some(bh - 1), ia.hi);
                            return exact(Iv { lo: Some(0), hi });
                        }
                    }
                    // `x mod 0 = x`: bounded by max of both sides.
                    AbsVal::Num(
                        k,
                        k.clamp(Iv {
                            lo: Some(0),
                            hi: match (ia.hi, ib.hi) {
                                (Some(ah), Some(bh)) => Some(ah.max(bh - 1).max(0)),
                                _ => None,
                            },
                        }),
                    )
                }
                _ => AbsVal::Num(k, k.range()),
            },
            BinOp::Shl => {
                if let (Some(bl), Some(bh)) = (ib.lo, ib.hi) {
                    if (0..=127).contains(&bl) && (0..=127).contains(&bh) {
                        if let (Some(al), Some(ah)) = (ia.lo, ia.hi) {
                            if al >= 0 {
                                let lo = al.checked_shl(u32::try_from(bl).unwrap_or(127));
                                let hi = ah.checked_shl(u32::try_from(bh).unwrap_or(127));
                                if let (Some(lo), Some(hi)) = (lo, hi) {
                                    return exact(Iv::new(lo, hi));
                                }
                            }
                        }
                    }
                }
                AbsVal::Num(k, k.range())
            }
            BinOp::Shr => {
                if let (Some(bl), Some(bh)) = (ib.lo, ib.hi) {
                    if (0..=127).contains(&bl) && (0..=127).contains(&bh) {
                        if let (Some(al), Some(ah)) = (ia.lo, ia.hi) {
                            if al >= 0 {
                                return exact(Iv::new(
                                    al >> bh.min(127),
                                    ah >> bl.min(127),
                                ));
                            }
                        }
                    }
                }
                AbsVal::Num(k, k.range())
            }
            BinOp::BitAnd => match (k, ia.lo, ib.lo) {
                (NumKind::Nat | NumKind::Word(_, Signedness::Unsigned), Some(al), Some(bl))
                    if al >= 0 && bl >= 0 =>
                {
                    AbsVal::Num(k, Iv { lo: Some(0), hi: opt_min(ia.hi, ib.hi) })
                }
                _ => AbsVal::Num(k, k.range()),
            },
            BinOp::BitOr | BinOp::BitXor => match (k, ia.lo, ib.lo, ia.hi, ib.hi) {
                (
                    NumKind::Nat | NumKind::Word(_, Signedness::Unsigned),
                    Some(al),
                    Some(bl),
                    Some(ah),
                    Some(bh),
                ) if al >= 0 && bl >= 0 => {
                    // or/xor cannot exceed the next power of two above both.
                    let m = ah.max(bh);
                    let bound = (1i128 << (128 - m.leading_zeros()).min(126)) - 1;
                    AbsVal::Num(k, k.clamp(Iv::new(0, bound)))
                }
                _ => AbsVal::Num(k, k.range()),
            },
            _ => AbsVal::Top,
        }
    }

    // ---- refinement -------------------------------------------------------

    /// A copy of the environment with `c` assumed true.
    #[must_use]
    pub fn refined(&self, c: &Expr) -> AbsEnv {
        let mut out = self.clone();
        out.assume(c);
        out
    }

    /// A copy of the environment with `c` assumed false.
    #[must_use]
    pub fn refined_not(&self, c: &Expr) -> AbsEnv {
        let mut out = self.clone();
        out.assume_not(c);
        out
    }

    /// Refines the environment by assuming `c` holds.
    pub fn assume(&mut self, c: &Expr) {
        match c {
            Expr::Lit(_) => {}
            Expr::BinOp(BinOp::And, a, b) => {
                self.assume(a);
                self.assume(b);
            }
            Expr::UnOp(UnOp::Not, a) => self.assume_not(a),
            Expr::BinOp(op @ (BinOp::Lt | BinOp::Le | BinOp::Eq | BinOp::Ne), a, b) => {
                self.assume_cmp(*op, a, b);
                self.record_fact(c);
            }
            Expr::IsValid(_, p) => {
                // Validity implies non-NULL.
                self.narrow_ptr(p, Some(false));
                self.record_fact(c);
            }
            _ => self.record_fact(c),
        }
    }

    /// Refines the environment by assuming `c` is false.
    pub fn assume_not(&mut self, c: &Expr) {
        match c {
            Expr::UnOp(UnOp::Not, a) => self.assume(a),
            Expr::BinOp(BinOp::Or, a, b) => {
                self.assume_not(a);
                self.assume_not(b);
            }
            Expr::BinOp(BinOp::Lt, a, b) => self.assume_cmp(BinOp::Le, b, a),
            Expr::BinOp(BinOp::Le, a, b) => self.assume_cmp(BinOp::Lt, b, a),
            Expr::BinOp(BinOp::Eq, a, b) => self.assume_cmp(BinOp::Ne, a, b),
            Expr::BinOp(BinOp::Ne, a, b) => self.assume_cmp(BinOp::Eq, a, b),
            _ => {}
        }
    }

    fn record_fact(&mut self, c: &Expr) {
        if self.facts.iter().any(|f| f.expr == *c) {
            return;
        }
        self.facts.push(Fact {
            reads_heap: c.reads_heap(),
            reads_global: reads_global(c),
            is_validity: matches!(c, Expr::IsValid(..)),
            expr: c.clone(),
        });
    }

    fn assume_cmp(&mut self, op: BinOp, a: &Expr, b: &Expr) {
        // Pointer null tests.
        if let (AbsVal::Ptr(_), AbsVal::Ptr(nb)) = (self.eval(a), self.eval(b)) {
            match (op, nb) {
                (BinOp::Eq, Some(x)) => self.narrow_ptr(a, Some(x)),
                (BinOp::Ne, Some(true)) => self.narrow_ptr(a, Some(false)),
                _ => {}
            }
            return;
        }
        let vb = self.eval(b);
        let va = self.eval(a);
        // Narrow `a` from above using b's upper knowledge, and `b` from
        // below using a's lower knowledge.
        if let Some((kb, ib)) = vb.iv() {
            let refine_a = match op {
                BinOp::Lt => ib.hi.map(|h| Iv { lo: None, hi: Some(h - 1) }),
                BinOp::Le => ib.hi.map(|h| Iv { lo: None, hi: Some(h) }),
                BinOp::Eq => Some(ib),
                _ => None,
            };
            if let Some(r) = refine_a {
                self.narrow_num(a, kb, r);
            }
        }
        if let Some((ka, ia)) = va.iv() {
            let refine_b = match op {
                BinOp::Lt => ia.lo.map(|l| Iv { lo: Some(l + 1), hi: None }),
                BinOp::Le => ia.lo.map(|l| Iv { lo: Some(l), hi: None }),
                BinOp::Eq => Some(ia),
                _ => None,
            };
            if let Some(r) = refine_b {
                self.narrow_num(b, ka, r);
            }
        }
    }

    /// Narrows the abstraction of `e` (a variable or opaque atom) to the
    /// meet with `iv`. Literals and kind mismatches are left untouched.
    fn narrow_num(&mut self, e: &Expr, kind: NumKind, iv: Iv) {
        if matches!(e, Expr::Lit(_)) {
            return;
        }
        if let Expr::Var(v) = e {
            let cur = self.var(v);
            let next = match cur {
                AbsVal::Num(k, old) if k == kind => {
                    let m = old.meet(&iv);
                    if m.is_empty() {
                        return;
                    }
                    AbsVal::Num(k, m)
                }
                AbsVal::Top => {
                    let m = kind.clamp(iv);
                    if m.is_empty() {
                        return;
                    }
                    AbsVal::Num(kind, m)
                }
                _ => return,
            };
            self.vars.insert(*v, next);
            return;
        }
        // Opaque atom: meet with any structural knowledge we already have.
        let base = match self.eval(e) {
            AbsVal::Num(k, b) if k == kind => b,
            AbsVal::Top => kind.range(),
            _ => return,
        };
        let m = base.meet(&iv);
        if m.is_empty() {
            return;
        }
        if let Some(slot) = self
            .atoms
            .iter_mut()
            .find(|a| a.expr == *e && a.kind == kind)
        {
            slot.iv = slot.iv.meet(&m);
        } else {
            self.atoms.push(AtomBound {
                kind,
                iv: m,
                reads_heap: e.reads_heap(),
                reads_global: reads_global(e),
                expr: e.clone(),
            });
        }
    }

    fn narrow_ptr(&mut self, e: &Expr, nullness: Option<bool>) {
        if let Expr::Var(v) = e {
            match self.var(v) {
                AbsVal::Ptr(_) | AbsVal::Top => {
                    self.vars.insert(*v, AbsVal::Ptr(nullness));
                }
                _ => {}
            }
        }
    }
}

fn reads_global(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |x| {
        if matches!(x, Expr::Global(_)) {
            found = true;
        }
    });
    found
}

fn iv_subset(a: &Iv, b: &Iv) -> bool {
    let lo_ok = match (a.lo, b.lo) {
        (_, None) => true,
        (Some(al), Some(bl)) => al >= bl,
        (None, Some(_)) => false,
    };
    let hi_ok = match (a.hi, b.hi) {
        (_, None) => true,
        (Some(ah), Some(bh)) => ah <= bh,
        (None, Some(_)) => false,
    };
    lo_ok && hi_ok
}

fn iv_excludes(iv: &Iv, v: i128) -> bool {
    matches!(iv.lo, Some(l) if l > v) || matches!(iv.hi, Some(h) if h < v)
}

fn iv_disjoint(a: &Iv, b: &Iv) -> bool {
    matches!((a.hi, b.lo), (Some(ah), Some(bl)) if ah < bl)
        || matches!((b.hi, a.lo), (Some(bh), Some(al)) if bh < al)
}

fn iv_cmp_lt(a: &Iv, b: &Iv) -> Option<bool> {
    if let (Some(ah), Some(bl)) = (a.hi, b.lo) {
        if ah < bl {
            return Some(true);
        }
    }
    if let (Some(al), Some(bh)) = (a.lo, b.hi) {
        if al >= bh {
            return Some(false);
        }
    }
    None
}

fn iv_cmp_le(a: &Iv, b: &Iv) -> Option<bool> {
    if let (Some(ah), Some(bl)) = (a.hi, b.lo) {
        if ah <= bl {
            return Some(true);
        }
    }
    if let (Some(al), Some(bh)) = (a.lo, b.hi) {
        if al > bh {
            return Some(false);
        }
    }
    None
}

fn iv_add(a: &Iv, b: &Iv) -> Iv {
    Iv {
        lo: match (a.lo, b.lo) {
            (Some(x), Some(y)) => x.checked_add(y),
            _ => None,
        },
        hi: match (a.hi, b.hi) {
            (Some(x), Some(y)) => x.checked_add(y),
            _ => None,
        },
    }
}

fn iv_sub(a: &Iv, b: &Iv) -> Iv {
    Iv {
        lo: match (a.lo, b.hi) {
            (Some(x), Some(y)) => x.checked_sub(y),
            _ => None,
        },
        hi: match (a.hi, b.lo) {
            (Some(x), Some(y)) => x.checked_sub(y),
            _ => None,
        },
    }
}

fn iv_mul(a: &Iv, b: &Iv) -> Option<Iv> {
    let (al, ah, bl, bh) = (a.lo?, a.hi?, b.lo?, b.hi?);
    let ps = [
        al.checked_mul(bl)?,
        al.checked_mul(bh)?,
        ah.checked_mul(bl)?,
        ah.checked_mul(bh)?,
    ];
    Some(Iv::new(
        *ps.iter().min().expect("nonempty"),
        *ps.iter().max().expect("nonempty"),
    ))
}

/// Does `hyp` entail `concl` by interval reasoning alone? This is the side
/// condition of the kernel's `AbsintDischarge` rule: it consumes nothing
/// but the two expressions, so a discharge theorem is self-contained and
/// independently re-checkable.
#[must_use]
pub fn entails(hyp: &Expr, concl: &Expr) -> bool {
    let mut env = AbsEnv::new();
    env.assume(hyp);
    env.holds(concl)
}

/// Tries to prove `goal` valid by interval reasoning, seeding variable
/// abstractions from their types (word widths bound word-typed variables).
/// A top-level `H ⟶ C` refines by `H` first — the shape `vcg` emits.
#[must_use]
pub fn prove(goal: &Expr, vars: &HashMap<String, Ty>) -> bool {
    let mut env = AbsEnv::new();
    for (name, ty) in vars {
        let abs = AbsVal::of_ty(ty);
        if abs != AbsVal::Top {
            env.bind(name.as_str(), abs);
        }
    }
    env.holds(goal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Expr {
        Expr::nat(v)
    }

    #[test]
    fn bounded_divisor_discharges() {
        // b mod 7 + 1 ≠ 0 and ≤ UINT_MAX, with b : nat unbounded.
        let b = Expr::var("b");
        let d = Expr::binop(
            BinOp::Add,
            Expr::binop(BinOp::Mod, b, nat(7)),
            nat(1),
        );
        let env = AbsEnv::new();
        assert!(env.holds(&Expr::binop(BinOp::Ne, d.clone(), nat(0))));
        assert!(env.holds(&Expr::binop(BinOp::Le, d, nat(4_294_967_295))));
    }

    #[test]
    fn implication_guard_refines() {
        // 1000 < acc ⟶ 1000 ≤ acc
        let acc = Expr::var("acc");
        let g = Expr::implies(
            Expr::binop(BinOp::Lt, nat(1000), acc.clone()),
            Expr::binop(BinOp::Le, nat(1000), acc),
        );
        let mut env = AbsEnv::new();
        env.bind("acc", AbsVal::Num(NumKind::Nat, NumKind::Nat.range()));
        assert!(env.holds(&g));
    }

    #[test]
    fn entailment_from_hypothesis() {
        // (x ≤ 12) ⊢ x + 1 ≤ 13
        let x = Expr::var("x");
        let hyp = Expr::binop(BinOp::Le, x.clone(), nat(12));
        let concl = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, x, nat(1)),
            nat(13),
        );
        assert!(entails(&hyp, &concl));
        assert!(!entails(&Expr::tt(), &concl));
    }

    #[test]
    fn repeated_fact_matches_syntactically() {
        let v = Expr::is_valid(Ty::Struct("node".into()), Expr::var("p"));
        let mut env = AbsEnv::new();
        env.assume(&v);
        assert!(env.holds(&v));
        // Validity survives a data write but not a rebind of `p`.
        env.heap_write();
        assert!(env.holds(&v));
        env.bind("p", AbsVal::Ptr(None));
        assert!(!env.holds(&v));
    }

    #[test]
    fn signed_range_product() {
        // 0 < a < 100 ∧ 0 < b < 50 ⊢ a·b ≤ INT_MAX ∧ -INT_MIN ≤ a·b
        let a = Expr::var("a");
        let b = Expr::var("b");
        let hyp = Expr::and(
            Expr::and(
                Expr::binop(BinOp::Lt, Expr::int(0), a.clone()),
                Expr::binop(BinOp::Lt, a.clone(), Expr::int(100)),
            ),
            Expr::and(
                Expr::binop(BinOp::Lt, Expr::int(0), b.clone()),
                Expr::binop(BinOp::Lt, b.clone(), Expr::int(50)),
            ),
        );
        let prod = Expr::binop(BinOp::Mul, a, b);
        let concl = Expr::and(
            Expr::binop(BinOp::Le, Expr::int(-2_147_483_648i64), prod.clone()),
            Expr::binop(BinOp::Le, prod, Expr::int(2_147_483_647i64)),
        );
        assert!(entails(&hyp, &concl));
    }

    #[test]
    fn word_var_bounds_from_type() {
        // u : word32 unsigned ⇒ unat-style semantic value ≤ 2³²−1, so
        // `u ≤ 4294967295` at word level is *not* expressible without the
        // type — prove() seeds it.
        let u = Expr::var("u");
        let goal = Expr::binop(
            BinOp::Le,
            Expr::cast(CastKind::Unat, u),
            nat(4_294_967_295),
        );
        let mut vars = HashMap::new();
        vars.insert("u".to_owned(), Ty::U32);
        assert!(prove(&goal, &vars));
    }

    #[test]
    fn nat_monus_truncates() {
        // acc : nat, 1000 ≤ acc ⊢ acc - 1000 ≤ acc (monus stays ≥ 0).
        let acc = Expr::var("acc");
        let hyp = Expr::binop(BinOp::Le, nat(1000), acc.clone());
        let sub = Expr::binop(BinOp::Sub, acc.clone(), nat(1000));
        assert!(entails(&hyp, &Expr::binop(BinOp::Le, sub, acc)));
    }

    #[test]
    fn unknown_stays_unknown() {
        // a + b ≤ UINT_MAX with both unbounded must NOT discharge.
        let g = Expr::binop(
            BinOp::Le,
            Expr::binop(BinOp::Add, Expr::var("a"), Expr::var("b")),
            nat(4_294_967_295),
        );
        assert!(!AbsEnv::new().holds(&g));
        // And nothing proves a falsehood.
        assert!(!entails(&Expr::tt(), &Expr::ff()));
    }

    #[test]
    fn definite_falsehood_detected() {
        // x ≤ 5 ⊢ ¬(10 < x) — and eval refutes 10 < x outright.
        let x = Expr::var("x");
        let mut env = AbsEnv::new();
        env.assume(&Expr::binop(BinOp::Le, x.clone(), nat(5)));
        assert!(env.refutes(&Expr::binop(BinOp::Lt, nat(10), x)));
    }
}
