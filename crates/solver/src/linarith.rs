//! Linear arithmetic over ideal integers and naturals.
//!
//! Decides validity of quantifier-free formulas over `nat`/`int` terms with
//! `+`, `-`, multiplication by constants, and `div`/`mod` by positive
//! constants (eliminated by fresh-variable encoding). The core is
//! Fourier–Motzkin elimination with integer tightening:
//!
//! * UNSAT verdicts use the *real shadow* (plus gcd tightening) — sound,
//!   since the rational relaxation over-approximates the integer solutions;
//! * concrete counterexamples come from a bounded model search over small
//!   values, so `Invalid` answers always carry a checkable witness;
//! * anything outside the fragment (e.g. `unat` of a heap read) is
//!   *atomised* into a fresh range-bounded variable — still sound for
//!   validity, and the verdict degrades to `Unknown` rather than a wrong
//!   `Counterexample` if such an atom was needed.
//!
//! This is the stand-in for Isabelle's `arith`/`auto` on word-abstracted
//! verification conditions (paper Sec 3.2).

use std::collections::{BTreeMap, HashMap};

use bignum::Int;
use ir::eval::{eval_bool, Env};
use ir::expr::{BinOp, CastKind, Expr, UnOp};
use ir::state::State;
use ir::ty::Ty;
use ir::value::Value;

use crate::Verdict;

/// A linear expression `Σ cᵢ·xᵢ + k`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Lin {
    coeffs: BTreeMap<String, Int>,
    konst: Int,
}

impl Lin {
    fn constant(k: Int) -> Lin {
        Lin {
            coeffs: BTreeMap::new(),
            konst: k,
        }
    }

    fn var(name: &str) -> Lin {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.to_owned(), Int::one());
        Lin {
            coeffs,
            konst: Int::zero(),
        }
    }

    fn add(&self, other: &Lin) -> Lin {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let e = out.coeffs.entry(v.clone()).or_insert_with(Int::zero);
            *e = &*e + c;
        }
        out.coeffs.retain(|_, c| !c.is_zero());
        out.konst = &out.konst + &other.konst;
        out
    }

    fn scale(&self, k: &Int) -> Lin {
        if k.is_zero() {
            return Lin::default();
        }
        Lin {
            coeffs: self.coeffs.iter().map(|(v, c)| (v.clone(), c * k)).collect(),
            konst: &self.konst * k,
        }
    }

    fn sub(&self, other: &Lin) -> Lin {
        self.add(&other.scale(&Int::from(-1i64)))
    }

    fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }
}

/// A constraint `lin ≥ 0`.
type Constraint = Lin;

/// A conjunction of constraints (one DNF branch of the negated goal).
#[derive(Clone, Debug, Default)]
struct Branch {
    constraints: Vec<Constraint>,
}

struct Cx<'a> {
    vars: &'a HashMap<String, Ty>,
    fresh: u64,
    splits: usize,
    atomized: bool,
    /// Fresh variables that are nat-valued (get `v ≥ 0`).
    nat_vars: Vec<String>,
    /// Cache: each distinct opaque subterm maps to ONE fresh variable, so
    /// equal opaque terms stay equal after atomisation (congruence at the
    /// syntactic level).
    atoms: std::collections::BTreeMap<String, String>,
}

impl<'a> Cx<'a> {
    fn fresh(&mut self, nat: bool) -> String {
        let name = format!("·lin{}", self.fresh);
        self.fresh += 1;
        if nat {
            self.nat_vars.push(name.clone());
        }
        name
    }
}

const BRANCH_CAP: usize = 1024;
const CONSTRAINT_CAP: usize = 4000;

/// Decides validity of `goal`; also returns the number of case splits
/// explored (an effort metric for the benchmarks).
#[must_use]
pub fn decide_linear_with_info(goal: &Expr, vars: &HashMap<String, Ty>) -> (Verdict, usize) {
    // 1. Bounded search for a concrete counterexample.
    if let Some(model) = search_countermodel(goal, vars) {
        return (Verdict::Counterexample(model), 0);
    }

    // 2. Prove validity: every DNF branch of ¬goal must be UNSAT.
    let mut cx = Cx {
        vars,
        fresh: 0,
        splits: 0,
        atomized: false,
        nat_vars: Vec::new(),
        atoms: std::collections::BTreeMap::new(),
    };
    let Some(branches) = formula(goal, false, &mut cx) else {
        return (Verdict::Unknown, cx.splits);
    };
    for mut branch in branches {
        // nat-ness of source variables and introduced atoms.
        for (v, t) in vars {
            if *t == Ty::Nat && branch_mentions(&branch, v) {
                branch.constraints.push(Lin::var(v));
            }
        }
        for v in &cx.nat_vars {
            if branch_mentions(&branch, v) {
                branch.constraints.push(Lin::var(v));
            }
        }
        match fm_unsat(branch.constraints) {
            Some(true) => {}
            _ => return (Verdict::Unknown, cx.splits),
        }
    }
    (Verdict::Valid, cx.splits)
}

fn branch_mentions(b: &Branch, v: &str) -> bool {
    b.constraints.iter().any(|c| c.coeffs.contains_key(v))
}

/// Bounded countermodel search: tries small values for every free variable
/// and evaluates the goal. A returned model genuinely falsifies the goal.
fn search_countermodel(
    goal: &Expr,
    vars: &HashMap<String, Ty>,
) -> Option<HashMap<String, Value>> {
    let free: Vec<&String> = {
        let fv = goal.free_vars();
        vars.keys().filter(|k| fv.contains(*k)).collect()
    };
    if free.len() > 4 || goal.reads_state() {
        return None;
    }
    // Candidate values per type.
    let candidates: Vec<Vec<Value>> = free
        .iter()
        .map(|v| match vars.get(*v) {
            Some(Ty::Nat) => [0u64, 1, 2, 3, 5, 100]
                .iter()
                .map(|&n| Value::nat(n))
                .collect(),
            Some(Ty::Int) => [-100i64, -3, -2, -1, 0, 1, 2, 3, 100]
                .iter()
                .map(|&n| Value::int(n))
                .collect(),
            Some(Ty::Bool) => vec![Value::Bool(false), Value::Bool(true)],
            Some(Ty::Word(w, s)) => {
                // Small values plus the width extremes: overflow guards are
                // falsified exactly at the boundary magic constants
                // (INT_MAX, UINT_MAX, INT_MIN), which no small-value sweep
                // would ever reach.
                let max = ir::word::Word::max_value(*w, *s);
                let min = ir::word::Word::min_value(*w, *s);
                let mut raw: Vec<Int> = [0i64, 1, 2, 3, -1, -2]
                    .iter()
                    .map(|&n| Int::from(n))
                    .filter(|i| *i >= min && *i <= max)
                    .collect();
                raw.push(max.clone() - Int::one());
                raw.push(max);
                if min != Int::zero() {
                    raw.push(min.clone() + Int::one());
                    raw.push(min);
                }
                raw.iter()
                    .map(|i| Value::Word(ir::word::Word::of_int(i, *w, *s)))
                    .collect()
            }
            _ => vec![],
        })
        .collect();
    if candidates.iter().any(Vec::is_empty) && !free.is_empty() {
        return None;
    }
    let st = State::conc_empty();
    let mut idx = vec![0usize; free.len()];
    loop {
        let mut env = Env::new();
        for (i, v) in free.iter().enumerate() {
            env.bind_mut(v, candidates[i][idx[i]].clone());
        }
        if let Ok(false) = eval_bool(goal, &env, &st) {
            let model = free
                .iter()
                .enumerate()
                .map(|(i, v)| ((*v).clone(), candidates[i][idx[i]].clone()))
                .collect();
            return Some(model);
        }
        // advance odometer
        let mut i = 0;
        loop {
            if i == free.len() {
                return None;
            }
            idx[i] += 1;
            if idx[i] < candidates[i].len() {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
        if free.is_empty() {
            return None;
        }
    }
}

/// Translates a formula (with polarity) into DNF branches of constraints.
/// `positive = false` means translate the *negation*.
fn formula(e: &Expr, positive: bool, cx: &mut Cx) -> Option<Vec<Branch>> {
    match e {
        Expr::Lit(Value::Bool(b)) => {
            if *b == positive {
                Some(vec![Branch::default()])
            } else {
                Some(vec![])
            }
        }
        Expr::UnOp(UnOp::Not, a) => formula(a, !positive, cx),
        Expr::BinOp(BinOp::And, a, b) => {
            if positive {
                conj(a, b, true, cx)
            } else {
                disj(a, b, false, cx)
            }
        }
        Expr::BinOp(BinOp::Or, a, b) => {
            if positive {
                disj(a, b, true, cx)
            } else {
                conj(a, b, false, cx)
            }
        }
        Expr::BinOp(BinOp::Implies, a, b) => {
            // a → b ≡ ¬a ∨ b
            if positive {
                let mut out = formula(a, false, cx)?;
                out.extend(formula(b, true, cx)?);
                cx.splits += 1;
                cap(out)
            } else {
                // ¬(a → b) ≡ a ∧ ¬b
                cross(formula(a, true, cx)?, formula(b, false, cx)?)
            }
        }
        Expr::BinOp(op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le), a, b) => {
            atom(*op, a, b, positive, cx)
        }
        Expr::Var(v) if cx.vars.get(v.as_str()) == Some(&Ty::Bool) => {
            // Encode boolean variables as 0/1 integers.
            let bv = Lin::var(&format!("·bool_{v}"));
            let one = Lin::constant(Int::one());
            let mut branch = Branch::default();
            // 0 ≤ bv ≤ 1
            branch.constraints.push(bv.clone());
            branch.constraints.push(one.sub(&bv));
            if positive {
                // bv ≥ 1
                branch.constraints.push(bv.sub(&one));
            } else {
                // bv ≤ 0
                branch.constraints.push(bv.scale(&Int::from(-1i64)));
            }
            Some(vec![branch])
        }
        Expr::Ite(c, t, f) => {
            // (c ∧ t±) ∨ (¬c ∧ f±)
            cx.splits += 1;
            let mut out = cross(formula(c, true, cx)?, formula(t, positive, cx)?)?;
            out.extend(cross(formula(c, false, cx)?, formula(f, positive, cx)?)?);
            cap(out)
        }
        // Anything else: a boolean atom outside the fragment (heap
        // validity, opaque predicates). Encode it as a cached 0/1 variable
        // so the same atom stays consistent across hypotheses and
        // conclusion (propositional congruence); still marked as
        // atomisation so SAT answers degrade to Unknown.
        _ => {
            cx.atomized = true;
            let key = format!("bool:{e:?}");
            let name = if let Some(v) = cx.atoms.get(&key) {
                v.clone()
            } else {
                let v = cx.fresh(true);
                cx.atoms.insert(key, v.clone());
                v
            };
            let bv = Lin::var(&name);
            let one = Lin::constant(Int::one());
            let mut branch = Branch::default();
            branch.constraints.push(one.sub(&bv)); // bv ≤ 1
            if positive {
                branch.constraints.push(bv.sub(&one)); // bv ≥ 1
            } else {
                branch.constraints.push(bv.scale(&Int::from(-1i64))); // bv ≤ 0
            }
            Some(vec![branch])
        }
    }
}

fn conj(a: &Expr, b: &Expr, positive: bool, cx: &mut Cx) -> Option<Vec<Branch>> {
    cross(formula(a, positive, cx)?, formula(b, positive, cx)?)
}

fn disj(a: &Expr, b: &Expr, positive: bool, cx: &mut Cx) -> Option<Vec<Branch>> {
    let mut out = formula(a, positive, cx)?;
    out.extend(formula(b, positive, cx)?);
    cx.splits += 1;
    cap(out)
}

fn cross(xs: Vec<Branch>, ys: Vec<Branch>) -> Option<Vec<Branch>> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in &xs {
        for y in &ys {
            let mut b = x.clone();
            b.constraints.extend(y.constraints.iter().cloned());
            out.push(b);
        }
    }
    cap(out)
}

fn cap(v: Vec<Branch>) -> Option<Vec<Branch>> {
    if v.len() > BRANCH_CAP {
        None
    } else {
        Some(v)
    }
}

/// Is the expression in the numeric (nat/int) fragment?
fn is_numeric(e: &Expr, cx: &Cx) -> bool {
    match e {
        Expr::Lit(Value::Nat(_) | Value::Int(_)) => true,
        Expr::Var(v) => matches!(cx.vars.get(v.as_str()), Some(Ty::Nat | Ty::Int)),
        Expr::BinOp(
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod,
            a,
            b,
        ) => is_numeric(a, cx) || is_numeric(b, cx),
        Expr::Cast(CastKind::Unat | CastKind::Sint | CastKind::NatToInt | CastKind::IntToNat, _) => {
            true
        }
        Expr::UnOp(UnOp::Neg, a) => is_numeric(a, cx),
        Expr::Ite(_, t, f) => is_numeric(t, cx) || is_numeric(f, cx),
        _ => false,
    }
}

/// Translates a comparison atom into branches.
fn atom(op: BinOp, a: &Expr, b: &Expr, positive: bool, cx: &mut Cx) -> Option<Vec<Branch>> {
    // Normalise to the positive operator.
    let (op, positive) = match (op, positive) {
        (BinOp::Ne, p) => (BinOp::Eq, !p),
        (o, p) => (o, p),
    };
    // Equalities between opaque (non-numeric) terms — pointer aliasing
    // atoms, chiefly — become cached boolean atoms: this keeps pairwise
    // distinctness hypotheses from exploding the DNF into 2ⁿ order splits
    // while preserving propositional consistency across occurrences.
    if op == BinOp::Eq && !is_numeric(a, cx) && !is_numeric(b, cx) {
        cx.atomized = true;
        let (ka, kb) = (format!("{a:?}"), format!("{b:?}"));
        let key = if ka <= kb {
            format!("eq:{ka}={kb}")
        } else {
            format!("eq:{kb}={ka}")
        };
        let name = if let Some(v) = cx.atoms.get(&key) {
            v.clone()
        } else {
            let v = cx.fresh(true);
            cx.atoms.insert(key, v.clone());
            v
        };
        let bv = Lin::var(&name);
        let one = Lin::constant(Int::one());
        let mut branch = Branch::default();
        branch.constraints.push(one.sub(&bv)); // bv ≤ 1
        if positive {
            branch.constraints.push(bv.sub(&one)); // bv ≥ 1
        } else {
            branch.constraints.push(bv.scale(&Int::from(-1i64))); // bv ≤ 0
        }
        return Some(vec![branch]);
    }
    let la = term(a, cx)?;
    let lb = term(b, cx)?;
    let mut out = Vec::new();
    for (ca, ta) in &la {
        for (cb, tb) in &lb {
            let base: Vec<Constraint> = ca.iter().chain(cb.iter()).cloned().collect();
            match (op, positive) {
                (BinOp::Le, true) => {
                    // b - a ≥ 0
                    let mut br = Branch { constraints: base };
                    br.constraints.push(tb.sub(ta));
                    out.push(br);
                }
                (BinOp::Le, false) => {
                    // a - b - 1 ≥ 0   (a > b)
                    let mut br = Branch { constraints: base };
                    br.constraints
                        .push(ta.sub(tb).add(&Lin::constant(Int::from(-1i64))));
                    out.push(br);
                }
                (BinOp::Lt, true) => {
                    let mut br = Branch { constraints: base };
                    br.constraints
                        .push(tb.sub(ta).add(&Lin::constant(Int::from(-1i64))));
                    out.push(br);
                }
                (BinOp::Lt, false) => {
                    let mut br = Branch { constraints: base };
                    br.constraints.push(ta.sub(tb));
                    out.push(br);
                }
                (BinOp::Eq, true) => {
                    let mut br = Branch { constraints: base };
                    br.constraints.push(ta.sub(tb));
                    br.constraints.push(tb.sub(ta));
                    out.push(br);
                }
                (BinOp::Eq, false) => {
                    // a < b  ∨  b < a
                    cx.splits += 1;
                    let mut br1 = Branch {
                        constraints: base.clone(),
                    };
                    br1.constraints
                        .push(tb.sub(ta).add(&Lin::constant(Int::from(-1i64))));
                    out.push(br1);
                    let mut br2 = Branch { constraints: base };
                    br2.constraints
                        .push(ta.sub(tb).add(&Lin::constant(Int::from(-1i64))));
                    out.push(br2);
                }
                _ => return None,
            }
        }
    }
    cap(out)
}

/// Is this expression nat-typed (best effort)?
fn is_nat(e: &Expr, cx: &Cx) -> bool {
    match e {
        Expr::Lit(Value::Nat(_)) => true,
        Expr::Var(v) => cx.vars.get(v.as_str()) == Some(&Ty::Nat),
        Expr::Cast(CastKind::Unat | CastKind::IntToNat, _) => true,
        Expr::BinOp(_, a, b) => is_nat(a, cx) || is_nat(b, cx),
        Expr::Ite(_, t, f) => is_nat(t, cx) || is_nat(f, cx),
        _ => false,
    }
}

/// Translates an arithmetic term into alternatives of
/// `(side constraints, linear expression)`.
#[allow(clippy::type_complexity)]
fn term(e: &Expr, cx: &mut Cx) -> Option<Vec<(Vec<Constraint>, Lin)>> {
    match e {
        Expr::Lit(Value::Nat(n)) => Some(vec![(vec![], Lin::constant(Int::from_nat(n.clone())))]),
        Expr::Lit(Value::Int(i)) => Some(vec![(vec![], Lin::constant(i.clone()))]),
        Expr::Var(v) if matches!(cx.vars.get(v.as_str()), Some(Ty::Nat | Ty::Int)) => {
            Some(vec![(vec![], Lin::var(v))])
        }
        Expr::Cast(CastKind::NatToInt, inner) => term(inner, cx),
        Expr::Cast(CastKind::IntToNat, inner) => {
            // n = max(i, 0): split.
            cx.splits += 1;
            let alts = term(inner, cx)?;
            let mut out = Vec::new();
            for (cs, ti) in alts {
                // i ≥ 0, result i
                let mut c1 = cs.clone();
                c1.push(ti.clone());
                out.push((c1, ti.clone()));
                // i ≤ -1, result 0
                let mut c2 = cs;
                c2.push(ti.scale(&Int::from(-1i64)).add(&Lin::constant(Int::from(-1i64))));
                out.push((c2, Lin::constant(Int::zero())));
            }
            Some(out)
        }
        Expr::BinOp(BinOp::Add, a, b) => combine(a, b, cx, |ta, tb| ta.add(tb)),
        Expr::BinOp(BinOp::Sub, a, b) => {
            if is_nat(e, cx) || (is_nat(a, cx) && is_nat(b, cx)) {
                // Truncated nat subtraction: split on b ≤ a.
                cx.splits += 1;
                let la = term(a, cx)?;
                let lb = term(b, cx)?;
                let mut out = Vec::new();
                for (ca, ta) in &la {
                    for (cb, tb) in &lb {
                        let base: Vec<Constraint> =
                            ca.iter().chain(cb.iter()).cloned().collect();
                        // b ≤ a: result a - b
                        let mut c1 = base.clone();
                        c1.push(ta.sub(tb));
                        out.push((c1, ta.sub(tb)));
                        // a < b: result 0
                        let mut c2 = base;
                        c2.push(tb.sub(ta).add(&Lin::constant(Int::from(-1i64))));
                        out.push((c2, Lin::constant(Int::zero())));
                    }
                }
                Some(out)
            } else {
                combine(a, b, cx, |ta, tb| ta.sub(tb))
            }
        }
        Expr::BinOp(BinOp::Mul, a, b) => {
            // Multiplication by a constant only.
            let (k, other) = match (constant_of(a), constant_of(b)) {
                (Some(k), _) => (k, b),
                (_, Some(k)) => (k, a),
                _ => return atomize(e, cx),
            };
            let alts = term(other, cx)?;
            Some(alts.into_iter().map(|(cs, t)| (cs, t.scale(&k))).collect())
        }
        Expr::BinOp(BinOp::Div, a, b) => {
            let Some(c) = constant_of(b) else {
                return atomize(e, cx);
            };
            if c <= Int::zero() || !(is_nat(a, cx)) {
                // Truncating division of possibly-negative values: atomise.
                return atomize(e, cx);
            }
            let alts = term(a, cx)?;
            let q = cx.fresh(true);
            let mut out = Vec::new();
            for (mut cs, ta) in alts {
                let lq = Lin::var(&q);
                // c·q ≤ a  ∧  a ≤ c·q + c - 1
                cs.push(ta.sub(&lq.scale(&c)));
                cs.push(
                    lq.scale(&c)
                        .add(&Lin::constant(&c - &Int::one()))
                        .sub(&ta),
                );
                out.push((cs, lq));
            }
            Some(out)
        }
        Expr::BinOp(BinOp::Mod, a, b) => {
            let Some(c) = constant_of(b) else {
                return atomize(e, cx);
            };
            if c <= Int::zero() || !(is_nat(a, cx)) {
                return atomize(e, cx);
            }
            let alts = term(a, cx)?;
            let q = cx.fresh(true);
            let r = cx.fresh(true);
            let mut out = Vec::new();
            for (mut cs, ta) in alts {
                let lq = Lin::var(&q);
                let lr = Lin::var(&r);
                // a = c·q + r  ∧  r ≤ c-1
                let rhs = lq.scale(&c).add(&lr);
                cs.push(ta.sub(&rhs));
                cs.push(rhs.sub(&ta));
                cs.push(Lin::constant(&c - &Int::one()).sub(&lr));
                out.push((cs, lr));
            }
            Some(out)
        }
        Expr::UnOp(UnOp::Neg, a) if !is_nat(a, cx) => {
            let alts = term(a, cx)?;
            Some(
                alts.into_iter()
                    .map(|(cs, t)| (cs, t.scale(&Int::from(-1i64))))
                    .collect(),
            )
        }
        Expr::Ite(c, t, f) => {
            cx.splits += 1;
            let ct = formula(c, true, cx)?;
            let cf = formula(c, false, cx)?;
            let lt = term(t, cx)?;
            let lf = term(f, cx)?;
            let mut out = Vec::new();
            for br in &ct {
                for (cs, tt) in &lt {
                    let mut all = br.constraints.clone();
                    all.extend(cs.iter().cloned());
                    out.push((all, tt.clone()));
                }
            }
            for br in &cf {
                for (cs, tf) in &lf {
                    let mut all = br.constraints.clone();
                    all.extend(cs.iter().cloned());
                    out.push((all, tf.clone()));
                }
            }
            Some(out)
        }
        _ => atomize(e, cx),
    }
}

#[allow(clippy::type_complexity)]
fn combine(
    a: &Expr,
    b: &Expr,
    cx: &mut Cx,
    f: impl Fn(&Lin, &Lin) -> Lin,
) -> Option<Vec<(Vec<Constraint>, Lin)>> {
    let la = term(a, cx)?;
    let lb = term(b, cx)?;
    let mut out = Vec::new();
    for (ca, ta) in &la {
        for (cb, tb) in &lb {
            let cs = ca.iter().chain(cb.iter()).cloned().collect();
            out.push((cs, f(ta, tb)));
        }
    }
    Some(out)
}

/// Replaces an opaque subterm by a fresh, range-bounded variable — sound
/// weakening for validity checking.
#[allow(clippy::type_complexity)]
fn atomize(e: &Expr, cx: &mut Cx) -> Option<Vec<(Vec<Constraint>, Lin)>> {
    cx.atomized = true;
    let nat = is_nat(e, cx) || matches!(e, Expr::Cast(CastKind::Unat, _));
    let key = format!("{e:?}");
    let v = if let Some(v) = cx.atoms.get(&key) {
        v.clone()
    } else {
        let v = cx.fresh(nat);
        cx.atoms.insert(key, v.clone());
        v
    };
    let lv = Lin::var(&v);
    let mut cs = Vec::new();
    // unat of a w-bit word is < 2^w.
    if let Expr::Cast(CastKind::Unat, inner) = e {
        if let Some(w) = word_width(inner, cx) {
            let max = Int::from_nat(bignum::Nat::pow2(w)) - Int::one();
            cs.push(Lin::constant(max).sub(&lv));
        }
    }
    if let Expr::Cast(CastKind::Sint, inner) = e {
        if let Some(w) = word_width(inner, cx) {
            let max = Int::from_nat(bignum::Nat::pow2(w - 1)) - Int::one();
            let min = -Int::from_nat(bignum::Nat::pow2(w - 1));
            cs.push(Lin::constant(max).sub(&lv));
            cs.push(lv.sub(&Lin::constant(min)));
        }
    }
    Some(vec![(cs, lv)])
}

fn word_width(e: &Expr, cx: &Cx) -> Option<u32> {
    match e {
        Expr::Lit(Value::Word(w)) => Some(w.width().bits()),
        Expr::Var(v) => match cx.vars.get(v.as_str()) {
            Some(Ty::Word(w, _)) => Some(w.bits()),
            _ => None,
        },
        Expr::BinOp(_, a, b) => word_width(a, cx).or_else(|| word_width(b, cx)),
        Expr::Cast(CastKind::WordToWord(w, _) | CastKind::OfNat(w, _) | CastKind::OfInt(w, _), _) => {
            Some(w.bits())
        }
        _ => None,
    }
}

fn constant_of(e: &Expr) -> Option<Int> {
    match e {
        Expr::Lit(Value::Nat(n)) => Some(Int::from_nat(n.clone())),
        Expr::Lit(Value::Int(i)) => Some(i.clone()),
        _ => None,
    }
}

/// Fourier–Motzkin with gcd tightening: `Some(true)` = UNSAT proven,
/// `Some(false)` = the rational relaxation is satisfiable (no integer
/// verdict), `None` = size cap exceeded.
fn fm_unsat(mut constraints: Vec<Constraint>) -> Option<bool> {
    loop {
        // Normalise: gcd-tighten, drop trivial, detect contradictions.
        let mut seen = std::collections::BTreeSet::new();
        let mut next = Vec::new();
        for c in constraints {
            let c = tighten(c);
            if c.is_constant() {
                if c.konst < Int::zero() {
                    return Some(true);
                }
                continue;
            }
            let key = format!("{c:?}");
            if seen.insert(key) {
                next.push(c);
            }
        }
        constraints = next;
        if constraints.len() > CONSTRAINT_CAP {
            return None;
        }
        // Pick the variable with the fewest lower×upper combinations.
        let mut vars: BTreeMap<&String, (usize, usize)> = BTreeMap::new();
        for c in &constraints {
            for (v, coef) in &c.coeffs {
                let e = vars.entry(v).or_insert((0, 0));
                if *coef > Int::zero() {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let Some((var, _)) = vars
            .iter()
            .min_by_key(|(_, (lo, up))| lo * up + lo + up)
        else {
            // No variables left: all constraints were constants (handled),
            // so the system is satisfiable over the rationals.
            return Some(false);
        };
        let var: String = (*var).clone();

        let mut lowers = Vec::new(); // c·x + rest ≥ 0, c > 0
        let mut uppers = Vec::new(); // -d·x + rest ≥ 0, d > 0
        let mut rest = Vec::new();
        for c in constraints {
            match c.coeffs.get(&var) {
                None => rest.push(c),
                Some(k) if *k > Int::zero() => lowers.push(c),
                Some(_) => uppers.push(c),
            }
        }
        for lo in &lowers {
            let a = lo.coeffs[&var].clone();
            let lo_rest = drop_var(lo, &var);
            for up in &uppers {
                let d = -up.coeffs[&var].clone();
                let up_rest = drop_var(up, &var);
                // real shadow: d·lo_rest + a·up_rest ≥ 0
                rest.push(lo_rest.scale(&d).add(&up_rest.scale(&a)));
            }
        }
        constraints = rest;
        if constraints.is_empty() {
            return Some(false);
        }
    }
}

fn drop_var(c: &Lin, var: &str) -> Lin {
    let mut out = c.clone();
    out.coeffs.remove(var);
    out
}

/// Divides through by the gcd of the coefficients, rounding the constant
/// down (valid integer tightening for `≥ 0` constraints).
fn tighten(c: Lin) -> Lin {
    let mut g = bignum::Nat::zero();
    for coef in c.coeffs.values() {
        g = g.gcd(coef.magnitude());
    }
    if g.is_zero() || g == bignum::Nat::one() {
        return c;
    }
    let gi = Int::from_nat(g);
    let (q, _) = c.konst.div_rem_floor(&gi);
    Lin {
        coeffs: c
            .coeffs
            .iter()
            .map(|(v, coef)| (v.clone(), coef / &gi))
            .collect(),
        konst: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&str, Ty)]) -> HashMap<String, Ty> {
        pairs.iter().map(|(n, t)| ((*n).to_owned(), t.clone())).collect()
    }

    fn valid(goal: &Expr, vs: &HashMap<String, Ty>) -> bool {
        matches!(decide_linear_with_info(goal, vs).0, Verdict::Valid)
    }

    #[test]
    fn simple_validities() {
        let vs = vars(&[("x", Ty::Nat), ("y", Ty::Nat)]);
        // x ≤ x + y (nat)
        let goal = Expr::binop(
            BinOp::Le,
            Expr::var("x"),
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::var("y")),
        );
        assert!(valid(&goal, &vs));
        // x < x + 1
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::var("x"),
            Expr::binop(BinOp::Add, Expr::var("x"), Expr::nat(1u64)),
        );
        assert!(valid(&goal, &vs));
    }

    #[test]
    fn invalid_with_counterexample() {
        let vs = vars(&[("x", Ty::Nat)]);
        // x < 5 is falsifiable.
        let goal = Expr::binop(BinOp::Lt, Expr::var("x"), Expr::nat(5u64));
        let (v, _) = decide_linear_with_info(&goal, &vs);
        let Verdict::Counterexample(m) = v else {
            panic!("expected counterexample, got {v:?}")
        };
        let Some(Value::Nat(n)) = m.get("x") else { panic!() };
        assert!(*n >= bignum::Nat::from(5u64));
    }

    #[test]
    fn int_reasoning_with_negatives() {
        let vs = vars(&[("a", Ty::Int)]);
        // a - 1 < a
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::binop(BinOp::Sub, Expr::var("a"), Expr::int(1)),
            Expr::var("a"),
        );
        assert!(valid(&goal, &vs));
        // -(-a) = a
        let goal = Expr::eq(
            Expr::unop(UnOp::Neg, Expr::unop(UnOp::Neg, Expr::var("a"))),
            Expr::var("a"),
        );
        assert!(valid(&goal, &vs));
        // a + 1 - 1 = a
        let goal = Expr::eq(
            Expr::binop(
                BinOp::Sub,
                Expr::binop(BinOp::Add, Expr::var("a"), Expr::int(1)),
                Expr::int(1),
            ),
            Expr::var("a"),
        );
        assert!(valid(&goal, &vs));
    }

    #[test]
    fn nat_subtraction_truncates() {
        let vs = vars(&[("a", Ty::Nat), ("b", Ty::Nat)]);
        // (a - b) + b = a is NOT valid for nat (a=0, b=1).
        let goal = Expr::eq(
            Expr::binop(
                BinOp::Add,
                Expr::binop(BinOp::Sub, Expr::var("a"), Expr::var("b")),
                Expr::var("b"),
            ),
            Expr::var("a"),
        );
        let (v, _) = decide_linear_with_info(&goal, &vs);
        assert!(matches!(v, Verdict::Counterexample(_)), "{v:?}");
        // b ≤ a → (a - b) + b = a IS valid.
        let fixed = Expr::implies(
            Expr::binop(BinOp::Le, Expr::var("b"), Expr::var("a")),
            goal,
        );
        assert!(valid(&fixed, &vs));
    }

    #[test]
    fn midpoint_vc_on_nat() {
        // The paper's Sec 3.2 example:
        // l < r → l ≤ (l + r) div 2 ∧ (l + r) div 2 < r
        let vs = vars(&[("l", Ty::Nat), ("r", Ty::Nat)]);
        let mid = Expr::binop(
            BinOp::Div,
            Expr::binop(BinOp::Add, Expr::var("l"), Expr::var("r")),
            Expr::nat(2u64),
        );
        let goal = Expr::implies(
            Expr::binop(BinOp::Lt, Expr::var("l"), Expr::var("r")),
            Expr::and(
                Expr::binop(BinOp::Le, Expr::var("l"), mid.clone()),
                Expr::binop(BinOp::Lt, mid, Expr::var("r")),
            ),
        );
        let (v, splits) = decide_linear_with_info(&goal, &vs);
        assert_eq!(v, Verdict::Valid, "the headline claim of Sec 3.2");
        assert!(splits > 0);
    }

    #[test]
    fn mod_bounds() {
        let vs = vars(&[("x", Ty::Nat)]);
        // x mod 4 < 4
        let goal = Expr::binop(
            BinOp::Lt,
            Expr::binop(BinOp::Mod, Expr::var("x"), Expr::nat(4u64)),
            Expr::nat(4u64),
        );
        assert!(valid(&goal, &vs));
    }

    #[test]
    fn unat_atomization_bounds() {
        // unat w ≤ 2^32 - 1 for a 32-bit word w: provable via atomisation.
        let vs = vars(&[("w", Ty::U32)]);
        let goal = Expr::binop(
            BinOp::Le,
            Expr::cast(CastKind::Unat, Expr::var("w")),
            Expr::nat(u64::from(u32::MAX)),
        );
        assert!(valid(&goal, &vs));
    }

    #[test]
    fn implication_chains() {
        let vs = vars(&[("x", Ty::Int), ("y", Ty::Int), ("z", Ty::Int)]);
        // x < y → y < z → x < z
        let goal = Expr::implies(
            Expr::binop(BinOp::Lt, Expr::var("x"), Expr::var("y")),
            Expr::implies(
                Expr::binop(BinOp::Lt, Expr::var("y"), Expr::var("z")),
                Expr::binop(BinOp::Lt, Expr::var("x"), Expr::var("z")),
            ),
        );
        assert!(valid(&goal, &vs));
    }

    #[test]
    fn scaled_constraints() {
        let vs = vars(&[("x", Ty::Int)]);
        // 2x ≥ 6 → x ≥ 3 (needs gcd tightening)
        let goal = Expr::implies(
            Expr::binop(
                BinOp::Le,
                Expr::int(6),
                Expr::binop(BinOp::Mul, Expr::int(2), Expr::var("x")),
            ),
            Expr::binop(BinOp::Le, Expr::int(3), Expr::var("x")),
        );
        assert!(valid(&goal, &vs));
    }
}
