//! Property tests for the automated-reasoning stack: the simplifier
//! preserves semantics, `Valid` verdicts hold on random samples,
//! counterexamples really falsify, and the two decision procedures agree
//! where both apply.

use std::collections::HashMap;

use ir::eval::{eval, Env};
use ir::expr::{BinOp, Expr, UnOp};
use ir::state::State;
use ir::ty::Ty;
use ir::value::Value;
use proptest::prelude::*;
use solver::{decide, simplify::simplify, Verdict};

/// Random nat-level arithmetic expressions over x, y.
fn arb_nat_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..50).prop_map(Expr::nat),
        Just(Expr::var("x")),
        Just(Expr::var("y")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        (inner.clone(), inner, prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Mul),
            Just(BinOp::Sub),
            Just(BinOp::Div),
            Just(BinOp::Mod),
        ])
            .prop_map(|(a, b, op)| Expr::binop(op, a, b))
    })
}

/// Random boolean formulas over nat atoms.
fn arb_formula() -> impl Strategy<Value = Expr> {
    let atom = (arb_nat_expr(), arb_nat_expr(), prop_oneof![
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
    ])
        .prop_map(|(a, b, op)| Expr::binop(op, a, b));
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::binop(BinOp::And, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::binop(BinOp::Or, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::implies(a, b)),
            inner.prop_map(|a| Expr::unop(UnOp::Not, a)),
        ]
    })
}

fn nat_vars() -> HashMap<String, Ty> {
    [("x".to_owned(), Ty::Nat), ("y".to_owned(), Ty::Nat)].into()
}

fn eval_with(e: &Expr, x: u64, y: u64) -> Result<Value, ir::eval::EvalError> {
    let mut env = Env::new();
    env.bind_mut("x", Value::nat(x));
    env.bind_mut("y", Value::nat(y));
    eval(e, &env, &State::conc_empty())
}

proptest! {
    /// The simplifier preserves the evaluator's semantics.
    #[test]
    fn simplify_preserves_semantics(e in arb_formula(), x in 0u64..40, y in 0u64..40) {
        let s = simplify(&e);
        prop_assert_eq!(eval_with(&e, x, y), eval_with(&s, x, y));
    }

    /// `Valid` verdicts are sound: the formula holds on sampled points.
    #[test]
    fn valid_verdicts_hold(e in arb_formula(), x in 0u64..40, y in 0u64..40) {
        if decide(&e, &nat_vars()) == Verdict::Valid {
            prop_assert_eq!(eval_with(&e, x, y), Ok(Value::Bool(true)));
        }
    }

    /// Counterexamples really falsify the formula.
    #[test]
    fn counterexamples_falsify(e in arb_formula()) {
        if let Verdict::Counterexample(m) = decide(&e, &nat_vars()) {
            let mut env = Env::new();
            for (k, v) in &m {
                env.bind_mut(k, v.clone());
            }
            // Variables absent from the model are free: instantiate to 0.
            for v in ["x", "y"] {
                if !m.contains_key(v) {
                    env.bind_mut(v, Value::nat(0u64));
                }
            }
            let r = eval(&e, &env, &State::conc_empty());
            prop_assert_eq!(r, Ok(Value::Bool(false)));
        }
    }

    /// Word-level decisions agree with brute evaluation on u8 (where the
    /// whole space is enumerable): bitblast soundness and completeness.
    #[test]
    fn bitblast_agrees_with_enumeration_u8(
        ka in 0u8..16, kb in 0u8..16,
        op in prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul),
                          Just(BinOp::BitAnd), Just(BinOp::BitXor)],
        cmp in prop_oneof![Just(BinOp::Eq), Just(BinOp::Le), Just(BinOp::Lt)],
    ) {
        use ir::word::Word;
        let lit = |v: u8| Expr::word(Word::u8(v));
        let x = || Expr::var("x");
        // goal: (x op ka) cmp kb
        let goal = Expr::binop(cmp, Expr::binop(op, x(), lit(ka)), lit(kb));
        let vars: HashMap<String, Ty> =
            [("x".to_owned(), Ty::Word(ir::Width::W8, ir::Signedness::Unsigned))].into();
        let verdict = solver::bitblast::decide_word(&goal, &vars);
        // Brute force over all 256 values.
        let mut all = true;
        let mut witness = None;
        for v in 0u16..256 {
            let mut env = Env::new();
            env.bind_mut("x", Value::Word(Word::u8(v as u8)));
            let r = eval(&goal, &env, &State::conc_empty()).unwrap();
            if r != Value::Bool(true) {
                all = false;
                witness = Some(v as u8);
                break;
            }
        }
        match verdict {
            Verdict::Valid => prop_assert!(all, "claimed valid, fails at {witness:?}"),
            Verdict::Counterexample(m) => {
                prop_assert!(!all);
                let Some(Value::Word(w)) = m.get("x") else {
                    return Err(TestCaseError::fail("no witness"));
                };
                let mut env = Env::new();
                env.bind_mut("x", Value::Word(*w));
                prop_assert_eq!(
                    eval(&goal, &env, &State::conc_empty()).unwrap(),
                    Value::Bool(false)
                );
            }
            Verdict::Unknown => {}
        }
    }
}
