//! Benchmark harnesses regenerating every table and figure of the paper.
//!
//! Each bench target prints its table/figure data once at startup (the
//! reproduction artefact) and then lets Criterion measure the operation the
//! table's CPU-time columns report. See `EXPERIMENTS.md` at the workspace
//! root for the paper-vs-measured record.

use std::time::Instant;

/// Times a closure once, returning (result, seconds).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}
