//! Table 3: the word-abstraction rule set in action.
//!
//! Prints the worked Sec 3.3 derivation (the midpoint example) as produced
//! by the real rules, then benchmarks the word-abstraction engine on the
//! case-study functions (the WA column of the translation cost).

use criterion::{criterion_group, criterion_main, Criterion};
use autocorres::{translate, Options};

fn print_derivation() {
    println!("Table 3 / Sec 3.3 — the worked midpoint derivation");
    println!("{:-<70}", "");
    let out = translate(
        "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2u; }",
        &Options::default(),
    )
    .unwrap();
    println!("input (HL level):\n{}", out.hl.function("mid").unwrap());
    println!("output (WA level):\n{}", out.wa.function("mid").unwrap());
    let (_, thm) = &out.thms.wa[0];
    println!(
        "theorem: {} (derivation: {} rule applications)",
        thm,
        thm.proof_size()
    );
    println!("{:-<70}", "");
}

fn bench(c: &mut Criterion) {
    print_derivation();
    for (name, src) in [
        ("midpoint", casestudies::sources::MIDPOINT),
        ("gcd", casestudies::sources::GCD),
        ("schorr_waite", casestudies::sources::SCHORR_WAITE),
    ] {
        // Prepare the HL-level input once; measure only the WA engine.
        let out = translate(src, &Options::default()).unwrap();
        let cx = kernel::CheckCtx {
            tenv: out.hl.tenv.clone(),
            ..kernel::CheckCtx::default()
        };
        c.bench_function(&format!("table3/wordabs_{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    wordabs::wa_program(&cx, &out.hl, &wordabs::WaOptions::default()).unwrap(),
                )
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
