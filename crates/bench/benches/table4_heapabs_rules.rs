//! Table 4 / Fig 3–5: the heap-abstraction rule set in action.
//!
//! Prints the swap function before and after heap abstraction (the Fig 3 →
//! Fig 5 transformation) and benchmarks the HL engine on the pointer-heavy
//! case studies.

use criterion::{criterion_group, criterion_main, Criterion};
use autocorres::{translate, Options};

fn print_swap() {
    println!("Fig 3 → Fig 5 — swap before and after heap abstraction");
    println!("{:-<70}", "");
    let out = translate(casestudies::sources::SWAP, &Options::default()).unwrap();
    println!("before (L2, byte-level guards):\n{}", out.l2.function("swap").unwrap());
    println!("after (HL, split heaps):\n{}", out.hl.function("swap").unwrap());
    let (_, thm) = &out.thms.hl[0];
    println!(
        "theorem: {} (derivation: {} rule applications)",
        thm,
        thm.proof_size()
    );
    println!("{:-<70}", "");
}

fn bench(c: &mut Criterion) {
    print_swap();
    for (name, src) in [
        ("swap", casestudies::sources::SWAP),
        ("reverse", casestudies::sources::REVERSE),
        ("suzuki", casestudies::sources::SUZUKI),
        ("schorr_waite", casestudies::sources::SCHORR_WAITE),
    ] {
        let out = translate(src, &Options::default()).unwrap();
        let cx = kernel::CheckCtx {
            tenv: out.l2.tenv.clone(),
            ..kernel::CheckCtx::default()
        };
        c.bench_function(&format!("table4/heapabs_{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    heapabs::hl_program(&cx, &out.l2, &heapabs::HlOptions::default()).unwrap(),
                )
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
