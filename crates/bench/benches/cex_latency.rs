//! Counterexample-extraction latency (DESIGN.md §6d).
//!
//! Measures `counterexample::analyze` — the VC pass, the solver
//! refutation, the falsification search, the five-layer runs, and trace
//! rendering — on the negative-path programs of `tests/negative_path.rs`,
//! plus seed playback (re-translate + re-run) for the simplest one. Each
//! program exercises a different extraction path: a bit-blasted model
//! (badmax), a linarith boundary model (inc/INT_MAX), a refuted loop VC
//! (count), an undecided heap goal falling to state search (second), and
//! the exec fallback for recursion (fact).

use counterexample::{analyze, FnSpec, Seed};
use criterion::{criterion_group, criterion_main, Criterion};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{LoopAnn, RV};

struct Case {
    name: &'static str,
    src: &'static str,
    spec: FnSpec,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "badmax",
            src: "int badmax(int a, int b) {\n\
                if (a < b) {\n\
                    return a;\n\
                }\n\
                return b;\n\
            }",
            spec: FnSpec {
                pre: Expr::tt(),
                post: Expr::and(
                    Expr::binop(BinOp::Le, Expr::var("a"), Expr::var(RV)),
                    Expr::binop(BinOp::Le, Expr::var("b"), Expr::var(RV)),
                ),
                anns: vec![],
            },
        },
        Case {
            name: "inc_overflow",
            src: "int inc(int x) {\n\
                return x + 1;\n\
            }",
            spec: FnSpec {
                pre: Expr::tt(),
                post: Expr::tt(),
                anns: vec![],
            },
        },
        Case {
            name: "count_off_by_one",
            src: "unsigned count(unsigned n) {\n\
                unsigned i = 0u;\n\
                while (i <= n) {\n\
                    i = i + 1u;\n\
                }\n\
                return i;\n\
            }",
            spec: FnSpec {
                pre: Expr::binop(BinOp::Lt, Expr::var("n"), Expr::u32(1000)),
                post: Expr::eq(Expr::var(RV), Expr::var("n")),
                anns: vec![LoopAnn {
                    inv: Expr::and(
                        Expr::binop(
                            BinOp::Le,
                            Expr::var("i"),
                            Expr::binop(BinOp::Add, Expr::var("n"), Expr::u32(1)),
                        ),
                        Expr::binop(BinOp::Lt, Expr::var("n"), Expr::u32(1000)),
                    ),
                    measure: None,
                    var_tys: vec![("i".into(), Ty::U32), ("n".into(), Ty::U32)],
                }],
            },
        },
        Case {
            name: "heap_walk",
            src: "struct node { unsigned data; struct node *next; };\n\
                unsigned second(struct node *p) {\n\
                return p->next->data;\n\
            }",
            spec: FnSpec {
                pre: Expr::is_valid(Ty::Struct("node".into()), Expr::var("p")),
                post: Expr::tt(),
                anns: vec![],
            },
        },
        Case {
            name: "fact_recursion",
            src: "unsigned fact(unsigned n) {\n\
                if (n == 0u) {\n\
                    return 0u;\n\
                }\n\
                return n * fact(n - 1u);\n\
            }",
            spec: FnSpec {
                pre: Expr::binop(BinOp::Lt, Expr::var("n"), Expr::u32(6)),
                post: Expr::binop(BinOp::Le, Expr::u32(1), Expr::var(RV)),
                anns: vec![],
            },
        },
    ]
}

fn fn_name(case: &Case) -> &'static str {
    match case.name {
        "inc_overflow" => "inc",
        "count_off_by_one" => "count",
        "heap_walk" => "second",
        "fact_recursion" => "fact",
        other => other,
    }
}

fn bench(c: &mut Criterion) {
    for case in cases() {
        let out = autocorres::translate(case.src, &autocorres::Options::default()).unwrap();
        let name = fn_name(&case);
        // Extraction alone (translation is measured by Table 5 benches).
        c.bench_function(&format!("cex/extract_{}", case.name), |b| {
            b.iter(|| std::hint::black_box(analyze(&out, name, &case.spec).unwrap()));
        });
    }
    // Playback: parse seed, re-translate the embedded source, re-run.
    let case = &cases()[0];
    let out = autocorres::translate(case.src, &autocorres::Options::default()).unwrap();
    let analysis = analyze(&out, "badmax", &case.spec).unwrap();
    let seed = Seed::from_cex(analysis.first_cex().unwrap(), &case.spec, case.src);
    let text = seed.render();
    c.bench_function("cex/playback_badmax", |b| {
        b.iter(|| std::hint::black_box(counterexample::playback(&text).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
