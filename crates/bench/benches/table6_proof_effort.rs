//! Table 6: lines of proof for the Schorr-Waite development.
//!
//! Our column reports the *measured* sizes of the proof artefacts this
//! repository actually checks (the delimited sections of
//! `casestudies::schorr_waite`); the M/N and H/M columns repeat the
//! published numbers for comparison. The shape claim: a port of a
//! high-level proof to the AutoCorres output stays the same order of
//! magnitude as the original high-level proof, and far below the
//! previous C-level verification.
//!
//! Criterion then measures the mechanical end of the story: running the
//! translated Schorr-Waite and checking the ported postcondition.

use casestudies::proofs::published;
use casestudies::schorr_waite;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn print_table() {
    let ours = schorr_waite::proof_script();
    let rev = schorr_waite::reverse_proof_script();
    println!("Table 6 — lines of proof (Schorr-Waite)");
    println!("{:-<74}", "");
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "Component", "This work", "M/N", "H/M"
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "List definitions",
        ours.lines("list-definitions"),
        published::MN_LIST_DEFS,
        "~900"
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "Partial correctness",
        ours.lines("partial-correctness"),
        published::MN_PARTIAL,
        "~1400"
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "Fault freedom",
        ours.lines("fault-freedom"),
        "—",
        ""
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "Termination",
        ours.lines("termination"),
        "—",
        "~900"
    );
    println!(
        "{:<26} {:>10} {:>8} {:>8}",
        "Total",
        ours.total(),
        published::MN_TOTAL,
        published::HM_TOTAL
    );
    println!(
        "(paper's own port: {} total; list-reversal port here: {} lines)",
        published::THIS_WORK_TOTAL,
        rev.total()
    );
    println!("{:-<74}", "");
    // Shape assertions: same order as M/N, far below H/M.
    assert!(ours.total() < published::HM_TOTAL / 2);
    assert!(ours.total() > published::MN_TOTAL / 20);
}

fn bench(c: &mut Criterion) {
    print_table();
    let out = schorr_waite::pipeline();
    let mut rng = StdRng::seed_from_u64(99);
    let graphs: Vec<casestudies::graphs::Graph> = (0..8)
        .map(|_| casestudies::graphs::random_graph(&mut rng, 7))
        .collect();
    c.bench_function("table6/schorr_waite_run_and_check", |b| {
        b.iter(|| {
            for g in &graphs {
                let root = g.addrs.first().copied().unwrap_or(0);
                let st = schorr_waite::run(&out, g, root);
                assert!(schorr_waite::mehta_nipkow_post(g, root, &st));
            }
        });
    });
    c.bench_function("table6/schorr_waite_translation", |b| {
        b.iter(|| std::hint::black_box(schorr_waite::pipeline()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
