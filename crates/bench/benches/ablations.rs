//! Ablations of the design choices DESIGN.md §6 calls out:
//!
//! 1. **Heap abstraction on/off** — what the user would face without Sec 4:
//!    VC sizes for swap at the byte level vs split heaps.
//! 2. **Word abstraction on/off** — the Sec 3 contrast: deciding the
//!    midpoint VC with and without abstraction.
//! 3. **L2 guard simplification on/off** — measured indirectly: the count
//!    of guards surviving in the output with the optimisation (the
//!    baseline is the raw count of guard-emitting operations).
//! 4. **Differential-testing budget** — translation cost as a function of
//!    the `l2_trials` validation budget.

use autocorres::{translate, Options};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;

fn count_guards(p: &monadic::Prog) -> usize {
    let mut n = 0;
    fn walk(p: &monadic::Prog, n: &mut usize) {
        use monadic::Prog;
        match p {
            Prog::Guard(..) => *n += 1,
            Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
                walk(l, n);
                walk(r, n);
            }
            Prog::Condition(_, t, e) => {
                walk(t, n);
                walk(e, n);
            }
            Prog::While { body, .. } => walk(body, n),
            Prog::ExecConcrete(q) | Prog::ExecAbstract(q) => walk(q, n),
            _ => {}
        }
    }
    walk(p, &mut n);
    n
}

fn print_ablations() {
    println!("Ablation 1 — heap abstraction (swap verification)");
    {
        let out = translate(casestudies::sources::SWAP, &Options::default()).unwrap();
        let read = |p: &str| ir::Expr::read_heap(ir::Ty::U32, ir::Expr::var(p));
        let spec = vcg::Spec {
            pre: ir::Expr::and(
                ir::Expr::and(
                    ir::Expr::is_valid(ir::Ty::U32, ir::Expr::var("a")),
                    ir::Expr::is_valid(ir::Ty::U32, ir::Expr::var("b")),
                ),
                ir::Expr::and(
                    ir::Expr::eq(read("a"), ir::Expr::var("x")),
                    ir::Expr::eq(read("b"), ir::Expr::var("y")),
                ),
            ),
            post: ir::Expr::and(
                ir::Expr::eq(read("a"), ir::Expr::var("y")),
                ir::Expr::eq(read("b"), ir::Expr::var("x")),
            ),
        };
        let hl_vcs = vcg::vcg(
            &out.hl.function("swap").unwrap().body,
            &spec,
            &[],
            vcg::HeapModel::SplitHeaps,
            &out.hl.tenv,
        )
        .unwrap();
        let byte_vcs = vcg::vcg(
            &out.l2.function("swap").unwrap().body,
            &spec,
            &[],
            vcg::HeapModel::ByteLevel,
            &out.l2.tenv,
        )
        .unwrap();
        let hs: usize = hl_vcs.iter().map(|v| v.goal.term_size()).sum();
        let bs: usize = byte_vcs.iter().map(|v| v.goal.term_size()).sum();
        println!("  split-heap VC size: {hs}; byte-level VC size: {bs} ({:.1}x)", bs as f64 / hs as f64);
        assert!(bs > hs);
    }

    println!("Ablation 2 — word abstraction (midpoint decision procedure)");
    {
        let nat_goal = {
            let l = || ir::Expr::var("l");
            let r = || ir::Expr::var("r");
            let mid = ir::Expr::binop(
                ir::BinOp::Div,
                ir::Expr::binop(ir::BinOp::Add, l(), r()),
                ir::Expr::nat(2u64),
            );
            ir::Expr::implies(
                ir::Expr::and(
                    ir::Expr::binop(ir::BinOp::Lt, l(), r()),
                    ir::Expr::binop(
                        ir::BinOp::Le,
                        ir::Expr::binop(ir::BinOp::Add, l(), r()),
                        ir::Expr::nat(u64::from(u32::MAX)),
                    ),
                ),
                ir::Expr::binop(ir::BinOp::Le, l(), mid),
            )
        };
        let nv: HashMap<String, ir::Ty> =
            [("l".into(), ir::Ty::Nat), ("r".into(), ir::Ty::Nat)].into();
        let info = solver::decide_with_info(&nat_goal, &nv);
        println!("  with WA:    {:?} via {}", info.verdict, info.procedure);
        let word_goal = {
            let l = || ir::Expr::var("l");
            let r = || ir::Expr::var("r");
            let sum = ir::Expr::binop(ir::BinOp::Add, l(), r());
            let mid = ir::Expr::binop(ir::BinOp::Div, sum.clone(), ir::Expr::u32(2));
            ir::Expr::implies(
                ir::Expr::and(
                    ir::Expr::binop(ir::BinOp::Lt, l(), r()),
                    ir::Expr::binop(ir::BinOp::Le, l(), sum),
                ),
                ir::Expr::binop(ir::BinOp::Le, l(), mid),
            )
        };
        let wv: HashMap<String, ir::Ty> =
            [("l".into(), ir::Ty::U32), ("r".into(), ir::Ty::U32)].into();
        let winfo = solver::decide_with_info(&word_goal, &wv);
        let st = winfo.sat_stats.unwrap_or_default();
        println!(
            "  without WA: {:?} via {} ({} SAT conflicts)",
            winfo.verdict, winfo.procedure, st.conflicts
        );
    }

    println!("Ablation 3 — L2 guard simplification (guards in the gcd output)");
    {
        let out = translate(casestudies::sources::GCD, &Options::default()).unwrap();
        let l1_guards = count_guards(&out.l1.function("gcd").unwrap().body);
        let l2_guards = count_guards(&out.l2.function("gcd").unwrap().body);
        println!("  guards at L1 (parser-emitted): {l1_guards}; after L2 simplification: {l2_guards}");
        assert!(l2_guards <= l1_guards);
    }
}

fn bench(c: &mut Criterion) {
    print_ablations();
    // Ablation 4: translation cost vs differential-testing budget.
    let typed = cparser::parse_and_check(casestudies::sources::SCHORR_WAITE).unwrap();
    for trials in [2u32, 20, 80] {
        let opts = Options {
            l2_trials: trials,
            seed: 1,
            ..Options::default()
        };
        c.bench_function(&format!("ablation/translate_sw_trials_{trials}"), |b| {
            b.iter(|| {
                std::hint::black_box(autocorres::translate_program(&typed, &opts).unwrap())
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
