//! Table 2: incorrect mathematical reasoning in C.
//!
//! For each of the paper's five "obvious" identities, the bit-blaster finds
//! the counterexample mechanically at the word level, while the
//! corresponding ideal (`nat`/`int` + guards) statement is proved valid by
//! linear arithmetic. Criterion then measures the *cost* of the two worlds:
//! deciding at the word level (SAT) versus at the ideal level (linarith).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use ir::expr::{BinOp, Expr, UnOp};
use ir::ty::Ty;
use solver::{decide, Verdict};

struct Row {
    name: &'static str,
    /// The invalid word-level claim.
    word_claim: Expr,
    word_vars: HashMap<String, Ty>,
    /// The valid ideal-level counterpart (with guards where needed).
    ideal_claim: Expr,
    ideal_vars: HashMap<String, Ty>,
}

fn vars(pairs: &[(&str, Ty)]) -> HashMap<String, Ty> {
    pairs
        .iter()
        .map(|(n, t)| ((*n).to_owned(), t.clone()))
        .collect()
}

fn rows() -> Vec<Row> {
    let s = || Expr::var("s");
    let u = || Expr::var("u");
    vec![
        // s = s + 1 - 1 is undefined at s = INT_MAX. The observable
        // hardware consequence of that UB (Sec 3.1's gcc example): the
        // "obvious" s + 1 > s is false at the word level.
        Row {
            name: "s = s + 1 - 1",
            word_claim: Expr::binop(
                BinOp::Lt,
                s(),
                Expr::binop(BinOp::Add, s(), Expr::i32(1)),
            ),
            word_vars: vars(&[("s", Ty::I32)]),
            ideal_claim: Expr::eq(
                Expr::binop(
                    BinOp::Sub,
                    Expr::binop(BinOp::Add, s(), Expr::int(1)),
                    Expr::int(1),
                ),
                s(),
            ),
            ideal_vars: vars(&[("s", Ty::Int)]),
        },
        // u + 1 > u (fails at u = 2^32 - 1; valid on nat)
        Row {
            name: "u + 1 > u",
            word_claim: Expr::binop(
                BinOp::Lt,
                u(),
                Expr::binop(BinOp::Add, u(), Expr::u32(1)),
            ),
            word_vars: vars(&[("u", Ty::U32)]),
            ideal_claim: Expr::binop(
                BinOp::Lt,
                u(),
                Expr::binop(BinOp::Add, u(), Expr::nat(1u64)),
            ),
            ideal_vars: vars(&[("u", Ty::Nat)]),
        },
        // u * 2 = 4 → u = 2 (fails at u = 2^31 + 2; valid on nat)
        Row {
            name: "u * 2 = 4 → u = 2",
            word_claim: Expr::implies(
                Expr::eq(Expr::binop(BinOp::Mul, u(), Expr::u32(2)), Expr::u32(4)),
                Expr::eq(u(), Expr::u32(2)),
            ),
            word_vars: vars(&[("u", Ty::U32)]),
            ideal_claim: Expr::implies(
                Expr::eq(
                    Expr::binop(BinOp::Mul, u(), Expr::nat(2u64)),
                    Expr::nat(4u64),
                ),
                Expr::eq(u(), Expr::nat(2u64)),
            ),
            ideal_vars: vars(&[("u", Ty::Nat)]),
        },
        // -u = u → u = 0 (fails at u = 2^31; valid on nat/int)
        Row {
            name: "-u = u → u = 0",
            word_claim: Expr::implies(
                Expr::eq(Expr::unop(UnOp::Neg, u()), u()),
                Expr::eq(u(), Expr::u32(0)),
            ),
            word_vars: vars(&[("u", Ty::U32)]),
            ideal_claim: Expr::implies(
                Expr::eq(Expr::unop(UnOp::Neg, Expr::var("i")), Expr::var("i")),
                Expr::eq(Expr::var("i"), Expr::int(0)),
            ),
            ideal_vars: vars(&[("i", Ty::Int)]),
        },
        // -(-s) = s is undefined at s = INT_MIN. Observable consequence:
        // "negating a negative yields a positive" fails at INT_MIN.
        Row {
            name: "-(-s) = s",
            word_claim: Expr::implies(
                Expr::binop(BinOp::Lt, s(), Expr::i32(0)),
                Expr::binop(BinOp::Lt, Expr::i32(0), Expr::unop(UnOp::Neg, s())),
            ),
            word_vars: vars(&[("s", Ty::I32)]),
            ideal_claim: Expr::eq(
                Expr::unop(UnOp::Neg, Expr::unop(UnOp::Neg, s())),
                s(),
            ),
            ideal_vars: vars(&[("s", Ty::Int)]),
        },
    ]
}

fn print_table() {
    println!("Table 2 — incorrect mathematical reasoning in C (32-bit words)");
    println!("{:-<78}", "");
    println!(
        "{:<22} {:<32} {:<18}",
        "Equation", "word-level verdict", "ideal-level verdict"
    );
    for row in rows() {
        let wv = decide(&row.word_claim, &row.word_vars);
        let iv = decide(&row.ideal_claim, &row.ideal_vars);
        let wtext = match &wv {
            Verdict::Counterexample(m) => {
                let mut parts: Vec<String> =
                    m.iter().map(|(k, v)| format!("{k} = {v}")).collect();
                parts.sort();
                format!("counterexample: {}", parts.join(", "))
            }
            other => format!("{other:?}"),
        };
        println!("{:<22} {:<32} {:<18?}", row.name, wtext, iv);
        assert!(
            matches!(wv, Verdict::Counterexample(_)),
            "{}: word level must be refutable",
            row.name
        );
        assert_eq!(iv, Verdict::Valid, "{}: ideal level must hold", row.name);
    }
    println!("{:-<78}", "");
}

fn bench(c: &mut Criterion) {
    print_table();
    let rs = rows();
    c.bench_function("table2/word_level_refutation", |b| {
        b.iter(|| {
            for r in &rs {
                std::hint::black_box(decide(&r.word_claim, &r.word_vars));
            }
        });
    });
    c.bench_function("table2/ideal_level_proof", |b| {
        b.iter(|| {
            for r in &rs {
                std::hint::black_box(decide(&r.ideal_claim, &r.ideal_vars));
            }
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
