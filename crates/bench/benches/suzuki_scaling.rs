//! Sec 4.3: the scalability problem of ad-hoc heap lifting, measured on
//! Suzuki-style pointer-write chains.
//!
//! The paper: on Suzuki's fragment, "Isabelle/HOL fails to apply the
//! heap-lifting rules … the prover is already overloaded just applying
//! heap abstraction". We reproduce the structural asymmetry: verifying a
//! chain of n pointer-field writes at the byte level produces VCs whose
//! size grows with the extra overlap obligations, while the split-heap VCs
//! stay lean and `auto` discharges them immediately. The bench sweeps the
//! chain length (the paper's fragment is n = 4).

use std::collections::HashMap;
use std::fmt::Write as _;

use autocorres::{translate, Options};
use criterion::{criterion_group, criterion_main, Criterion};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{verify, HeapModel, Spec};

/// Generates a Suzuki-style fragment over `n` distinct nodes: link writes,
/// data writes, then a chained read.
fn suzuki_n(n: usize) -> String {
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let mut src = String::from("struct node { struct node *next; int data; };\n");
    let params: Vec<String> = names.iter().map(|n| format!("struct node *{n}")).collect();
    let _ = writeln!(src, "int suzuki({}) {{", params.join(", "));
    for i in 0..n.saturating_sub(1) {
        let _ = writeln!(src, "    {}->next = {};", names[i], names[i + 1]);
    }
    for (i, p) in names.iter().enumerate() {
        let _ = writeln!(src, "    {}->data = {};", p, i + 1);
    }
    let _ = writeln!(src, "    return {}->next->data;", names[0]);
    let _ = writeln!(src, "}}");
    src
}

fn spec_for(n: usize) -> (Spec, HashMap<String, Ty>) {
    let node = Ty::Struct("node".into());
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let mut pre = Expr::tt();
    for p in &names {
        pre = Expr::and(pre, Expr::is_valid(node.clone(), Expr::var(p.clone())));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            pre = Expr::and(
                pre,
                Expr::binop(
                    BinOp::Ne,
                    Expr::var(names[i].clone()),
                    Expr::var(names[j].clone()),
                ),
            );
        }
    }
    let spec = Spec {
        pre,
        post: Expr::eq(Expr::var(vcg::wp::RV), Expr::i32(2)),
    };
    let vars = names
        .into_iter()
        .map(|p| (p, node.clone().ptr_to()))
        .collect();
    (spec, vars)
}

fn vc_size(n: usize, model: HeapModel) -> (usize, bool) {
    let src = suzuki_n(n);
    let out = translate(&src, &Options::default()).unwrap();
    let body = match model {
        HeapModel::SplitHeaps => out.hl.function("suzuki").unwrap().body.clone(),
        HeapModel::ByteLevel => out.l2.function("suzuki").unwrap().body.clone(),
    };
    let (spec, vars) = spec_for(n);
    let (vcs, effort) = verify(&body, &spec, &[], model, &vars, &out.hl.tenv).unwrap();
    (
        vcs.iter().map(|v| v.goal.term_size()).sum(),
        effort.fully_automatic(),
    )
}

fn print_sweep() {
    println!("Sec 4.3 — Suzuki-style chains: split heaps vs byte level");
    println!(
        "{:<4} {:>18} {:>8} {:>18} {:>8}",
        "n", "split VC size", "auto?", "byte VC size", "auto?"
    );
    println!("{:-<64}", "");
    for n in [2usize, 3, 4, 5, 6] {
        let (ss, sa) = vc_size(n, HeapModel::SplitHeaps);
        let (bs, _ba) = vc_size(n, HeapModel::ByteLevel);
        println!("{n:<4} {ss:>18} {sa:>8} {bs:>18} {:>8}", "(n/a)");
        assert!(sa, "split heaps must stay automatic at n = {n}");
        assert!(bs > ss, "byte-level VCs must be larger at n = {n}");
    }
    println!("{:-<64}", "");
    println!("(byte-level automation requires the pairwise non-overlap");
    println!(" preconditions — precisely Tuch's scalability problem)");
}

fn bench(c: &mut Criterion) {
    print_sweep();
    // The paper's n = 4 instance end to end.
    let src = suzuki_n(4);
    let out = translate(&src, &Options::default()).unwrap();
    let (spec, vars) = spec_for(4);
    let body_hl = out.hl.function("suzuki").unwrap().body.clone();
    c.bench_function("suzuki/split_heap_verify_n4", |b| {
        b.iter(|| {
            std::hint::black_box(
                verify(&body_hl, &spec, &[], HeapModel::SplitHeaps, &vars, &out.hl.tenv)
                    .unwrap(),
            )
        });
    });
    let body_l2 = out.l2.function("suzuki").unwrap().body.clone();
    c.bench_function("suzuki/byte_level_verify_n4", |b| {
        b.iter(|| {
            std::hint::black_box(
                verify(&body_l2, &spec, &[], HeapModel::ByteLevel, &vars, &out.hl.tenv)
                    .unwrap(),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
