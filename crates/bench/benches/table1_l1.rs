//! Table 1: the Simpl-construct ↔ monadic-function correspondence, printed
//! from the kernel's actual L1 rules, plus the cost of the L1 phase on the
//! case-study sources.

use criterion::{criterion_group, criterion_main, Criterion};
use kernel::rules::refine;
use kernel::{CheckCtx, Judgment};
use simpl::stmt::SimplStmt;

fn print_table() {
    println!("Table 1 — Simpl commands and their monadic counterparts (from the L1 rules)");
    println!("{:-<70}", "");
    let cx = CheckCtx::default();
    let rows: Vec<(&str, SimplStmt)> = vec![
        ("Skip", SimplStmt::Skip),
        (
            "Basic m",
            SimplStmt::Basic(ir::update::Update::Local("x".into(), ir::Expr::u32(1))),
        ),
        ("Throw", SimplStmt::Throw),
        (
            "Cond c L R",
            SimplStmt::Cond(
                ir::Expr::var("c"),
                Box::new(SimplStmt::Skip),
                Box::new(SimplStmt::Throw),
            ),
        ),
        (
            "Guard t g B",
            SimplStmt::Guard(
                ir::GuardKind::DivByZero,
                ir::Expr::var("g"),
                Box::new(SimplStmt::Skip),
            ),
        ),
    ];
    for (name, stmt) in rows {
        let subs: Vec<kernel::Thm> = match &stmt {
            SimplStmt::Cond(..) => vec![
                refine::l1(&cx, &SimplStmt::Skip, vec![]).unwrap(),
                refine::l1(&cx, &SimplStmt::Throw, vec![]).unwrap(),
            ],
            SimplStmt::Guard(..) => vec![refine::l1(&cx, &SimplStmt::Skip, vec![]).unwrap()],
            _ => vec![],
        };
        let thm = refine::l1(&cx, &stmt, subs).unwrap();
        let Judgment::L1 { prog, .. } = thm.judgment() else {
            unreachable!()
        };
        let rendered = prog.to_string().replace('\n', " ");
        println!("{name:<14} ↦  {rendered}");
    }
    println!("{:-<70}", "");
}

fn bench(c: &mut Criterion) {
    print_table();
    let typed = cparser::parse_and_check(casestudies::sources::SCHORR_WAITE).unwrap();
    let sp = simpl::translate_program(&typed).unwrap();
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };
    c.bench_function("table1/l1_phase_schorr_waite", |b| {
        b.iter(|| std::hint::black_box(autocorres::l1::l1_program(&cx, &sp).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
