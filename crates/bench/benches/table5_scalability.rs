//! Table 5: automatic abstraction in the large.
//!
//! For each code-base profile (synthetic stand-ins calibrated to the
//! paper's LoC/function counts — see `codegen` and DESIGN.md §4), the
//! harness reports:
//!
//! * LoC and function count,
//! * CPU time of the *parser* (C → Simpl) and of *AutoCorres* (L1 → WA),
//! * lines of specification and average term size for both outputs,
//! * the reduction percentages the paper's Sec 5.1 highlights
//!   (25–53 % fewer lines, 40–61 % smaller terms).
//!
//! The two large profiles run once (they are minutes-scale workloads, like
//! the paper's 1443s/2368s seL4 row); Criterion measures the smaller ones.

use autocorres::{translate_program, Options};
use bench::time_once;
use criterion::{criterion_group, criterion_main, Criterion};
use ir::metrics::SpecMetrics;

struct RowOut {
    name: &'static str,
    loc: usize,
    functions: usize,
    parser_s: f64,
    ac_s: f64,
    parser_m: SpecMetrics,
    ac_m: SpecMetrics,
}

fn run_profile(p: &codegen::Profile, seed: u64) -> RowOut {
    let src = if p.name == "Schorr-Waite" {
        casestudies::sources::SCHORR_WAITE.to_owned()
    } else {
        codegen::generate(p, seed)
    };
    let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
    // Parser: C → typed AST → Simpl (the trusted front end).
    let (typed, t_parse) = time_once(|| cparser::parse_and_check(&src).unwrap());
    let (_simpl_only, t_simpl) = time_once(|| simpl::translate_program(&typed).unwrap());
    // AutoCorres: the verified phases. A small differential-testing budget
    // keeps the one-off cost proportional (the paper also reports one-off
    // CPU time; translations are cached and reused).
    let opts = Options {
        l2_trials: 2,
        seed,
        ..Options::default()
    };
    let (out, t_ac) = time_once(|| translate_program(&typed, &opts).unwrap());
    RowOut {
        name: p.name,
        loc,
        functions: out.wa.fns.len(),
        parser_s: t_parse + t_simpl,
        ac_s: t_ac,
        parser_m: out.parser_metrics(),
        ac_m: out.output_metrics(),
    }
}

fn print_row(r: &RowOut) {
    let line_red = 100.0 * (1.0 - r.ac_m.lines as f64 / r.parser_m.lines.max(1) as f64);
    let term_red = 100.0 * (1.0 - r.ac_m.term_size as f64 / r.parser_m.term_size.max(1) as f64);
    println!(
        "{:<16} {:>6} {:>5} | {:>9.3}s {:>9.3}s | {:>7} {:>7} ({:>4.1}%) | {:>8} {:>8} ({:>4.1}%)",
        r.name,
        r.loc,
        r.functions,
        r.parser_s,
        r.ac_s,
        r.parser_m.lines,
        r.ac_m.lines,
        line_red,
        r.parser_m.term_size / r.functions.max(1),
        r.ac_m.term_size / r.functions.max(1),
        term_red,
    );
}

fn bench(c: &mut Criterion) {
    println!("Table 5 — comparison of C parser output and AutoCorres output");
    println!(
        "{:<16} {:>6} {:>5} | {:>10} {:>10} | {:>24} | {:>24}",
        "Program", "LoC", "Fns", "parser", "AutoCorres", "lines of spec (reduction)", "avg term size (reduction)"
    );
    println!("{:-<120}", "");
    // Large profiles once; the small ones also once for the table, and the
    // smallest again under Criterion for stable timing.
    for p in codegen::TABLE5 {
        let r = run_profile(p, 0xAC);
        print_row(&r);
        // The line reduction is driven by eliminating per-statement
        // plumbing across many functions; for a tiny single-function
        // profile the fixed do/od scaffolding dominates, so allow
        // near-parity there (the paper's per-program reductions likewise
        // vary with program size).
        let line_slack = if p.functions <= 2 { 3 } else { 0 };
        assert!(
            r.ac_m.lines <= r.parser_m.lines + line_slack,
            "{}: output must not be larger ({} vs {})",
            r.name,
            r.ac_m.lines,
            r.parser_m.lines
        );
        assert!(
            r.ac_m.term_size < r.parser_m.term_size,
            "{}: terms must be smaller",
            r.name
        );
    }
    println!("{:-<120}", "");

    let echronos = &codegen::TABLE5[3];
    let src = codegen::generate(echronos, 0xAC);
    let typed = cparser::parse_and_check(&src).unwrap();
    c.bench_function("table5/parser_echronos", |b| {
        b.iter(|| std::hint::black_box(simpl::translate_program(&typed).unwrap()));
    });
    let opts = Options {
        l2_trials: 2,
        seed: 0xAC,
        ..Options::default()
    };
    c.bench_function("table5/autocorres_echronos", |b| {
        b.iter(|| std::hint::black_box(translate_program(&typed, &opts).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
