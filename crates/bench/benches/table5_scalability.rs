//! Table 5: automatic abstraction in the large.
//!
//! For each code-base profile (synthetic stand-ins calibrated to the
//! paper's LoC/function counts — see `codegen` and DESIGN.md §4), the
//! harness reports:
//!
//! * LoC and function count,
//! * CPU time of the *parser* (C → Simpl) and of *AutoCorres* (L1 → WA),
//!   the latter both sequentially and on a worker pool — with a
//!   byte-identity check that scheduling never leaks into the output,
//! * wall time of the proof-checker replay, sequential and parallel,
//! * lines of specification and average term size for both outputs,
//! * the reduction percentages the paper's Sec 5.1 highlights
//!   (25–53 % fewer lines, 40–61 % smaller terms).
//!
//! Besides the stdout table the run writes `BENCH_table5.json` at the
//! workspace root with the raw numbers, including per-phase pool stats
//! (requested vs effective workers, busy/wall, batch and steal counts)
//! and the parallel wall time at each gated worker count.
//!
//! Every row is gated: parallel translation must cost at most
//! [`PAR_OVERHEAD_GATE`]× sequential at every [`GATE_WORKER_COUNTS`]
//! entry, so a scheduler whose overhead makes parallelism a pessimization
//! fails the bench instead of silently landing in the JSON.
//!
//! The two large profiles run once (they are minutes-scale workloads, like
//! the paper's 1443s/2368s seL4 row); Criterion measures the smaller ones.

use autocorres::{translate_program, Options, Output, PhaseStat, Session};
use bench::time_once;
use criterion::{criterion_group, criterion_main, Criterion};
use ir::metrics::SpecMetrics;
use std::fmt::Write as _;

/// Worker counts the overhead gate is measured at. All of them
/// oversubscribe a small host — which is the point: the adaptive planner
/// must size the pool down so a parallel request is never slower than
/// sequential by more than the gate, no matter what the caller asked for.
const GATE_WORKER_COUNTS: [usize; 3] = [2, 4, 8];

/// Parallel translation may cost at most this factor over sequential at
/// *every* measured worker count (the regression this harness exists to
/// catch ran at 2.16× on a 1-CPU host before the adaptive planner).
const PAR_OVERHEAD_GATE: f64 = 1.05;

/// Absolute noise floor added to the gate bound: shared-container timing
/// jitter between *identical* code paths exceeds 5% at the
/// tens-of-milliseconds scale, so the multiplicative gate alone would be
/// flaky on the small rows. 30 ms is negligible against the seconds-scale
/// seL4 row the 2.16× regression actually bit, which stays tightly gated.
const GATE_NOISE_FLOOR_S: f64 = 0.030;

/// The gate bound for a given sequential time.
fn gate_bound(t_seq: f64) -> f64 {
    PAR_OVERHEAD_GATE * t_seq + GATE_NOISE_FLOOR_S
}

struct RowOut {
    name: &'static str,
    loc: usize,
    functions: usize,
    parser_s: f64,
    ac_seq_s: f64,
    ac_par_s: f64,
    replay_seq_s: f64,
    replay_par_s: f64,
    theorems: usize,
    proof_nodes: usize,
    parser_m: SpecMetrics,
    ac_m: SpecMetrics,
    /// Hash-consing wins during this row's parse + sequential translation:
    /// term nodes requested per node allocated (1.0 = no sharing).
    term_dedup_ratio: f64,
    /// Shared-node replay-cache counters of the parallel replay.
    replay_cache_hits: u64,
    replay_cache_misses: u64,
    /// Wall time of re-translating after editing one function through a
    /// warm [`Session`] (milliseconds).
    incremental_retranslate_ms: f64,
    /// From-scratch wall time of the same edited program (milliseconds),
    /// at the same worker count — the incremental run's baseline.
    scratch_retranslate_ms: f64,
    /// Functions the edit actually dirtied (the edited function plus its
    /// transitive callers in the exec-testing phases).
    dirty_cone_fns: usize,
    /// Wall time of a disk-backed *cold* start (empty cache directory:
    /// full translation plus the artifact write-back), milliseconds.
    cold_start_ms: f64,
    /// Wall time of a *fresh session* warm-starting from that directory
    /// alone (load included), milliseconds. Gated at ≤25% of cold on the
    /// seL4-scale row.
    warm_start_ms: f64,
    /// Parallel translation wall time at each [`GATE_WORKER_COUNTS`]
    /// entry (best of the gate's retry budget).
    par_by_workers: Vec<(usize, f64)>,
    /// Per-phase scheduler observability of the recorded parallel run:
    /// requested vs effective workers, busy/wall occupancy, batch and
    /// steal counts.
    phase_stats: Vec<PhaseStat>,
    /// Guards the abstract-interpretation phase saw on reachable paths.
    vc_count_total: usize,
    /// Guards proved statically (each backed by an `absint_discharge`
    /// theorem; no solver work needed).
    vc_discharged_static: usize,
    /// Wall time of the absint phase in the recorded parallel run.
    absint_ms: f64,
}

/// Edits one function of the generated source: the *last* generated
/// `fn_N` gets its body replaced (callees only ever have lower indices, so
/// the edit's caller cone is just the function itself — the leaf-edit
/// scenario an incremental session is built for). Sources without a
/// generated `fn_N` (Schorr-Waite) are returned unchanged, making the
/// "incremental" run a pure cache-validation pass.
fn edit_one_fn(src: &str) -> String {
    let Some(pos) = src.rfind("\nunsigned fn_") else {
        return src.to_owned();
    };
    let Some(open) = src[pos..].find('{') else {
        return src.to_owned();
    };
    format!("{}{{ return 42u; }}\n", &src[..pos + open])
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn pool_workers() -> usize {
    host_cpus().clamp(4, 16)
}

/// Whether wall-clock speedups from the worker pool are meaningful on this
/// host: a pool can only time-slice on fewer than 4 real cores, so sub-1.0
/// "speedups" there say nothing about the pipeline (the ≥2x assertion is
/// gated on the same predicate).
fn parallel_meaningful() -> bool {
    host_cpus() >= 4
}

/// Everything scheduling could corrupt, rendered to one string: all four
/// levels' specs, every theorem (rule, proof size, and the recorded
/// testing seed), the metrics, and the deterministic stat counts.
fn fingerprint(out: &Output) -> String {
    let mut s = verdict_fingerprint(out);
    s.push_str(&out.stats.deterministic_summary());
    s
}

/// The translation verdicts alone — specs, refinement theorems, metrics —
/// *excluding* the stats summary. The absint on/off gate compares this:
/// the phase may only add its own report (which shows in the summary's
/// `absint` row by design), never change a spec or theorem.
fn verdict_fingerprint(out: &Output) -> String {
    let mut s = String::new();
    for ctx_fns in [&out.l1.fns, &out.hl.fns, &out.wa.fns] {
        for (name, f) in ctx_fns {
            let _ = writeln!(s, "{name}\n{f}");
        }
    }
    for (name, f) in &out.l2.fns {
        let _ = writeln!(s, "{name}\n{f}");
    }
    for (phase, name, thm) in out.thms.iter() {
        let _ = writeln!(s, "{phase} {name} {thm} {:?}", thm.side());
    }
    let _ = writeln!(
        s,
        "{:?} {:?} {}",
        out.parser_metrics(),
        out.output_metrics(),
        out.total_proof_size()
    );
    s
}

/// Hit/miss deltas of both interners (`Expr` + `Prog`) combined.
fn intern_stats_now() -> ir::intern::InternStats {
    let e = ir::intern::expr_stats();
    let p = monadic::prog::intern_stats();
    ir::intern::InternStats {
        hits: e.hits + p.hits,
        misses: e.misses + p.misses,
    }
}

fn run_profile(p: &codegen::Profile, seed: u64) -> RowOut {
    let src = if p.name == "Schorr-Waite" {
        casestudies::sources::SCHORR_WAITE.to_owned()
    } else {
        codegen::generate(p, seed)
    };
    let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
    let intern0 = intern_stats_now();
    // Parser: C → typed AST → Simpl (the trusted front end).
    let (typed, t_parse) = time_once(|| cparser::parse_and_check(&src).unwrap());
    let (_simpl_only, t_simpl) = time_once(|| simpl::translate_program(&typed).unwrap());
    // AutoCorres: the verified phases. A small differential-testing budget
    // keeps the one-off cost proportional (the paper also reports one-off
    // CPU time; translations are cached and reused).
    let seq_opts = Options {
        l2_trials: 2,
        seed,
        workers: 1,
        ..Options::default()
    };
    let (seq, mut t_seq) = time_once(|| translate_program(&typed, &seq_opts).unwrap());
    // Term sharing over this row's parse + sequential translation (the
    // parallel re-run would re-request the same nodes and inflate the hit
    // count, so it is excluded).
    let dedup = intern_stats_now().since(&intern0).dedup_ratio();
    let seq_fp = fingerprint(&seq);
    // Absint on/off gate: disabling the phase may only empty the
    // discharge/lint report — every spec and every refinement theorem
    // must stay byte-identical (the phase is purely observational).
    let off_opts = Options {
        no_absint: true,
        ..seq_opts.clone()
    };
    let (off, _) = time_once(|| translate_program(&typed, &off_opts).unwrap());
    assert_eq!(
        verdict_fingerprint(&seq),
        verdict_fingerprint(&off),
        "{}: verdicts diverge with absint disabled",
        p.name
    );
    assert_eq!(
        off.stats.guards_total, 0,
        "{}: --no-absint must empty the discharge report",
        p.name
    );
    // The overhead gate: at every measured worker count a parallel
    // request must land within PAR_OVERHEAD_GATE of sequential (the
    // adaptive planner shrinks the pool on small hosts, so the parallel
    // path *is* near-sequential there). One timing is noisy on the
    // millisecond-scale rows, so before the gate decides, a failing
    // sample gets a best-of-3 retry — and the *sequential* baseline is
    // refined with the same budget (min of repeated runs), so one
    // lucky/unlucky sample on either side can't decide the gate.
    let mut par_by_workers = Vec::new();
    for w in GATE_WORKER_COUNTS {
        let o = Options {
            workers: w,
            ..seq_opts.clone()
        };
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (out, t) = time_once(|| translate_program(&typed, &o).unwrap());
            assert_eq!(
                seq_fp,
                fingerprint(&out),
                "{}: workers={w} diverges from sequential",
                p.name
            );
            best = best.min(t);
            if best <= gate_bound(t_seq) {
                break;
            }
            let (out, t) = time_once(|| translate_program(&typed, &seq_opts).unwrap());
            assert_eq!(seq_fp, fingerprint(&out), "{}: seq retry diverges", p.name);
            t_seq = t_seq.min(t);
        }
        assert!(
            best <= gate_bound(t_seq),
            "{}: parallel overhead gate failed at workers={w} \
             (par {best:.3}s vs seq {t_seq:.3}s, gate {PAR_OVERHEAD_GATE}× + {GATE_NOISE_FLOOR_S}s)",
            p.name
        );
        par_by_workers.push((w, best));
    }
    let workers = pool_workers();
    let par_opts = Options {
        workers,
        ..seq_opts.clone()
    };
    // The parallel run doubles as the warm-up of an incremental session:
    // a fresh session's first translation is exactly a from-scratch run.
    let sess = Session::new(par_opts.clone());
    let (par, mut t_par) = time_once(|| sess.translate_program(&typed).unwrap());
    assert_eq!(
        seq_fp,
        fingerprint(&par),
        "{}: parallel translation diverges from sequential",
        p.name
    );
    // The recorded `autocorres_par_s` must satisfy the same gate as the
    // per-worker sweep; give a noisy first sample the same best-of-3
    // retry (fresh from-scratch runs, so the session store can't help).
    for _ in 0..2 {
        if t_par <= gate_bound(t_seq) {
            break;
        }
        let (out, t) = time_once(|| translate_program(&typed, &par_opts).unwrap());
        assert_eq!(seq_fp, fingerprint(&out), "{}: retry diverges", p.name);
        t_par = t_par.min(t);
        let (out, t) = time_once(|| translate_program(&typed, &seq_opts).unwrap());
        assert_eq!(seq_fp, fingerprint(&out), "{}: seq retry diverges", p.name);
        t_seq = t_seq.min(t);
    }
    assert!(
        t_par <= gate_bound(t_seq),
        "{}: parallel overhead gate failed at workers={workers} \
         (par {t_par:.3}s vs seq {t_seq:.3}s, gate {PAR_OVERHEAD_GATE}× + {GATE_NOISE_FLOOR_S}s)",
        p.name
    );
    // Incremental: edit one function, re-translate through the warm
    // session, and byte-compare against a from-scratch run of the edited
    // program at the same worker count.
    let edited_src = edit_one_fn(&src);
    let edited = cparser::parse_and_check(&edited_src).unwrap();
    let (incr, t_incr) = time_once(|| sess.translate_program(&edited).unwrap());
    let (scratch, t_scratch) = time_once(|| translate_program(&edited, &par_opts).unwrap());
    assert_eq!(
        fingerprint(&incr),
        fingerprint(&scratch),
        "{}: incremental translation diverges from scratch",
        p.name
    );
    // Disk-backed persistence (DESIGN.md §6g): a cold run persists its
    // artifacts, then a *fresh session* — sharing nothing in memory, the
    // in-process stand-in for the fresh process that
    // tests/persistence.rs spawns for real — must rebuild byte-identical
    // output from the directory alone. Both timings include the
    // session's own open/load/save work.
    let cache_dir = std::env::temp_dir().join(format!(
        "acr-bench-store-{}-{}",
        std::process::id(),
        p.name.replace(' ', "-")
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let disk_opts = Options {
        cache_dir: Some(cache_dir.clone()),
        ..par_opts.clone()
    };
    let (cold_out, t_cold) = time_once(|| {
        let s = Session::new(disk_opts.clone());
        s.translate_program(&typed).unwrap()
    });
    assert_eq!(seq_fp, fingerprint(&cold_out), "{}: disk cold run diverges", p.name);
    assert!(cold_out.stats.cold_start_ms.is_some(), "{}: cold run not stamped", p.name);
    // A fresh process carries none of the cold run's heap. Holding the
    // cold output alive while the warm load re-allocates an equal-sized
    // working set times allocator growth (seconds of page faults at
    // seL4 scale), not the store — drop it so the in-process stand-in
    // matches the fresh processes tests/persistence.rs spawns for real.
    drop(cold_out);
    let (warm_out, t_warm) = time_once(|| {
        let s = Session::new(disk_opts.clone());
        assert_eq!(s.load_report().rejected, 0, "{}: clean store rejected entries", p.name);
        s.translate_program(&typed).unwrap()
    });
    assert_eq!(seq_fp, fingerprint(&warm_out), "{}: warm start diverges", p.name);
    assert_eq!(warm_out.stats.dirty_fns, 0, "{}: warm start recomputed", p.name);
    assert_eq!(warm_out.stats.store_misses, 0, "{}: warm start missed", p.name);
    assert!(warm_out.stats.warm_start_ms.is_some(), "{}: warm run not stamped", p.name);
    let _ = std::fs::remove_dir_all(&cache_dir);
    let (replay_seq, t_replay_seq) = time_once(|| seq.check_all_report(1).unwrap());
    let (replay_par, t_replay_par) = time_once(|| par.check_all_report(workers).unwrap());
    assert_eq!(replay_seq.checked, replay_par.checked);
    assert_eq!(replay_seq.proof_nodes, replay_par.proof_nodes);
    RowOut {
        name: p.name,
        loc,
        functions: par.wa.fns.len(),
        parser_s: t_parse + t_simpl,
        ac_seq_s: t_seq,
        ac_par_s: t_par,
        replay_seq_s: t_replay_seq,
        replay_par_s: t_replay_par,
        theorems: par.thms.len(),
        proof_nodes: replay_par.proof_nodes,
        parser_m: par.parser_metrics(),
        ac_m: par.output_metrics(),
        term_dedup_ratio: dedup,
        replay_cache_hits: replay_par.cache_hits,
        replay_cache_misses: replay_par.cache_misses,
        incremental_retranslate_ms: t_incr * 1000.0,
        scratch_retranslate_ms: t_scratch * 1000.0,
        dirty_cone_fns: incr.stats.dirty_fns,
        cold_start_ms: t_cold * 1000.0,
        warm_start_ms: t_warm * 1000.0,
        par_by_workers,
        phase_stats: par.stats.phases.clone(),
        vc_count_total: par.stats.guards_total,
        vc_discharged_static: par.stats.guards_discharged,
        absint_ms: par
            .stats
            .phases
            .iter()
            .find(|s| s.name == "absint")
            .map_or(0.0, |s| s.wall.as_secs_f64() * 1000.0),
    }
}

fn print_row(r: &RowOut) {
    let line_red = 100.0 * (1.0 - r.ac_m.lines as f64 / r.parser_m.lines.max(1) as f64);
    let term_red = 100.0 * (1.0 - r.ac_m.term_size as f64 / r.parser_m.term_size.max(1) as f64);
    let cache_total = r.replay_cache_hits + r.replay_cache_misses;
    let cache_pct = if cache_total == 0 {
        0.0
    } else {
        100.0 * r.replay_cache_hits as f64 / cache_total as f64
    };
    println!(
        "{:<16} {:>6} {:>5} | {:>8.3}s {:>8.3}s {:>8.3}s {:>5.2}x | {:>7} {:>7} ({:>4.1}%) | {:>8} {:>8} ({:>4.1}%) | {:>5.2}x {:>5.1}%",
        r.name,
        r.loc,
        r.functions,
        r.parser_s,
        r.ac_seq_s,
        r.ac_par_s,
        r.ac_seq_s / r.ac_par_s.max(1e-9),
        r.parser_m.lines,
        r.ac_m.lines,
        line_red,
        r.parser_m.term_size / r.functions.max(1),
        r.ac_m.term_size / r.functions.max(1),
        term_red,
        r.term_dedup_ratio,
        cache_pct,
    );
    println!(
        "{:<16} incremental edit-one-fn: {:.1}ms vs {:.1}ms from scratch ({:.1}%), dirty cone {} fn(s)",
        "",
        r.incremental_retranslate_ms,
        r.scratch_retranslate_ms,
        100.0 * r.incremental_retranslate_ms / r.scratch_retranslate_ms.max(1e-9),
        r.dirty_cone_fns,
    );
    println!(
        "{:<16} disk store: warm start {:.1}ms vs {:.1}ms cold ({:.1}%)",
        "",
        r.warm_start_ms,
        r.cold_start_ms,
        100.0 * r.warm_start_ms / r.cold_start_ms.max(1e-9),
    );
    let gate: Vec<String> = r
        .par_by_workers
        .iter()
        .map(|(w, t)| format!("w={w}: {:.2}x", t / r.ac_seq_s.max(1e-9)))
        .collect();
    println!(
        "{:<16} overhead gate (par/seq, ≤{PAR_OVERHEAD_GATE}x): {}",
        "",
        gate.join(", ")
    );
    println!(
        "{:<16} guards: {} total, {} discharged statically ({:.1}%), absint {:.1}ms",
        "",
        r.vc_count_total,
        r.vc_discharged_static,
        100.0 * r.vc_discharged_static as f64 / r.vc_count_total.max(1) as f64,
        r.absint_ms,
    );
}

fn json_row(r: &RowOut) -> String {
    let par_by_workers = r
        .par_by_workers
        .iter()
        .map(|(w, t)| format!("\"{w}\": {t:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let phase_stats = r
        .phase_stats
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{\"phase\": \"{}\", \"busy_s\": {:.4}, \"wall_s\": {:.4}, ",
                    "\"requested_workers\": {}, \"effective_workers\": {}, ",
                    "\"batches\": {}, \"steals\": {}, \"utilization\": {:.3}}}"
                ),
                p.name,
                p.busy.as_secs_f64(),
                p.wall.as_secs_f64(),
                p.requested,
                p.workers,
                p.batches,
                p.steals,
                p.utilization(),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"loc\": {}, \"functions\": {}, ",
            "\"parser_s\": {:.4}, \"autocorres_seq_s\": {:.4}, \"autocorres_par_s\": {:.4}, ",
            "\"speedup\": {:.3}, \"host_cpus\": {}, \"parallel_meaningful\": {}, ",
            "\"replay_seq_s\": {:.4}, \"replay_par_s\": {:.4}, ",
            "\"theorems\": {}, \"proof_nodes\": {}, ",
            "\"term_dedup_ratio\": {:.3}, ",
            "\"replay_cache_hits\": {}, \"replay_cache_misses\": {}, ",
            "\"incremental_retranslate_ms\": {:.2}, \"scratch_retranslate_ms\": {:.2}, ",
            "\"dirty_cone_fns\": {}, ",
            "\"cold_start_ms\": {:.2}, \"warm_start_ms\": {:.2}, ",
            "\"vc_count_total\": {}, \"vc_discharged_static\": {}, \"absint_ms\": {:.2}, ",
            "\"autocorres_par_s_by_workers\": {{{}}}, ",
            "\"phase_pool_stats\": [{}], ",
            "\"spec_lines_parser\": {}, \"spec_lines_autocorres\": {}, ",
            "\"term_size_parser\": {}, \"term_size_autocorres\": {}}}"
        ),
        r.name,
        r.loc,
        r.functions,
        r.parser_s,
        r.ac_seq_s,
        r.ac_par_s,
        r.ac_seq_s / r.ac_par_s.max(1e-9),
        host_cpus(),
        parallel_meaningful(),
        r.replay_seq_s,
        r.replay_par_s,
        r.theorems,
        r.proof_nodes,
        r.term_dedup_ratio,
        r.replay_cache_hits,
        r.replay_cache_misses,
        r.incremental_retranslate_ms,
        r.scratch_retranslate_ms,
        r.dirty_cone_fns,
        r.cold_start_ms,
        r.warm_start_ms,
        r.vc_count_total,
        r.vc_discharged_static,
        r.absint_ms,
        par_by_workers,
        phase_stats,
        r.parser_m.lines,
        r.ac_m.lines,
        r.parser_m.term_size,
        r.ac_m.term_size,
    )
}

/// Optional row filter from `TABLE5_ROWS` (comma-separated, case-blind
/// substrings of row names). Used by `scripts/tier1.sh --quick` to smoke
/// the small rows without the minutes-scale seL4 run; a filtered run
/// writes `BENCH_table5.quick.json` so the full committed JSON survives.
fn row_filter() -> Option<Vec<String>> {
    let spec = std::env::var("TABLE5_ROWS").ok()?;
    let pats: Vec<String> = spec
        .split(',')
        .map(|s| s.trim().to_ascii_lowercase())
        .filter(|s| !s.is_empty())
        .collect();
    (!pats.is_empty()).then_some(pats)
}

/// The workspace root (this crate lives at `crates/bench`).
fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// Corpus replay gate: every checked-in counterexample seed must replay
/// to a byte-identical re-derived seed and trace with absint on vs off —
/// the phase can never perturb counterexample extraction.
fn corpus_absint_gate() {
    let dir = workspace_root().join("tests/corpus");
    let render = |pb: &counterexample::Playback| -> String {
        match &pb.cex {
            Some(c) => format!(
                "{}\n{}",
                counterexample::Seed::from_cex(c, &pb.seed.spec, &pb.seed.source).render(),
                c.trace
            ),
            None => format!("no-cex {}", pb.seed.describe_input()),
        }
    };
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("corpus entry").path())
        .collect();
    entries.sort();
    for path in entries {
        // Only `cex-*.seed` files are playback seeds; `seed-*.seed` entries
        // belong to the pipeline-fuzz corpus and use a different format.
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("cex-") || path.extension().and_then(|e| e.to_str()) != Some("seed") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("seed readable");
        let on = counterexample::playback(&text).expect("seed replays");
        let off = counterexample::playback_with(
            &text,
            &Options {
                no_absint: true,
                ..Options::default()
            },
        )
        .expect("seed replays with absint off");
        assert_eq!(
            render(&on),
            render(&off),
            "{}: replay diverges with absint disabled",
            path.display()
        );
        checked += 1;
    }
    assert!(checked > 0, "corpus gate found no seeds in {}", dir.display());
    println!("corpus absint on/off gate: {checked} seed(s) byte-identical");
}

fn bench(c: &mut Criterion) {
    let workers = pool_workers();
    corpus_absint_gate();
    println!("Table 5 — comparison of C parser output and AutoCorres output");
    println!("(AutoCorres timed sequentially and on {workers} workers; outputs byte-identical)");
    println!(
        "{:<16} {:>6} {:>5} | {:>9} {:>8} {:>9} {:>5} | {:>24} | {:>24}",
        "Program",
        "LoC",
        "Fns",
        "parser",
        "AC seq",
        "AC par",
        "spd",
        "lines of spec (reduction)",
        "avg term size (reduction)"
    );
    println!("{:-<130}", "");
    let filter = row_filter();
    let mut rows = Vec::new();
    for p in codegen::TABLE5 {
        if let Some(pats) = &filter {
            let name = p.name.to_ascii_lowercase();
            if !pats.iter().any(|pat| name.contains(pat)) {
                continue;
            }
        }
        let r = run_profile(p, 0xAC);
        print_row(&r);
        // The line reduction is driven by eliminating per-statement
        // plumbing across many functions; for a tiny single-function
        // profile the fixed do/od scaffolding dominates, so allow
        // near-parity there (the paper's per-program reductions likewise
        // vary with program size).
        let line_slack = if p.functions <= 2 { 3 } else { 0 };
        assert!(
            r.ac_m.lines <= r.parser_m.lines + line_slack,
            "{}: output must not be larger ({} vs {})",
            r.name,
            r.ac_m.lines,
            r.parser_m.lines
        );
        assert!(
            r.ac_m.term_size < r.parser_m.term_size,
            "{}: terms must be smaller",
            r.name
        );
        // The scalability claim the parallel pipeline exists for: on the
        // big many-function workloads the pool must pay for itself. A
        // wall-clock speedup needs real cores — on a 1-CPU host the pool
        // can only time-slice, so the assertion is hardware-gated (the raw
        // numbers still land in the JSON either way).
        // The incremental claim the session store exists for: editing one
        // function of a seL4-scale code base must re-translate in ≤25% of
        // the from-scratch wall time (the dirty cone is a leaf edit, so
        // nearly every per-function job is answered from the store).
        // Wall-clock ratio, so no core-count gate is needed.
        if r.functions >= 500 {
            assert!(
                r.incremental_retranslate_ms <= 0.25 * r.scratch_retranslate_ms,
                "{}: incremental re-translation must be ≤25% of scratch \
                 ({:.1}ms vs {:.1}ms)",
                r.name,
                r.incremental_retranslate_ms,
                r.scratch_retranslate_ms
            );
        }
        // The persistence claim the disk store exists for: a fresh
        // session warm-starting a seL4-scale code base from the cache
        // directory alone must run in ≤25% of the cold wall time (≥4×,
        // the tentpole's acceptance bar). Wall-clock ratio, so no
        // core-count gate is needed.
        if r.functions >= 500 {
            assert!(
                r.warm_start_ms <= 0.25 * r.cold_start_ms,
                "{}: disk warm start must be ≤25% of cold \
                 ({:.1}ms vs {:.1}ms)",
                r.name,
                r.warm_start_ms,
                r.cold_start_ms
            );
        }
        // The discharge claim the absint phase exists for: on the
        // seL4-scale row, at least 40% of guard VCs must be proved
        // statically (ISSUE-8's acceptance bar), each backed by a
        // kernel-replayed theorem.
        if r.functions >= 500 {
            let pct = 100.0 * r.vc_discharged_static as f64 / r.vc_count_total.max(1) as f64;
            assert!(
                pct >= 40.0,
                "{}: static discharge below the 40% bar ({}/{} = {:.1}%)",
                r.name,
                r.vc_discharged_static,
                r.vc_count_total,
                pct
            );
        }
        if r.functions >= 500 {
            let speedup = r.ac_seq_s / r.ac_par_s.max(1e-9);
            if host_cpus() >= 4 {
                assert!(
                    speedup >= 2.0,
                    "{}: parallel translation must be ≥2x faster (seq {:.2}s, par {:.2}s)",
                    r.name,
                    r.ac_seq_s,
                    r.ac_par_s
                );
            } else {
                println!(
                    "  [note: host has {} CPU(s); {:.2}x recorded, ≥2x speedup assertion \
                     needs ≥4 cores and was skipped]",
                    host_cpus(),
                    speedup
                );
            }
        }
        rows.push(json_row(&r));
    }
    println!("{:-<130}", "");

    let json = format!(
        "{{\n  \"table\": \"table5\",\n  \"workers\": {},\n  \"host_cpus\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        workers,
        host_cpus(),
        rows.join(",\n")
    );
    assert!(!rows.is_empty(), "TABLE5_ROWS matched no profile");
    let out_name = if filter.is_some() {
        "BENCH_table5.quick.json"
    } else {
        "BENCH_table5.json"
    };
    let path = workspace_root().join(out_name);
    std::fs::write(&path, json).expect("write table 5 JSON");
    println!("wrote {}", path.display());

    if filter.is_some() {
        // Smoke mode: the row runs above already regenerated the dedup and
        // replay-cache stats (and would have panicked on any regression);
        // skip the minutes-scale Criterion micro-benchmarks.
        return;
    }

    let echronos = &codegen::TABLE5[3];
    let src = codegen::generate(echronos, 0xAC);
    let typed = cparser::parse_and_check(&src).unwrap();
    c.bench_function("table5/parser_echronos", |b| {
        b.iter(|| std::hint::black_box(simpl::translate_program(&typed).unwrap()));
    });
    let opts = Options {
        l2_trials: 2,
        seed: 0xAC,
        ..Options::default()
    };
    c.bench_function("table5/autocorres_echronos", |b| {
        b.iter(|| std::hint::black_box(translate_program(&typed, &opts).unwrap()));
    });
    let par_opts = Options {
        workers,
        ..opts.clone()
    };
    c.bench_function("table5/autocorres_echronos_parallel", |b| {
        b.iter(|| std::hint::black_box(translate_program(&typed, &par_opts).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
