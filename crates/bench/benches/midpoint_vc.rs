//! Sec 3.2: the binary-search midpoint verification condition.
//!
//! The paper's footnote: three experienced verification engineers needed a
//! median of 10 minutes for the word-level goal, while "the human effort
//! for the nat version is effectively zero". Our mechanical rendering of
//! that asymmetry: the nat-level VC is decided by linear arithmetic in
//! microseconds; the word-level VC needs bit-blasting through the CDCL
//! solver — orders of magnitude more work (conflicts, decisions, time).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use solver::{decide_with_info, Verdict};

/// `l < r → l ≤ (l + r) div 2 ∧ (l + r) div 2 < r` on naturals
/// (with the word-abstraction guard as a hypothesis).
fn nat_vc() -> (Expr, HashMap<String, Ty>) {
    let l = || Expr::var("l");
    let r = || Expr::var("r");
    let mid = Expr::binop(
        BinOp::Div,
        Expr::binop(BinOp::Add, l(), r()),
        Expr::nat(2u64),
    );
    let goal = Expr::implies(
        Expr::and(
            Expr::binop(BinOp::Lt, l(), r()),
            Expr::binop(
                BinOp::Le,
                Expr::binop(BinOp::Add, l(), r()),
                Expr::nat(u64::from(u32::MAX)),
            ),
        ),
        Expr::and(
            Expr::binop(BinOp::Le, l(), mid.clone()),
            Expr::binop(BinOp::Lt, mid, r()),
        ),
    );
    let vars = [("l".to_owned(), Ty::Nat), ("r".to_owned(), Ty::Nat)].into();
    (goal, vars)
}

/// The same VC on 32-bit words, with the `unat l + unat r < 2^32`
/// precondition expressed word-level as `l ≤ l + r`.
fn word_vc() -> (Expr, HashMap<String, Ty>) {
    let l = || Expr::var("l");
    let r = || Expr::var("r");
    let sum = Expr::binop(BinOp::Add, l(), r());
    let mid = Expr::binop(BinOp::Div, sum.clone(), Expr::u32(2));
    let goal = Expr::implies(
        Expr::and(
            Expr::binop(BinOp::Lt, l(), r()),
            Expr::binop(BinOp::Le, l(), sum),
        ),
        Expr::and(
            Expr::binop(BinOp::Le, l(), mid.clone()),
            Expr::binop(BinOp::Lt, mid, r()),
        ),
    );
    let vars = [("l".to_owned(), Ty::U32), ("r".to_owned(), Ty::U32)].into();
    (goal, vars)
}

/// The unguarded word-level VC — falsifiable, as Sec 3.2 explains
/// ("an additional precondition unat l + unat r < 2³² is required").
fn word_vc_unguarded() -> (Expr, HashMap<String, Ty>) {
    let l = || Expr::var("l");
    let r = || Expr::var("r");
    let mid = Expr::binop(
        BinOp::Div,
        Expr::binop(BinOp::Add, l(), r()),
        Expr::u32(2),
    );
    let goal = Expr::implies(
        Expr::binop(BinOp::Lt, l(), r()),
        Expr::and(
            Expr::binop(BinOp::Le, l(), mid.clone()),
            Expr::binop(BinOp::Lt, mid, r()),
        ),
    );
    let vars = [("l".to_owned(), Ty::U32), ("r".to_owned(), Ty::U32)].into();
    (goal, vars)
}

fn print_comparison() {
    println!("Sec 3.2 — the midpoint VC, nat level vs word level");
    println!("{:-<78}", "");
    let (ng, nv) = nat_vc();
    let ninfo = decide_with_info(&ng, &nv);
    println!(
        "nat level:   {:?} via {} ({} case splits)",
        ninfo.verdict, ninfo.procedure, ninfo.splits
    );
    assert_eq!(ninfo.verdict, Verdict::Valid);

    let (wg, wv) = word_vc();
    let winfo = decide_with_info(&wg, &wv);
    let stats = winfo.sat_stats.unwrap_or_default();
    println!(
        "word level:  {:?} via {} (SAT: {} conflicts, {} decisions, {} propagations)",
        winfo.verdict, winfo.procedure, stats.conflicts, stats.decisions, stats.propagations
    );
    assert_eq!(winfo.verdict, Verdict::Valid);

    let (ug, uv) = word_vc_unguarded();
    let uinfo = decide_with_info(&ug, &uv);
    println!(
        "word level without the overflow precondition: {:?}",
        match &uinfo.verdict {
            Verdict::Counterexample(m) => {
                let mut parts: Vec<String> =
                    m.iter().map(|(k, v)| format!("{k} = {v}")).collect();
                parts.sort();
                format!("Counterexample({})", parts.join(", "))
            }
            other => format!("{other:?}"),
        }
    );
    assert!(matches!(uinfo.verdict, Verdict::Counterexample(_)));
    println!("{:-<78}", "");
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let (ng, nv) = nat_vc();
    c.bench_function("midpoint/nat_level_auto", |b| {
        b.iter(|| std::hint::black_box(solver::decide(&ng, &nv)));
    });
    let (wg, wv) = word_vc();
    c.bench_function("midpoint/word_level_bitblast", |b| {
        b.iter(|| std::hint::black_box(solver::decide(&wg, &wv)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
