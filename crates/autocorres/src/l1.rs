//! Phase L1: Simpl to the monadic deep embedding.
//!
//! A structural fold over the Simpl statement, applying one kernel rule per
//! construct (the content of Table 1). The resulting program still stores
//! local variables in the state (`MonadicFn::frame` is `Some`); L2 lifts
//! them.

use ir::expr::Expr;
use ir::ty::Ty;
use kernel::rules::refine;
use kernel::{CheckCtx, Judgment, KernelError, Thm};
use monadic::{MonadicFn, Prog, ProgramCtx};
use simpl::stmt::{SimplFn, SimplProgram, SimplStmt};
use simpl::RET_VAR;

/// The L1 translation of one function: the monadic function plus the
/// `l1corres` theorem for its body.
#[derive(Clone, Debug)]
pub struct L1Fn {
    /// The translated function (locals in state).
    pub fun: MonadicFn,
    /// `l1corres body simpl_body`.
    pub thm: Thm,
}

/// Translates a Simpl function to L1.
///
/// # Errors
///
/// Propagates kernel errors (which indicate a driver bug — the rules cover
/// every Simpl construct).
pub fn l1_function(cx: &CheckCtx, f: &SimplFn) -> Result<L1Fn, KernelError> {
    let thm = l1_stmt(cx, &f.body)?;
    let Judgment::L1 { prog, .. } = thm.judgment() else {
        unreachable!("l1 rules conclude l1corres");
    };
    // Calling convention: the function's value is the `ret__` local for
    // non-void functions (read before the frame is popped).
    let body = if f.ret_ty == Ty::Unit {
        prog.clone()
    } else {
        Prog::then(prog.clone(), Prog::Gets(Expr::local(RET_VAR)))
    };
    Ok(L1Fn {
        fun: MonadicFn {
            name: f.name.clone(),
            params: f.params.clone(),
            ret_ty: f.ret_ty.clone(),
            frame: Some(f.locals.clone()),
            body,
        },
        thm,
    })
}

/// Structural fold applying the kernel's L1 rules.
fn l1_stmt(cx: &CheckCtx, s: &SimplStmt) -> Result<Thm, KernelError> {
    let subs = match s {
        SimplStmt::Seq(a, b) | SimplStmt::TryCatch(a, b) => {
            vec![l1_stmt(cx, a)?, l1_stmt(cx, b)?]
        }
        SimplStmt::Cond(_, a, b) => vec![l1_stmt(cx, a)?, l1_stmt(cx, b)?],
        SimplStmt::While(_, b) | SimplStmt::Guard(_, _, b) => vec![l1_stmt(cx, b)?],
        _ => vec![],
    };
    refine::l1(cx, s, subs)
}

/// Translates a whole Simpl program to an L1 [`ProgramCtx`], returning the
/// per-function theorems.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn l1_program(
    cx: &CheckCtx,
    sp: &SimplProgram,
) -> Result<(ProgramCtx, Vec<(String, Thm)>), KernelError> {
    let mut ctx = ProgramCtx {
        tenv: sp.tenv.clone(),
        globals: sp.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut thms = Vec::new();
    for (name, f) in &sp.fns {
        let out = l1_function(cx, f)?;
        ctx.fns.insert(name.clone(), out.fun);
        thms.push((name.clone(), out.thm));
    }
    Ok((ctx, thms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::state::State;
    use ir::value::Value;
    use kernel::check;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn compile(src: &str) -> (SimplProgram, ProgramCtx, Vec<(String, Thm)>, CheckCtx) {
        let typed = cparser::parse_and_check(src).unwrap();
        let sp = simpl::translate_program(&typed).unwrap();
        let cx = CheckCtx {
            tenv: sp.tenv.clone(),
            ..CheckCtx::default()
        };
        let (ctx, thms) = l1_program(&cx, &sp).unwrap();
        (sp, ctx, thms, cx)
    }

    #[test]
    fn max_l1_matches_simpl_behaviour() {
        let (sp, ctx, thms, cx) = compile(
            "int max(int a, int b) { if (a < b) return b; return a; }",
        );
        for (_, t) in &thms {
            check(t, &cx).unwrap();
        }
        // Differential testing: L1 function equals the Simpl function.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let a = Value::i32(rng.gen());
            let b = Value::i32(rng.gen());
            let (sv, _) = simpl::exec_fn(&sp, "max", &[a.clone(), b.clone()], sp.initial_state(), 10_000)
                .unwrap();
            let (mv, _) = monadic::exec_fn(&ctx, "max", &[a, b], sp.initial_state(), 10_000)
                .unwrap();
            assert_eq!(mv, monadic::MonadResult::Normal(sv));
        }
    }

    #[test]
    fn l1_statement_theorems_validate_semantically() {
        let (sp, ctx, thms, _) = compile(
            "unsigned gcd(unsigned a, unsigned b) {\n\
               while (b != 0u) { unsigned t = b; b = a % b; a = t; }\n\
               return a;\n\
             }",
        );
        let (_, thm) = &thms[0];
        // Random local frames exercise the statement-level correspondence.
        kernel::semantics::test_l1(&sp, &ctx, thm.judgment(), 60, 11, |rng| {
            let mut st = State::conc_empty();
            st.set_local("a", Value::u32(rng.gen_range(0..40)));
            st.set_local("b", Value::u32(rng.gen_range(0..40)));
            st.set_local("t", Value::u32(0));
            st.set_local(simpl::EXN_VAR, Value::u32(0));
            st.set_local(simpl::RET_VAR, Value::u32(0));
            st
        })
        .unwrap();
    }

    #[test]
    fn l1_function_returns_value_from_frame() {
        let (_, ctx, _, _) = compile("unsigned five(void) { return 5u; }");
        let (r, _) =
            monadic::exec_fn(&ctx, "five", &[], State::conc_empty(), 1000).unwrap();
        assert_eq!(r, monadic::MonadResult::Normal(Value::u32(5)));
    }

    #[test]
    fn recursive_calls_work_at_l1() {
        let (_, ctx, _, _) = compile(
            "unsigned gcd(unsigned a, unsigned b) {\n\
               if (b == 0u) return a;\n\
               return gcd(b, a % b);\n\
             }",
        );
        let (r, _) = monadic::exec_fn(
            &ctx,
            "gcd",
            &[Value::u32(12), Value::u32(18)],
            State::conc_empty(),
            100_000,
        )
        .unwrap();
        assert_eq!(r, monadic::MonadResult::Normal(Value::u32(6)));
    }
}
