//! The AutoCorres-rs driver: C source to abstracted monadic specifications
//! with refinement theorems.
//!
//! Reproduces the pipeline of the paper's Fig 1:
//!
//! ```text
//! C99 ──parse──▶ Simpl ──L1──▶ monadic ──L2──▶ lifted ──HL──▶ split heaps ──WA──▶ output
//! ```
//!
//! * **Parsing** (`cparser` + `simpl`): trusted, unverified (dashed arrow in
//!   the figure).
//! * **L1** ([`l1`]): Simpl to the monadic deep embedding, one kernel rule
//!   per construct (Table 1), producing an `l1corres` theorem.
//! * **L2** ([`l2`]): control-flow abstraction — exception elimination,
//!   local-variable lifting into lambda-bound variables, guard
//!   simplification — producing a `refines` theorem validated by
//!   differential testing (the documented substitute for Isabelle's rewrite
//!   proofs, DESIGN.md §2).
//! * **HL** (`heapabs`): byte-level heap to typed split heaps, producing an
//!   `abs_h_stmt` theorem (Sec 4).
//! * **WA** (`wordabs`): machine words to ideal `nat`/`int`, producing an
//!   `abs_w_stmt` theorem (Sec 3).
//!
//! Heap and word abstraction are selectable per function via [`Options`]
//! (paper Sec 3.2 and 4.6).
//!
//! # Example
//!
//! ```
//! let src = "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2u; }";
//! let out = autocorres::translate(src, &autocorres::Options::default()).unwrap();
//! let f = out.wa.function("mid").unwrap();
//! let text = f.to_string();
//! assert!(text.contains("guard"), "overflow obligation: {text}");
//! assert!(text.contains("div"), "ideal division: {text}");
//! ```

pub mod corpus;
pub mod l1;
pub mod l2;
pub mod phase;
pub mod pipeline;
pub mod schedule;
pub mod session;
pub mod stats;
pub mod store;
pub mod testing;

pub use ir::diag::Diag;
pub use phase::{options_digest, ArtifactStore, Dep, DepScope, Phase, PHASES};
pub use pipeline::{derive_seed, translate, translate_program, Options, Output, PhaseTheorems};
pub use session::Session;
pub use stats::{PhaseStat, PipelineStats};
pub use store::{DiskStore, LoadReport};
