//! Pipeline observability: per-phase wall times, theorem and proof-tree
//! counts, and worker-pool utilization.
//!
//! [`PipelineStats`] is threaded through [`crate::Output`] so callers (the
//! quickstart example, the Table 5 bench) can report where translation time
//! goes without instrumenting the pipeline themselves. Timings vary run to
//! run; everything else (function/theorem/proof-node counts) is
//! deterministic and is compared by the determinism test suite.
//!
//! Worker counts are reported twice: `requested` (what the caller asked
//! for) and `workers` (what [`crate::schedule::plan_workers`] actually
//! granted). Utilization is busy time over `wall × effective workers`,
//! deliberately *unclamped* — a ratio above `1.0` or a big
//! requested/effective gap is a scheduling pathology that must stay
//! visible, not be rounded away.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::schedule::PoolStats;

/// One pipeline phase's measurements.
#[derive(Clone, Debug, Default)]
pub struct PhaseStat {
    /// Phase name (`parse`, `l1`, `l2`, `hl`, `wa`, `adapt`).
    pub name: &'static str,
    /// Wall-clock time of the phase.
    pub wall: Duration,
    /// Sum of per-worker busy time.
    pub busy: Duration,
    /// Workers the phase actually ran with (after the adaptive policy).
    pub workers: usize,
    /// Workers the caller asked for.
    pub requested: usize,
    /// Functions processed.
    pub fns: usize,
    /// Theorems produced.
    pub thms: usize,
    /// Kernel rule applications across the phase's proof trees.
    pub proof_nodes: usize,
    /// Per-function jobs answered from the session artifact store instead
    /// of being recomputed (always `0` for one-shot `translate` runs).
    pub cached: usize,
    /// Scheduled batch nodes of this phase (functions are grouped into
    /// cost-balanced batches; see `crate::phase`).
    pub batches: usize,
    /// Batch nodes of this phase executed by a worker other than the one
    /// that made them ready.
    pub steals: u64,
}

impl PhaseStat {
    /// Builds the phase entry from pool occupancy plus counts.
    #[must_use]
    pub fn from_pool(
        name: &'static str,
        pool: PoolStats,
        fns: usize,
        thms: usize,
        proof_nodes: usize,
    ) -> PhaseStat {
        PhaseStat {
            name,
            wall: pool.wall,
            busy: pool.busy,
            workers: pool.workers,
            requested: pool.requested,
            fns,
            thms,
            proof_nodes,
            cached: 0,
            batches: pool.tasks,
            steals: pool.steals,
        }
    }

    /// Raw busy time over capacity (`wall × effective workers`). Not
    /// clamped: values above `1.0` expose a wrong effective-worker count,
    /// values far below `1.0` expose starvation or oversubscription.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / capacity
        }
    }
}

/// Observability of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Worker count the phase graph actually ran with (≥ 1), after the
    /// adaptive sizing policy. This is also the width later
    /// [`crate::Output::check_all`] replays with.
    pub workers: usize,
    /// Worker count the caller configured ([`crate::Options::workers`],
    /// normalized to ≥ 1) — may exceed `workers` when the policy shrank
    /// the pool (single-CPU host, tiny workload).
    pub requested_workers: usize,
    /// Per-phase measurements, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Wall-clock time of the whole translation.
    pub total_wall: Duration,
    /// Theorems per function, across all phases.
    pub fn_theorems: BTreeMap<String, usize>,
    /// Proof-tree nodes (kernel rule applications) per function.
    pub fn_proof_nodes: BTreeMap<String, usize>,
    /// Functions with at least one recomputed (non-cached) phase job — the
    /// dirty cone of an incremental [`crate::Session`] run. Equal to the
    /// function count for one-shot runs with a fresh store.
    pub dirty_fns: usize,
    /// Phase jobs answered from the session artifact store, summed over
    /// phases. Excluded from [`PipelineStats::deterministic_summary`]:
    /// cache occupancy varies between runs, output bytes must not.
    pub cached_nodes: usize,
    /// Guards the abstract-interpretation phase saw on reachable paths
    /// (0 with `--no-absint`).
    pub guards_total: usize,
    /// Guards proved true statically — each carries an `absint_discharge`
    /// theorem and needs no VCG/solver work.
    pub guards_discharged: usize,
    /// Guards proved *false* — definite faults, surfaced as lints.
    pub guards_refuted: usize,
    /// Phase jobs answered from artifacts the [`crate::DiskStore`] loaded
    /// (a subset of `cached_nodes`; 0 without `--cache-dir`). Excluded
    /// from [`PipelineStats::deterministic_summary`] like `cached_nodes`.
    pub store_hits: usize,
    /// Phase jobs a disk-backed run still had to compute (0 without
    /// `--cache-dir`).
    pub store_misses: usize,
    /// On-disk entries rejected at load (corrupt, truncated, foreign, or
    /// version-skewed) — each degraded to recomputation.
    pub store_rejected: usize,
    /// Wall-clock milliseconds of a translation that warm-started from a
    /// disk store (`Some` only when `--cache-dir` held usable artifacts).
    pub warm_start_ms: Option<u64>,
    /// Wall-clock milliseconds of a translation that started cold while
    /// persistence was enabled (`Some` only with `--cache-dir`).
    pub cold_start_ms: Option<u64>,
}

impl PipelineStats {
    /// Total theorem count.
    #[must_use]
    pub fn total_theorems(&self) -> usize {
        self.phases.iter().map(|p| p.thms).sum()
    }

    /// Total proof-tree node count.
    #[must_use]
    pub fn total_proof_nodes(&self) -> usize {
        self.phases.iter().map(|p| p.proof_nodes).sum()
    }

    /// Total batch nodes stolen across phases.
    #[must_use]
    pub fn total_steals(&self) -> u64 {
        self.phases.iter().map(|p| p.steals).sum()
    }

    /// Overall worker utilization across the timed phases (raw, unclamped
    /// — see [`PhaseStat::utilization`]).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let wall: f64 = self.phases.iter().map(|p| p.wall.as_secs_f64()).sum();
        let busy: f64 = self.phases.iter().map(|p| p.busy.as_secs_f64()).sum();
        let capacity = wall * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            busy / capacity
        }
    }

    /// The deterministic subset of the stats (counts, no timings, no
    /// scheduling artifacts like batch or steal counts), for
    /// byte-comparison between sequential and parallel runs.
    #[must_use]
    pub fn deterministic_summary(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for p in &self.phases {
            let _ = writeln!(
                s,
                "{}: fns={} thms={} proof_nodes={}",
                p.name, p.fns, p.thms, p.proof_nodes
            );
        }
        for (name, n) in &self.fn_theorems {
            let nodes = self.fn_proof_nodes.get(name).copied().unwrap_or(0);
            let _ = writeln!(s, "fn {name}: thms={n} proof_nodes={nodes}");
        }
        s
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} workers ({} requested), {:.1?} wall, {} theorems, {} proof nodes, \
             {:.0}% utilization, {} steals",
            self.workers,
            self.requested_workers,
            self.total_wall,
            self.total_theorems(),
            self.total_proof_nodes(),
            self.utilization() * 100.0,
            self.total_steals()
        )?;
        writeln!(
            f,
            "  {:<8} {:>10} {:>6} {:>6} {:>12} {:>7} {:>6} {:>6}",
            "phase", "wall", "fns", "thms", "proof nodes", "batches", "steals", "util"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<8} {:>10.1?} {:>6} {:>6} {:>12} {:>7} {:>6} {:>5.0}%",
                p.name,
                p.wall,
                p.fns,
                p.thms,
                p.proof_nodes,
                p.batches,
                p.steals,
                p.utilization() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_raw_busy_over_capacity() {
        let p = PhaseStat {
            name: "l1",
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(35),
            workers: 4,
            requested: 4,
            fns: 3,
            thms: 3,
            proof_nodes: 30,
            ..PhaseStat::default()
        };
        assert!(p.utilization() <= 1.0 && p.utilization() > 0.8);
        let empty = PhaseStat::default();
        assert_eq!(empty.utilization(), 0.0);

        // The pathology that motivated the unclamped report: more busy
        // time than the claimed worker count admits must *show*, not be
        // clamped to a clean-looking 100%.
        let lying = PhaseStat {
            name: "l1",
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(40),
            workers: 1,
            requested: 4,
            ..PhaseStat::default()
        };
        assert!(
            lying.utilization() > 3.9,
            "oversubscription must be visible: {}",
            lying.utilization()
        );
    }

    #[test]
    fn requested_vs_effective_workers_survive_from_pool() {
        let pool = PoolStats {
            requested: 8,
            workers: 2,
            busy: Duration::from_millis(4),
            wall: Duration::from_millis(2),
            steals: 3,
            tasks: 7,
        };
        let p = PhaseStat::from_pool("wa", pool, 10, 10, 100);
        assert_eq!(p.requested, 8);
        assert_eq!(p.workers, 2);
        assert_eq!(p.steals, 3);
        assert_eq!(p.batches, 7);
    }

    #[test]
    fn summary_is_deterministic_text() {
        let mut s = PipelineStats {
            workers: 2,
            requested_workers: 4,
            ..PipelineStats::default()
        };
        s.phases.push(PhaseStat {
            name: "l1",
            fns: 2,
            thms: 2,
            proof_nodes: 17,
            batches: 3,
            steals: 1,
            ..PhaseStat::default()
        });
        s.fn_theorems.insert("f".into(), 4);
        s.fn_proof_nodes.insert("f".into(), 21);
        let a = s.deterministic_summary();
        assert!(a.contains("l1: fns=2 thms=2 proof_nodes=17"));
        assert!(a.contains("fn f: thms=4 proof_nodes=21"));
        assert!(
            !a.contains("steals") && !a.contains("batches"),
            "scheduling artifacts vary with worker count and must stay out \
             of the byte-compared summary"
        );
        assert_eq!(a, s.deterministic_summary());
    }
}
