//! Pipeline observability: per-phase wall times, theorem and proof-tree
//! counts, and worker-pool utilization.
//!
//! [`PipelineStats`] is threaded through [`crate::Output`] so callers (the
//! quickstart example, the Table 5 bench) can report where translation time
//! goes without instrumenting the pipeline themselves. Timings vary run to
//! run; everything else (function/theorem/proof-node counts) is
//! deterministic and is compared by the determinism test suite.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::schedule::PoolStats;

/// One pipeline phase's measurements.
#[derive(Clone, Debug, Default)]
pub struct PhaseStat {
    /// Phase name (`parse`, `l1`, `l2`, `hl`, `wa`, `adapt`).
    pub name: &'static str,
    /// Wall-clock time of the phase.
    pub wall: Duration,
    /// Sum of per-worker busy time.
    pub busy: Duration,
    /// Workers the phase ran with.
    pub workers: usize,
    /// Functions processed.
    pub fns: usize,
    /// Theorems produced.
    pub thms: usize,
    /// Kernel rule applications across the phase's proof trees.
    pub proof_nodes: usize,
    /// Per-function jobs answered from the session artifact store instead
    /// of being recomputed (always `0` for one-shot `translate` runs).
    pub cached: usize,
}

impl PhaseStat {
    /// Builds the phase entry from pool occupancy plus counts.
    #[must_use]
    pub fn from_pool(
        name: &'static str,
        pool: PoolStats,
        fns: usize,
        thms: usize,
        proof_nodes: usize,
    ) -> PhaseStat {
        PhaseStat {
            name,
            wall: pool.wall,
            busy: pool.busy,
            workers: pool.workers,
            fns,
            thms,
            proof_nodes,
            cached: 0,
        }
    }

    /// Fraction of worker capacity spent busy, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }
}

/// Observability of one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Worker count the pipeline was configured with (≥ 1).
    pub workers: usize,
    /// Per-phase measurements, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Wall-clock time of the whole translation.
    pub total_wall: Duration,
    /// Theorems per function, across all phases.
    pub fn_theorems: BTreeMap<String, usize>,
    /// Proof-tree nodes (kernel rule applications) per function.
    pub fn_proof_nodes: BTreeMap<String, usize>,
    /// Functions with at least one recomputed (non-cached) phase job — the
    /// dirty cone of an incremental [`crate::Session`] run. Equal to the
    /// function count for one-shot runs with a fresh store.
    pub dirty_fns: usize,
    /// Phase jobs answered from the session artifact store, summed over
    /// phases. Excluded from [`PipelineStats::deterministic_summary`]:
    /// cache occupancy varies between runs, output bytes must not.
    pub cached_nodes: usize,
}

impl PipelineStats {
    /// Total theorem count.
    #[must_use]
    pub fn total_theorems(&self) -> usize {
        self.phases.iter().map(|p| p.thms).sum()
    }

    /// Total proof-tree node count.
    #[must_use]
    pub fn total_proof_nodes(&self) -> usize {
        self.phases.iter().map(|p| p.proof_nodes).sum()
    }

    /// Overall worker utilization across the timed phases.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let wall: f64 = self.phases.iter().map(|p| p.wall.as_secs_f64()).sum();
        let busy: f64 = self.phases.iter().map(|p| p.busy.as_secs_f64()).sum();
        let capacity = wall * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (busy / capacity).min(1.0)
        }
    }

    /// The deterministic subset of the stats (counts, no timings), for
    /// byte-comparison between sequential and parallel runs.
    #[must_use]
    pub fn deterministic_summary(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        for p in &self.phases {
            let _ = writeln!(
                s,
                "{}: fns={} thms={} proof_nodes={}",
                p.name, p.fns, p.thms, p.proof_nodes
            );
        }
        for (name, n) in &self.fn_theorems {
            let nodes = self.fn_proof_nodes.get(name).copied().unwrap_or(0);
            let _ = writeln!(s, "fn {name}: thms={n} proof_nodes={nodes}");
        }
        s
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pipeline: {} workers, {:.1?} wall, {} theorems, {} proof nodes, {:.0}% utilization",
            self.workers,
            self.total_wall,
            self.total_theorems(),
            self.total_proof_nodes(),
            self.utilization() * 100.0
        )?;
        writeln!(
            f,
            "  {:<8} {:>10} {:>6} {:>6} {:>12} {:>6}",
            "phase", "wall", "fns", "thms", "proof nodes", "util"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "  {:<8} {:>10.1?} {:>6} {:>6} {:>12} {:>5.0}%",
                p.name,
                p.wall,
                p.fns,
                p.thms,
                p.proof_nodes,
                p.utilization() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_bounded() {
        let p = PhaseStat {
            name: "l1",
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(35),
            workers: 4,
            fns: 3,
            thms: 3,
            proof_nodes: 30,
            cached: 0,
        };
        assert!(p.utilization() <= 1.0 && p.utilization() > 0.8);
        let empty = PhaseStat::default();
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn summary_is_deterministic_text() {
        let mut s = PipelineStats {
            workers: 2,
            ..PipelineStats::default()
        };
        s.phases.push(PhaseStat {
            name: "l1",
            fns: 2,
            thms: 2,
            proof_nodes: 17,
            ..PhaseStat::default()
        });
        s.fn_theorems.insert("f".into(), 4);
        s.fn_proof_nodes.insert("f".into(), 21);
        let a = s.deterministic_summary();
        assert!(a.contains("l1: fns=2 thms=2 proof_nodes=17"));
        assert!(a.contains("fn f: thms=4 proof_nodes=21"));
        assert_eq!(a, s.deterministic_summary());
    }
}
