//! The pipeline driver: C source → abstracted specification + theorems.
//!
//! Runs the phases of the paper's Fig 1 in order and collects the
//! per-function theorem of each verified arrow. The output exposes every
//! intermediate level (Simpl, L1, L2, HL, WA) so users can reason at
//! whichever level suits them — and so the Table 5 metrics can compare the
//! parser output against the final output.
//!
//! # Parallelism and determinism
//!
//! Within a phase, functions are independent (L1/L2/HL) or ordered by the
//! call graph (WA and caller adaptation, scheduled by
//! [`crate::schedule::run_dag`] so a caller's job never starts before its
//! callees'). [`Options::workers`] picks the pool width; `0`/`1` runs
//! everything inline on the calling thread. Both paths execute the *same*
//! per-function closures with per-function RNG streams derived by
//! [`derive_seed`] from `(seed, fn_name)`, and results are collected in
//! fixed name/source order — so for a fixed seed the output (specs,
//! theorem statements, guards, metrics) is byte-identical at any worker
//! count. The determinism test suite asserts this.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use ir::metrics::SpecMetrics;
use kernel::{CheckCtx, ReplayReport, Thm};
use monadic::ProgramCtx;
use simpl::SimplProgram;

use crate::schedule::{par_map, run_dag, PoolStats};
use crate::stats::{PhaseStat, PipelineStats};

/// Driver options (per-function selections, Sec 3.2 / 4.6).
#[derive(Clone, Default)]
pub struct Options {
    /// Functions to keep at the byte-heap level (callable via
    /// `exec_concrete`).
    pub concrete_fns: BTreeSet<String>,
    /// Functions to word-abstract (`None` = all heap-abstracted functions).
    pub word_abstract_fns: Option<BTreeSet<String>>,
    /// Additional word-abstraction idiom rules (Sec 3.3).
    pub custom_word_rules: Vec<wordabs::CustomRule>,
    /// Differential-test budget for the L2 theorems.
    pub l2_trials: u32,
    /// RNG seed for the testing-validated rules.
    pub seed: u64,
    /// Worker threads for the per-function phases and theorem replay
    /// (`0` or `1` = run inline on the calling thread). Output is
    /// byte-identical at every worker count.
    pub workers: usize,
}

impl fmt::Debug for Options {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Options")
            .field("concrete_fns", &self.concrete_fns)
            .field("word_abstract_fns", &self.word_abstract_fns)
            .field("custom_word_rules", &self.custom_word_rules.len())
            .field("l2_trials", &self.l2_trials)
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .finish()
    }
}

/// Derives the RNG seed of one function's testing-validated rules from the
/// pipeline seed and the function name (FNV-1a over the name, mixed with a
/// SplitMix64 finalizer). Every phase uses this — sequential and parallel
/// runs therefore draw identical per-function streams regardless of the
/// order functions are processed in, which keeps `ExecTested` theorem
/// statements (which record their seed) byte-identical across schedules.
#[must_use]
pub fn derive_seed(seed: u64, fn_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fn_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = seed ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-function theorems for every verified phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTheorems {
    /// `l1corres` theorems (monadic ↦ Simpl).
    pub l1: Vec<(String, Thm)>,
    /// L2 `refines` theorems.
    pub l2: Vec<(String, Thm)>,
    /// `abs_h_stmt` theorems (absent for concrete-kept functions).
    pub hl: Vec<(String, Thm)>,
    /// `abs_w_stmt` theorems (absent for non-selected functions).
    pub wa: Vec<(String, Thm)>,
}

impl PhaseTheorems {
    /// All theorems with their phase tag and function name, in phase order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &str, &Thm)> {
        fn tag<'a>(
            phase: &'static str,
            v: &'a [(String, Thm)],
        ) -> impl Iterator<Item = (&'static str, &'a str, &'a Thm)> {
            v.iter().map(move |(n, t)| (phase, n.as_str(), t))
        }
        tag("l1", &self.l1)
            .chain(tag("l2", &self.l2))
            .chain(tag("hl", &self.hl))
            .chain(tag("wa", &self.wa))
    }

    /// Total theorem count across all phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len() + self.hl.len() + self.wa.len()
    }

    /// Is there no theorem at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full pipeline output.
#[derive(Clone, Debug)]
pub struct Output {
    /// The typed C program.
    pub typed: cparser::TProgram,
    /// The parser output (Simpl).
    pub simpl: SimplProgram,
    /// L1: monadic with state-stored locals.
    pub l1: ProgramCtx,
    /// L2: lambda-bound locals, structured control flow.
    pub l2: ProgramCtx,
    /// HL: typed split heaps.
    pub hl: ProgramCtx,
    /// WA: ideal arithmetic — the final AutoCorres output.
    pub wa: ProgramCtx,
    /// Theorems per phase.
    pub thms: PhaseTheorems,
    /// The kernel context (with the abstracted-function signature table),
    /// for replaying the theorems through the checker.
    pub check_ctx: CheckCtx,
    /// Per-phase timings, theorem/proof-tree counts, worker utilization.
    pub stats: PipelineStats,
}

impl Output {
    /// Table 5 metrics of the parser output (sum over functions).
    #[must_use]
    pub fn parser_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.simpl.fns.values().map(simpl::SimplFn::metrics))
    }

    /// Table 5 metrics of the final AutoCorres output.
    #[must_use]
    pub fn output_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.wa.fns.values().map(monadic::MonadicFn::metrics))
    }

    /// Replays every produced theorem through the independent checker,
    /// using the worker count the pipeline was configured with.
    ///
    /// # Errors
    ///
    /// Returns the first failing rule application (in theorem order).
    pub fn check_all(&self) -> Result<(), kernel::KernelError> {
        self.check_all_report(self.stats.workers)
            .map(|_| ())
            .map_err(|(_, e)| e)
    }

    /// Replays every produced theorem across `workers` threads, reporting
    /// replay occupancy ([`kernel::check_all`]).
    ///
    /// # Errors
    ///
    /// Returns the failing function name and kernel error, first in
    /// theorem order regardless of scheduling.
    pub fn check_all_report(
        &self,
        workers: usize,
    ) -> Result<ReplayReport, (String, kernel::KernelError)> {
        kernel::check_all(
            self.thms.iter().map(|(_, n, t)| (n, t)),
            &self.check_ctx,
            workers,
        )
    }

    /// Total number of kernel rule applications across all theorems.
    #[must_use]
    pub fn total_proof_size(&self) -> usize {
        self.thms.iter().map(|(_, _, t)| t.proof_size()).sum()
    }
}

/// A pipeline error, tagged with the failing phase.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// C frontend (lex/parse/typecheck).
    Frontend(String),
    /// C-to-Simpl translation.
    Simpl(String),
    /// L1 phase.
    L1(String),
    /// L2 phase.
    L2(String),
    /// Heap abstraction.
    Hl(String),
    /// Word abstraction.
    Wa(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(m) => write!(f, "frontend: {m}"),
            PipelineError::Simpl(m) => write!(f, "simpl: {m}"),
            PipelineError::L1(m) => write!(f, "L1: {m}"),
            PipelineError::L2(m) => write!(f, "L2: {m}"),
            PipelineError::Hl(m) => write!(f, "HL: {m}"),
            PipelineError::Wa(m) => write!(f, "WA: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Translates C source text through the full pipeline.
///
/// # Errors
///
/// Returns a [`PipelineError`] tagged with the failing phase.
pub fn translate(src: &str, opts: &Options) -> Result<Output, PipelineError> {
    let typed = cparser::parse_and_check(src)
        .map_err(|e| PipelineError::Frontend(e.to_string()))?;
    translate_program(&typed, opts)
}

/// Translates an already-typechecked program through the full pipeline,
/// scheduling the per-function phase work across [`Options::workers`]
/// threads (see the module docs for the determinism guarantee).
///
/// # Errors
///
/// As for [`translate`]. With multiple workers, errors of a phase are
/// reported for the first failing function in that phase's fixed order,
/// independent of thread interleaving.
pub fn translate_program(
    typed: &cparser::TProgram,
    opts: &Options,
) -> Result<Output, PipelineError> {
    let total_start = Instant::now();
    let workers = opts.workers.max(1);
    let mut phases: Vec<PhaseStat> = Vec::new();

    // Parse (trusted, sequential — one Simpl translation unit).
    let parse_start = Instant::now();
    let sp = simpl::translate_program(typed).map_err(|e| PipelineError::Simpl(e.to_string()))?;
    let parse_pool = PoolStats {
        workers: 1,
        busy: parse_start.elapsed(),
        wall: parse_start.elapsed(),
    };
    phases.push(PhaseStat::from_pool("parse", parse_pool, sp.fns.len(), 0, 0));
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };

    // L1: one independent job per function, results in BTreeMap order.
    let l1_items: Vec<(&String, &simpl::SimplFn)> = sp.fns.iter().collect();
    let (l1_results, l1_pool) = par_map(&l1_items, workers, |_, (name, f)| {
        crate::l1::l1_function(&cx, f).map(|out| ((*name).clone(), out))
    });
    let mut l1ctx = ProgramCtx {
        tenv: sp.tenv.clone(),
        globals: sp.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut l1_thms: Vec<(String, Thm)> = Vec::new();
    for r in l1_results {
        let (name, out) = r.map_err(|e| PipelineError::L1(e.to_string()))?;
        l1ctx.fns.insert(name.clone(), out.fun);
        l1_thms.push((name, out.thm));
    }
    phases.push(phase_stat("l1", l1_pool, l1_items.len(), &l1_thms));

    // L2: translate every function, then derive the per-function refines
    // theorems (which execute calls, so they need the complete contexts).
    let trials = if opts.l2_trials == 0 { 80 } else { opts.l2_trials };
    let l2_start = Instant::now();
    let (l2_translated, l2_pool_a) = par_map(&typed.functions, workers, |_, f| {
        crate::l2::l2_function(typed, f).map(|fun| (f.name.clone(), fun))
    });
    let mut l2ctx = ProgramCtx {
        tenv: l1ctx.tenv.clone(),
        globals: l1ctx.globals.clone(),
        ..ProgramCtx::default()
    };
    for r in l2_translated {
        let (name, fun) = r.map_err(|e| PipelineError::L2(e.to_string()))?;
        l2ctx.fns.insert(name, fun);
    }
    let heap_types = crate::testing::heap_types_of(&l1ctx.tenv, &l1ctx);
    let (l2_tested, l2_pool_b) = par_map(&typed.functions, workers, |_, f| {
        crate::l2::l2_fn_theorem(&cx, &l2ctx, &l1ctx, &heap_types, &f.name, trials, opts.seed)
            .map(|thm| (f.name.clone(), thm))
    });
    let mut l2_thms: Vec<(String, Thm)> = Vec::new();
    for r in l2_tested {
        l2_thms.push(r.map_err(|e| PipelineError::L2(e.to_string()))?);
    }
    let l2_pool = PoolStats {
        workers: l2_pool_a.workers.max(l2_pool_b.workers),
        busy: l2_pool_a.busy + l2_pool_b.busy,
        wall: l2_start.elapsed(),
    };
    phases.push(phase_stat("l2", l2_pool, typed.functions.len(), &l2_thms));

    // HL: independent per-function jobs; concrete-kept functions only get
    // their abstract call sites wrapped (no theorem).
    let hl_opts = heapabs::HlOptions {
        concrete_fns: opts.concrete_fns.clone(),
    };
    let hl_items: Vec<(&String, &monadic::MonadicFn)> = l2ctx.fns.iter().collect();
    let (hl_results, hl_pool) = par_map(&hl_items, workers, |_, (name, f)| {
        if hl_opts.concrete_fns.contains(*name) {
            Ok(((*name).clone(), heapabs::hl_keep_concrete(f, &hl_opts), None))
        } else {
            heapabs::hl_function(&cx, f, &hl_opts)
                .map(|(fun, thm)| ((*name).clone(), fun, Some(thm)))
        }
    });
    let mut hlctx = ProgramCtx {
        tenv: l2ctx.tenv.clone(),
        globals: l2ctx.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut hl_thms: Vec<(String, Thm)> = Vec::new();
    for r in hl_results {
        let (name, fun, thm) = r.map_err(|e| PipelineError::Hl(e.to_string()))?;
        hlctx.fns.insert(name.clone(), fun);
        if let Some(thm) = thm {
            hl_thms.push((name, thm));
        }
    }
    phases.push(phase_stat("hl", hl_pool, hl_items.len(), &hl_thms));

    // WA: scheduled over the call graph (a caller's job never starts
    // before its callees'), so downstream per-function work that follows a
    // function's abstraction — the caller adaptations below, and any
    // future exec-testing WA rules — can rely on callee results being
    // final. Non-selected functions pass through unchanged.
    let wa_opts = wordabs::WaOptions {
        abstract_fns: match &opts.word_abstract_fns {
            Some(s) => Some(s.clone()),
            // Never word-abstract concrete-kept functions by default.
            None if opts.concrete_fns.is_empty() => None,
            None => Some(
                hlctx
                    .fns
                    .keys()
                    .filter(|n| !opts.concrete_fns.contains(*n))
                    .cloned()
                    .collect(),
            ),
        },
        custom_rules: opts.custom_word_rules.clone(),
        custom_trials: 1000,
    };
    let check_ctx = wordabs::wa_signatures(&cx, &hlctx, &wa_opts);
    let wa_items: Vec<(&String, &monadic::MonadicFn)> = hlctx.fns.iter().collect();
    let index: std::collections::BTreeMap<&str, usize> = wa_items
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    let call_graph = hlctx.call_graph();
    let deps: Vec<Vec<usize>> = wa_items
        .iter()
        .map(|(n, _)| {
            call_graph[n.as_str()]
                .iter()
                .filter_map(|c| index.get(c.as_str()).copied())
                .collect()
        })
        .collect();
    let (wa_results, wa_pool) = run_dag(wa_items.len(), &deps, workers, |i| {
        let (name, f) = wa_items[i];
        if wa_opts.selects(name) {
            wordabs::wa_function_in(&check_ctx, &hlctx, f, &wa_opts)
                .map(|(fun, thm)| (name.clone(), fun, Some(thm)))
        } else {
            Ok((name.clone(), (*f).clone(), None))
        }
    });
    let mut wactx = ProgramCtx {
        tenv: hlctx.tenv.clone(),
        globals: hlctx.globals.clone(),
        ..ProgramCtx::default()
    };
    let mut wa_thms: Vec<(String, Thm)> = Vec::new();
    for r in wa_results {
        let (name, fun, thm) = r.map_err(|e: wordabs::WaError| PipelineError::Wa(e.to_string()))?;
        wactx.fns.insert(name.clone(), fun);
        if let Some(thm) = thm {
            wa_thms.push((name, thm));
        }
    }
    phases.push(phase_stat("wa", wa_pool, wa_items.len(), &wa_thms));

    // Caller adaptation: rewrite non-abstracted callers of abstracted
    // callees, then exec-test every rewritten function against the *final*
    // context. All WA theorems exist before any adaptation theorem is
    // derived (the call-graph ordering the scheduler enforces phase-wide).
    let adapt_start = Instant::now();
    let plans = plan_caller_adaptations(&check_ctx, &hlctx, &wactx);
    for (name, new_body, _) in &plans {
        let f = wactx
            .fns
            .get_mut(name)
            .expect("planned adaptation of a known function");
        f.body = new_body.clone();
    }
    let adapt_heap_types = crate::testing::heap_types_of(&hlctx.tenv, &hlctx);
    let (adapt_results, adapt_pool) = par_map(&plans, workers, |_, (name, new_body, old_body)| {
        let fn_seed = derive_seed(opts.seed, name);
        kernel::rules::refine::exec_tested(&check_ctx, new_body, old_body, 60, fn_seed, || {
            test_adapted_fn(&wactx, &hlctx, name, &adapt_heap_types, 60, fn_seed)
        })
        .map(|thm| (name.clone(), thm))
        .map_err(|e| e.to_string())
    });
    let mut adapt_thms: Vec<(String, Thm)> = Vec::new();
    for r in adapt_results {
        adapt_thms.push(r.map_err(PipelineError::Wa)?);
    }
    let adapt_pool = PoolStats {
        wall: adapt_start.elapsed(),
        ..adapt_pool
    };
    phases.push(phase_stat("adapt", adapt_pool, plans.len(), &adapt_thms));
    wa_thms.extend(adapt_thms);

    let thms = PhaseTheorems {
        l1: l1_thms,
        l2: l2_thms,
        hl: hl_thms,
        wa: wa_thms,
    };
    let mut stats = PipelineStats {
        workers,
        phases,
        total_wall: total_start.elapsed(),
        ..PipelineStats::default()
    };
    for (_, name, thm) in thms.iter() {
        *stats.fn_theorems.entry(name.to_owned()).or_insert(0) += 1;
        *stats.fn_proof_nodes.entry(name.to_owned()).or_insert(0) += thm.proof_size();
    }
    Ok(Output {
        typed: typed.clone(),
        simpl: sp,
        l1: l1ctx,
        l2: l2ctx,
        hl: hlctx,
        wa: wactx,
        thms,
        check_ctx,
        stats,
    })
}

/// Builds the phase entry from its pool occupancy and theorem list.
fn phase_stat(
    name: &'static str,
    pool: PoolStats,
    fns: usize,
    thms: &[(String, Thm)],
) -> PhaseStat {
    let proof_nodes = thms.iter().map(|(_, t)| t.proof_size()).sum();
    PhaseStat::from_pool(name, pool, fns, thms.len(), proof_nodes)
}

/// Plans the call-site adaptations of non-abstracted callers (Sec 4.6's
/// value direction): for every function outside the `fn_abs` table whose
/// body calls an abstracted callee, computes the rewritten body — arguments
/// lifted with `unat`/`sint`, results re-concretised with
/// `of_nat`/`of_int`. Pure: no context mutation, no testing. Returns
/// `(name, new_body, old_body)` in name order, changed functions only.
fn plan_caller_adaptations(
    cx: &CheckCtx,
    hlctx: &ProgramCtx,
    wactx: &ProgramCtx,
) -> Vec<(String, monadic::Prog, monadic::Prog)> {
    use ir::expr::{CastKind, Expr};
    use ir::ty::{Signedness, Ty};
    use monadic::Prog;

    let abstracted: BTreeSet<String> = cx.fn_abs.keys().cloned().collect();
    if abstracted.is_empty() {
        return Vec::new();
    }
    let lift_arg = |a: &Expr, conc_ty: &Ty| -> Expr {
        match conc_ty {
            Ty::Word(_, Signedness::Unsigned) => Expr::cast(CastKind::Unat, a.clone()),
            Ty::Word(_, Signedness::Signed) => Expr::cast(CastKind::Sint, a.clone()),
            _ => a.clone(),
        }
    };
    let rewrite_calls = |p: &Prog, hl_f: &dyn Fn(&str) -> Option<monadic::MonadicFn>| -> Prog {
        fn go(
            p: &Prog,
            abstracted: &BTreeSet<String>,
            hl_f: &dyn Fn(&str) -> Option<monadic::MonadicFn>,
            lift_arg: &dyn Fn(&Expr, &Ty) -> Expr,
        ) -> Prog {
            match p {
                Prog::Call { fname, args } if abstracted.contains(fname) => {
                    let Some(callee) = hl_f(fname) else {
                        return p.clone();
                    };
                    let new_args: Vec<Expr> = args
                        .iter()
                        .zip(&callee.params)
                        .map(|(a, (_, t))| lift_arg(a, t))
                        .collect();
                    let call = Prog::Call {
                        fname: fname.clone(),
                        args: new_args,
                    };
                    match &callee.ret_ty {
                        Ty::Word(w, s @ Signedness::Unsigned) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfNat(*w, *s), Expr::var("·r"))),
                        ),
                        Ty::Word(w, s @ Signedness::Signed) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfInt(*w, *s), Expr::var("·r"))),
                        ),
                        _ => call,
                    }
                }
                Prog::Bind(l, v, r) => Prog::bind(
                    go(l, abstracted, hl_f, lift_arg),
                    v.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::BindTuple(l, vs, r) => Prog::bind_tuple(
                    go(l, abstracted, hl_f, lift_arg),
                    vs.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::Catch(l, v, r) => Prog::Catch(
                    ir::intern::Interned::new(go(l, abstracted, hl_f, lift_arg)),
                    v.clone(),
                    ir::intern::Interned::new(go(r, abstracted, hl_f, lift_arg)),
                ),
                Prog::Condition(c, t, e) => Prog::cond(
                    c.clone(),
                    go(t, abstracted, hl_f, lift_arg),
                    go(e, abstracted, hl_f, lift_arg),
                ),
                Prog::While {
                    vars,
                    cond,
                    body,
                    init,
                } => Prog::While {
                    vars: vars.clone(),
                    cond: cond.clone(),
                    body: ir::intern::Interned::new(go(body, abstracted, hl_f, lift_arg)),
                    init: init.clone(),
                },
                Prog::ExecConcrete(q) => {
                    Prog::ExecConcrete(ir::intern::Interned::new(go(q, abstracted, hl_f, lift_arg)))
                }
                Prog::ExecAbstract(q) => {
                    Prog::ExecAbstract(ir::intern::Interned::new(go(q, abstracted, hl_f, lift_arg)))
                }
                other => other.clone(),
            }
        }
        go(p, &abstracted, hl_f, &lift_arg)
    };

    wactx
        .fns
        .iter()
        .filter(|(name, _)| !abstracted.contains(*name))
        .filter_map(|(name, old)| {
            let new_body = rewrite_calls(&old.body, &|f| hlctx.fns.get(f).cloned());
            if new_body == old.body {
                None
            } else {
                Some((name.clone(), new_body, old.body.clone()))
            }
        })
        .collect()
}

/// Differential test for an adapted concrete caller: final-level run vs
/// HL-level run on identical concrete states and arguments.
fn test_adapted_fn(
    wactx: &ProgramCtx,
    hlctx: &ProgramCtx,
    fname: &str,
    heap_types: &[ir::ty::Ty],
    trials: u32,
    seed: u64,
) -> Result<(), String> {
    use ir::state::State;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let f = &hlctx.fns[fname];
    for i in 0..trials {
        let conc = crate::testing::gen_state(&mut rng, &hlctx.tenv, heap_types, 4);
        let args: Vec<ir::value::Value> = f
            .params
            .iter()
            .map(|(_, t)| crate::testing::random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let st = State::Conc(conc);
        let new_run = monadic::exec_fn(wactx, fname, &args, st.clone(), 200_000);
        let old_run = monadic::exec_fn(hlctx, fname, &args, st, 200_000);
        match (new_run, old_run) {
            (Ok((v1, s1)), Ok((v2, s2))) => {
                if v1 != v2 || s1 != s2 {
                    return Err(format!("trial {i}: adapted caller diverges"));
                }
            }
            (Err(monadic::MonadFault::Failure(_)), _) => continue,
            (_, Err(monadic::MonadFault::Failure(_))) => continue,
            (a, b) => return Err(format!("trial {i}: outcomes diverge: {a:?} vs {b:?}")),
        }
    }
    Ok(())
}
