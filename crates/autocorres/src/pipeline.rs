//! The pipeline driver: C source → abstracted specification + theorems.
//!
//! Runs the phases of the paper's Fig 1 in order and collects the
//! per-function theorem of each verified arrow. The output exposes every
//! intermediate level (Simpl, L1, L2, HL, WA) so users can reason at
//! whichever level suits them — and so the Table 5 metrics can compare the
//! parser output against the final output.

use std::collections::BTreeSet;
use std::fmt;

use ir::metrics::SpecMetrics;
use kernel::{CheckCtx, Thm};
use monadic::ProgramCtx;
use simpl::SimplProgram;

/// Driver options (per-function selections, Sec 3.2 / 4.6).
#[derive(Clone, Default)]
pub struct Options {
    /// Functions to keep at the byte-heap level (callable via
    /// `exec_concrete`).
    pub concrete_fns: BTreeSet<String>,
    /// Functions to word-abstract (`None` = all heap-abstracted functions).
    pub word_abstract_fns: Option<BTreeSet<String>>,
    /// Additional word-abstraction idiom rules (Sec 3.3).
    pub custom_word_rules: Vec<wordabs::CustomRule>,
    /// Differential-test budget for the L2 theorems.
    pub l2_trials: u32,
    /// RNG seed for the testing-validated rules.
    pub seed: u64,
}

impl fmt::Debug for Options {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Options")
            .field("concrete_fns", &self.concrete_fns)
            .field("word_abstract_fns", &self.word_abstract_fns)
            .field("custom_word_rules", &self.custom_word_rules.len())
            .field("l2_trials", &self.l2_trials)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Per-function theorems for every verified phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTheorems {
    /// `l1corres` theorems (monadic ↦ Simpl).
    pub l1: Vec<(String, Thm)>,
    /// L2 `refines` theorems.
    pub l2: Vec<(String, Thm)>,
    /// `abs_h_stmt` theorems (absent for concrete-kept functions).
    pub hl: Vec<(String, Thm)>,
    /// `abs_w_stmt` theorems (absent for non-selected functions).
    pub wa: Vec<(String, Thm)>,
}

/// The full pipeline output.
#[derive(Clone, Debug)]
pub struct Output {
    /// The typed C program.
    pub typed: cparser::TProgram,
    /// The parser output (Simpl).
    pub simpl: SimplProgram,
    /// L1: monadic with state-stored locals.
    pub l1: ProgramCtx,
    /// L2: lambda-bound locals, structured control flow.
    pub l2: ProgramCtx,
    /// HL: typed split heaps.
    pub hl: ProgramCtx,
    /// WA: ideal arithmetic — the final AutoCorres output.
    pub wa: ProgramCtx,
    /// Theorems per phase.
    pub thms: PhaseTheorems,
    /// The kernel context (with the abstracted-function signature table),
    /// for replaying the theorems through the checker.
    pub check_ctx: CheckCtx,
}

impl Output {
    /// Table 5 metrics of the parser output (sum over functions).
    #[must_use]
    pub fn parser_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.simpl.fns.values().map(simpl::SimplFn::metrics))
    }

    /// Table 5 metrics of the final AutoCorres output.
    #[must_use]
    pub fn output_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.wa.fns.values().map(monadic::MonadicFn::metrics))
    }

    /// Replays every produced theorem through the independent checker.
    ///
    /// # Errors
    ///
    /// Returns the first failing rule application.
    pub fn check_all(&self) -> Result<(), kernel::KernelError> {
        for (_, t) in self
            .thms
            .l1
            .iter()
            .chain(&self.thms.l2)
            .chain(&self.thms.hl)
            .chain(&self.thms.wa)
        {
            kernel::check(t, &self.check_ctx)?;
        }
        Ok(())
    }

    /// Total number of kernel rule applications across all theorems.
    #[must_use]
    pub fn total_proof_size(&self) -> usize {
        self.thms
            .l1
            .iter()
            .chain(&self.thms.l2)
            .chain(&self.thms.hl)
            .chain(&self.thms.wa)
            .map(|(_, t)| t.proof_size())
            .sum()
    }
}

/// A pipeline error, tagged with the failing phase.
#[derive(Clone, Debug)]
pub enum PipelineError {
    /// C frontend (lex/parse/typecheck).
    Frontend(String),
    /// C-to-Simpl translation.
    Simpl(String),
    /// L1 phase.
    L1(String),
    /// L2 phase.
    L2(String),
    /// Heap abstraction.
    Hl(String),
    /// Word abstraction.
    Wa(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(m) => write!(f, "frontend: {m}"),
            PipelineError::Simpl(m) => write!(f, "simpl: {m}"),
            PipelineError::L1(m) => write!(f, "L1: {m}"),
            PipelineError::L2(m) => write!(f, "L2: {m}"),
            PipelineError::Hl(m) => write!(f, "HL: {m}"),
            PipelineError::Wa(m) => write!(f, "WA: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Translates C source text through the full pipeline.
///
/// # Errors
///
/// Returns a [`PipelineError`] tagged with the failing phase.
pub fn translate(src: &str, opts: &Options) -> Result<Output, PipelineError> {
    let typed = cparser::parse_and_check(src)
        .map_err(|e| PipelineError::Frontend(e.to_string()))?;
    translate_program(&typed, opts)
}

/// Translates an already-typechecked program through the full pipeline.
///
/// # Errors
///
/// As for [`translate`].
pub fn translate_program(
    typed: &cparser::TProgram,
    opts: &Options,
) -> Result<Output, PipelineError> {
    let sp = simpl::translate_program(typed).map_err(|e| PipelineError::Simpl(e.to_string()))?;
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };
    let (l1ctx, l1_thms) =
        crate::l1::l1_program(&cx, &sp).map_err(|e| PipelineError::L1(e.to_string()))?;
    let trials = if opts.l2_trials == 0 { 80 } else { opts.l2_trials };
    let (l2ctx, l2_thms) = crate::l2::l2_program(&cx, typed, &l1ctx, trials, opts.seed)
        .map_err(|e| PipelineError::L2(e.to_string()))?;
    let hl_opts = heapabs::HlOptions {
        concrete_fns: opts.concrete_fns.clone(),
    };
    let (hlctx, hl_thms) = heapabs::hl_program(&cx, &l2ctx, &hl_opts)
        .map_err(|e| PipelineError::Hl(e.to_string()))?;
    let wa_opts = wordabs::WaOptions {
        abstract_fns: match &opts.word_abstract_fns {
            Some(s) => Some(s.clone()),
            // Never word-abstract concrete-kept functions by default.
            None if opts.concrete_fns.is_empty() => None,
            None => Some(
                hlctx
                    .fns
                    .keys()
                    .filter(|n| !opts.concrete_fns.contains(*n))
                    .cloned()
                    .collect(),
            ),
        },
        custom_rules: opts.custom_word_rules.clone(),
        custom_trials: 1000,
    };
    let (mut wactx, mut wa_thms, check_ctx) = wordabs::wa_program(&cx, &hlctx, &wa_opts)
        .map_err(|e| PipelineError::Wa(e.to_string()))?;
    // Concrete-kept functions calling word-abstracted callees need their
    // call sites adapted to the abstract calling convention (the value
    // side of Sec 4.6's `exec_abstract`); each adaptation carries an
    // exec-tested refines theorem against the pre-adaptation body.
    adapt_concrete_callers(
        &check_ctx,
        &hlctx,
        &mut wactx,
        &mut wa_thms,
        opts.seed,
    )
    .map_err(PipelineError::Wa)?;
    Ok(Output {
        typed: typed.clone(),
        simpl: sp,
        l1: l1ctx,
        l2: l2ctx,
        hl: hlctx,
        wa: wactx,
        thms: PhaseTheorems {
            l1: l1_thms,
            l2: l2_thms,
            hl: hl_thms,
            wa: wa_thms,
        },
        check_ctx,
    })
}

/// Rewrites calls from non-abstracted functions to word-abstracted callees:
/// arguments are lifted with `unat`/`sint`, results re-concretised with
/// `of_nat`/`of_int`. Each rewritten function gets an `ExecTested` refines
/// theorem (rewritten body vs. pre-WA body, differentially).
fn adapt_concrete_callers(
    cx: &CheckCtx,
    hlctx: &ProgramCtx,
    wactx: &mut ProgramCtx,
    wa_thms: &mut Vec<(String, Thm)>,
    seed: u64,
) -> Result<(), String> {
    use ir::expr::{CastKind, Expr};
    use ir::ty::{Signedness, Ty};
    use monadic::Prog;

    let abstracted: std::collections::BTreeSet<String> =
        cx.fn_abs.keys().cloned().collect();
    if abstracted.is_empty() {
        return Ok(());
    }
    let lift_arg = |a: &Expr, conc_ty: &Ty| -> Expr {
        match conc_ty {
            Ty::Word(_, Signedness::Unsigned) => Expr::cast(CastKind::Unat, a.clone()),
            Ty::Word(_, Signedness::Signed) => Expr::cast(CastKind::Sint, a.clone()),
            _ => a.clone(),
        }
    };
    let rewrite_calls = |p: &Prog, hl_f: &dyn Fn(&str) -> Option<monadic::MonadicFn>| -> Prog {
        fn go(
            p: &Prog,
            abstracted: &std::collections::BTreeSet<String>,
            hl_f: &dyn Fn(&str) -> Option<monadic::MonadicFn>,
            lift_arg: &dyn Fn(&Expr, &Ty) -> Expr,
        ) -> Prog {
            match p {
                Prog::Call { fname, args } if abstracted.contains(fname) => {
                    let Some(callee) = hl_f(fname) else {
                        return p.clone();
                    };
                    let new_args: Vec<Expr> = args
                        .iter()
                        .zip(&callee.params)
                        .map(|(a, (_, t))| lift_arg(a, t))
                        .collect();
                    let call = Prog::Call {
                        fname: fname.clone(),
                        args: new_args,
                    };
                    match &callee.ret_ty {
                        Ty::Word(w, s @ Signedness::Unsigned) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfNat(*w, *s), Expr::var("·r"))),
                        ),
                        Ty::Word(w, s @ Signedness::Signed) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfInt(*w, *s), Expr::var("·r"))),
                        ),
                        _ => call,
                    }
                }
                Prog::Bind(l, v, r) => Prog::bind(
                    go(l, abstracted, hl_f, lift_arg),
                    v.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::BindTuple(l, vs, r) => Prog::bind_tuple(
                    go(l, abstracted, hl_f, lift_arg),
                    vs.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::Catch(l, v, r) => Prog::Catch(
                    Box::new(go(l, abstracted, hl_f, lift_arg)),
                    v.clone(),
                    Box::new(go(r, abstracted, hl_f, lift_arg)),
                ),
                Prog::Condition(c, t, e) => Prog::cond(
                    c.clone(),
                    go(t, abstracted, hl_f, lift_arg),
                    go(e, abstracted, hl_f, lift_arg),
                ),
                Prog::While {
                    vars,
                    cond,
                    body,
                    init,
                } => Prog::While {
                    vars: vars.clone(),
                    cond: cond.clone(),
                    body: Box::new(go(body, abstracted, hl_f, lift_arg)),
                    init: init.clone(),
                },
                Prog::ExecConcrete(q) => {
                    Prog::ExecConcrete(Box::new(go(q, abstracted, hl_f, lift_arg)))
                }
                Prog::ExecAbstract(q) => {
                    Prog::ExecAbstract(Box::new(go(q, abstracted, hl_f, lift_arg)))
                }
                other => other.clone(),
            }
        }
        go(p, &abstracted, hl_f, &lift_arg)
    };

    let names: Vec<String> = wactx
        .fns
        .keys()
        .filter(|n| !abstracted.contains(*n))
        .cloned()
        .collect();
    for name in names {
        let old = wactx.fns[&name].clone();
        let new_body = rewrite_calls(&old.body, &|f| hlctx.fns.get(f).cloned());
        if new_body == old.body {
            continue;
        }
        let mut updated = old.clone();
        updated.body = new_body.clone();
        wactx.fns.insert(name.clone(), updated);
        // Differential evidence: the adapted function (in the final ctx)
        // behaves like the pre-WA function (in the HL ctx).
        let wactx_snapshot = wactx.clone();
        let heap_types = crate::testing::heap_types_of(&hlctx.tenv, hlctx);
        let thm = kernel::rules::refine::exec_tested(
            cx,
            &new_body,
            &old.body,
            60,
            seed,
            || {
                test_adapted_fn(&wactx_snapshot, hlctx, &name, &heap_types, 60, seed)
            },
        )
        .map_err(|e| e.to_string())?;
        wa_thms.push((name, thm));
    }
    Ok(())
}

/// Differential test for an adapted concrete caller: final-level run vs
/// HL-level run on identical concrete states and arguments.
fn test_adapted_fn(
    wactx: &ProgramCtx,
    hlctx: &ProgramCtx,
    fname: &str,
    heap_types: &[ir::ty::Ty],
    trials: u32,
    seed: u64,
) -> Result<(), String> {
    use ir::state::State;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let f = &hlctx.fns[fname];
    for i in 0..trials {
        let conc = crate::testing::gen_state(&mut rng, &hlctx.tenv, heap_types, 4);
        let args: Vec<ir::value::Value> = f
            .params
            .iter()
            .map(|(_, t)| crate::testing::random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let st = State::Conc(conc);
        let new_run = monadic::exec_fn(wactx, fname, &args, st.clone(), 200_000);
        let old_run = monadic::exec_fn(hlctx, fname, &args, st, 200_000);
        match (new_run, old_run) {
            (Ok((v1, s1)), Ok((v2, s2))) => {
                if v1 != v2 || s1 != s2 {
                    return Err(format!("trial {i}: adapted caller diverges"));
                }
            }
            (Err(monadic::MonadFault::Failure(_)), _) => continue,
            (_, Err(monadic::MonadFault::Failure(_))) => continue,
            (a, b) => return Err(format!("trial {i}: outcomes diverge: {a:?} vs {b:?}")),
        }
    }
    Ok(())
}
