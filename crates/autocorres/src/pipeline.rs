//! The pipeline driver: C source → abstracted specification + theorems.
//!
//! The phase logic itself lives in [`crate::phase`]: L1, L2, HL, WA and
//! caller adaptation are uniform [`crate::phase::Phase`] nodes in a
//! per-function dependency graph executed by the generic
//! [`crate::schedule::run_dag`] scheduler. This module keeps the stable
//! surface — [`Options`], [`Output`], [`PhaseTheorems`], the one-shot
//! [`translate`]/[`translate_program`] entry points — and the
//! seed-derivation shared by every testing-validated rule. Incremental
//! re-translation (reusing unchanged per-function artifacts across runs)
//! is offered by [`crate::Session`].
//!
//! # Parallelism and determinism
//!
//! Within the graph, functions are independent (L1/L2/HL) or ordered by
//! the call graph (WA and caller adaptation). [`Options::workers`] asks
//! for a pool width; [`crate::schedule::plan_workers`] grants at most the
//! host CPU count (and `1` when the estimated work would not amortize a
//! pool), and the granted width drives a work-stealing scheduler over the
//! whole phase graph with functions grouped into cost-balanced batches
//! (see [`crate::phase`]). `0`/`1` runs everything inline on the calling
//! thread. All schedules execute the *same* per-function jobs with
//! per-function
//! RNG streams derived by [`derive_seed`] from `(seed, fn_name)`, and
//! results are collected in fixed name/source order — so for a fixed seed
//! the output (specs, theorem statements, guards, metrics) is
//! byte-identical at any worker count, cached or not. The determinism
//! test suite asserts this.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ir::diag::Diag;
use ir::metrics::SpecMetrics;
use kernel::{CheckCtx, ReplayReport, Thm};
use monadic::ProgramCtx;
use simpl::SimplProgram;

use crate::stats::PipelineStats;

/// Driver options (per-function selections, Sec 3.2 / 4.6).
#[derive(Clone, Default)]
pub struct Options {
    /// Functions to keep at the byte-heap level (callable via
    /// `exec_concrete`).
    pub concrete_fns: BTreeSet<String>,
    /// Functions to word-abstract (`None` = all heap-abstracted functions).
    pub word_abstract_fns: Option<BTreeSet<String>>,
    /// Additional word-abstraction idiom rules (Sec 3.3).
    pub custom_word_rules: Vec<wordabs::CustomRule>,
    /// Differential-test budget for the L2 theorems.
    pub l2_trials: u32,
    /// RNG seed for the testing-validated rules.
    pub seed: u64,
    /// Worker threads for the per-function phases and theorem replay
    /// (`0` or `1` = run inline on the calling thread). This is a
    /// *request*: [`crate::schedule::plan_workers`] may grant fewer —
    /// never more than the host has CPUs, and `1` when the estimated
    /// work is too small to amortize a pool. Output is byte-identical at
    /// every worker count, requested or granted.
    pub workers: usize,
    /// Bypass the adaptive sizing policy and run the pool at exactly
    /// `workers` threads, even on a single-CPU host (where the policy
    /// would otherwise always run inline). For tests and benches that
    /// must exercise the parallel machinery — including deliberate
    /// oversubscription; never needed in normal use. Like `workers`,
    /// never affects output bytes.
    pub force_pool: bool,
    /// Disk-backed warm start: a directory (created on demand) where a
    /// [`crate::Session`] persists its artifact store and replay cache so
    /// a *fresh process* can reuse them (DESIGN.md §6g). `None` disables
    /// persistence. Not part of [`crate::options_digest`]: where the cache
    /// lives cannot affect what is computed.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Disables the abstract-interpretation phase (guard discharge and
    /// lints). The phase never changes specs or refinement theorems, so
    /// this is purely an escape hatch: translation output is byte-identical
    /// either way, only the discharge report and lint set become empty.
    pub no_absint: bool,
}

impl fmt::Debug for Options {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Options")
            .field("concrete_fns", &self.concrete_fns)
            .field("word_abstract_fns", &self.word_abstract_fns)
            .field("custom_word_rules", &self.custom_word_rules.len())
            .field("l2_trials", &self.l2_trials)
            .field("seed", &self.seed)
            .field("workers", &self.workers)
            .field("force_pool", &self.force_pool)
            .field("cache_dir", &self.cache_dir)
            .field("no_absint", &self.no_absint)
            .finish()
    }
}

/// Derives the RNG seed of one function's testing-validated rules from the
/// pipeline seed and the function name (FNV-1a over the name, mixed with a
/// SplitMix64 finalizer). Every phase uses this — sequential and parallel
/// runs therefore draw identical per-function streams regardless of the
/// order functions are processed in, which keeps `ExecTested` theorem
/// statements (which record their seed) byte-identical across schedules.
#[must_use]
pub fn derive_seed(seed: u64, fn_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fn_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = seed ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-function theorems for every verified phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseTheorems {
    /// `l1corres` theorems (monadic ↦ Simpl).
    pub l1: Vec<(String, Thm)>,
    /// L2 `refines` theorems.
    pub l2: Vec<(String, Thm)>,
    /// `abs_h_stmt` theorems (absent for concrete-kept functions).
    pub hl: Vec<(String, Thm)>,
    /// `abs_w_stmt` theorems (absent for non-selected functions).
    pub wa: Vec<(String, Thm)>,
}

impl PhaseTheorems {
    /// All theorems with their phase tag and function name, in phase order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &str, &Thm)> {
        fn tag<'a>(
            phase: &'static str,
            v: &'a [(String, Thm)],
        ) -> impl Iterator<Item = (&'static str, &'a str, &'a Thm)> {
            v.iter().map(move |(n, t)| (phase, n.as_str(), t))
        }
        tag("l1", &self.l1)
            .chain(tag("l2", &self.l2))
            .chain(tag("hl", &self.hl))
            .chain(tag("wa", &self.wa))
    }

    /// Total theorem count across all phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len() + self.hl.len() + self.wa.len()
    }

    /// Is there no theorem at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The full pipeline output.
#[derive(Clone, Debug)]
pub struct Output {
    /// The typed C program.
    pub typed: cparser::TProgram,
    /// The parser output (Simpl).
    pub simpl: SimplProgram,
    /// L1: monadic with state-stored locals.
    pub l1: ProgramCtx,
    /// L2: lambda-bound locals, structured control flow.
    pub l2: ProgramCtx,
    /// HL: typed split heaps.
    pub hl: ProgramCtx,
    /// WA: ideal arithmetic — the final AutoCorres output.
    pub wa: ProgramCtx,
    /// Theorems per phase.
    pub thms: PhaseTheorems,
    /// Per-function abstract-interpretation results: guard verdicts (with
    /// one `absint_discharge` theorem per statically proved guard) and
    /// lints. Empty reports with [`Options::no_absint`]. Kept apart from
    /// [`Output::thms`]: discharge theorems certify guard validity, not
    /// translation correctness, and are replayed by
    /// [`Output::check_absint`].
    pub absint: BTreeMap<String, crate::phase::AbsintFn>,
    /// The kernel context (with the abstracted-function signature table),
    /// for replaying the theorems through the checker.
    pub check_ctx: CheckCtx,
    /// Per-phase timings, theorem/proof-tree counts, worker utilization,
    /// cache hit counters.
    pub stats: PipelineStats,
}

impl Output {
    /// Table 5 metrics of the parser output (sum over functions).
    #[must_use]
    pub fn parser_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.simpl.fns.values().map(simpl::SimplFn::metrics))
    }

    /// Table 5 metrics of the final AutoCorres output.
    #[must_use]
    pub fn output_metrics(&self) -> SpecMetrics {
        SpecMetrics::combine(self.wa.fns.values().map(monadic::MonadicFn::metrics))
    }

    /// Replays every produced theorem through the independent checker,
    /// using the worker count the pipeline was configured with.
    ///
    /// # Errors
    ///
    /// Returns the first failing rule application (in theorem order).
    pub fn check_all(&self) -> Result<(), kernel::KernelError> {
        self.check_all_report(self.stats.workers)
            .map(|_| ())
            .map_err(|(_, e)| e)
    }

    /// Replays every produced theorem across `workers` threads, reporting
    /// replay occupancy ([`kernel::check_all`]).
    ///
    /// # Errors
    ///
    /// Returns the failing function name and kernel error, first in
    /// theorem order regardless of scheduling.
    pub fn check_all_report(
        &self,
        workers: usize,
    ) -> Result<ReplayReport, (String, kernel::KernelError)> {
        kernel::check_all(
            self.thms.iter().map(|(_, n, t)| (n, t)),
            &self.check_ctx,
            workers,
        )
    }

    /// Total number of kernel rule applications across all theorems.
    #[must_use]
    pub fn total_proof_size(&self) -> usize {
        self.thms.iter().map(|(_, _, t)| t.proof_size()).sum()
    }

    /// Replays every `absint_discharge` theorem through the independent
    /// checker — the kernel re-runs each theorem's interval side
    /// condition, so a bug in the analyzer's fixpoint cannot silently
    /// discharge an invalid guard.
    ///
    /// # Errors
    ///
    /// Returns the first failing rule application (in function order).
    pub fn check_absint(&self) -> Result<(), kernel::KernelError> {
        kernel::check_all(
            self.absint.iter().flat_map(|(name, a)| {
                a.thms.iter().map(move |(_, t)| (name.as_str(), t))
            }),
            &self.check_ctx,
            self.stats.workers,
        )
        .map(|_| ())
        .map_err(|(_, e)| e)
    }

    /// The abstract-interpretation findings as diagnostics: the AST-level
    /// lints (dead stores, unreachable code, use-before-init) with their
    /// source spans, plus one `definite-overflow` lint per guard proved
    /// *false* — a fault on a reachable path, anchored at the function's
    /// main VC span like a solver refutation would be. Sorted by function
    /// name, then span offset.
    #[must_use]
    pub fn lint_diags(&self) -> Vec<Diag> {
        let mut out = Vec::new();
        for (name, a) in &self.absint {
            let mut fn_diags: Vec<Diag> = Vec::new();
            for l in &a.report.lints {
                fn_diags.push(
                    Diag::new(
                        ir::diag::Phase::Absint,
                        ir::diag::DiagKind::Lint,
                        format!("{}: {}", l.kind.name(), l.message),
                    )
                    .with_function(name)
                    .with_span(l.span),
                );
            }
            let main = self.fn_spans(name).map(|(m, _)| m);
            for g in &a.report.guards {
                if g.verdict == absint::Verdict::ProvedFalse {
                    let mut d = Diag::new(
                        ir::diag::Phase::Absint,
                        ir::diag::DiagKind::Lint,
                        format!(
                            "definite-overflow: guard {} is provably false on a \
                             reachable path: {}",
                            g.kind, g.guard
                        ),
                    )
                    .with_function(name);
                    if let Some(sp) = main {
                        d = d.with_span(sp);
                    }
                    fn_diags.push(d);
                }
            }
            fn_diags.sort_by_key(|d| d.span.map_or(0, |s| s.offset));
            out.extend(fn_diags);
        }
        out
    }

    /// Source spans backing the verification conditions of `name`: the
    /// function-header span plus one span per loop in *WP traversal
    /// order* — the order the VCG consumes loop annotations in. WP works
    /// continuation-first, so at each nesting level statements are
    /// visited in reverse order, a loop is visited before the loops of
    /// its own body, `if` visits the then-branch before the else-branch,
    /// and a `do`/`while` body contributes its loops twice (the lowering
    /// unrolls the first iteration in front of the loop).
    /// The main VC's postcondition is checked at function exit, so its
    /// span is the last `return` statement (statement-level, not the
    /// header); functions without a `return` fall back to the header.
    #[must_use]
    pub fn fn_spans(&self, name: &str) -> Option<(ir::diag::Span, Vec<ir::diag::Span>)> {
        let f = self.typed.function(name)?;
        let mut loops = Vec::new();
        collect_loop_spans(&f.body, &mut loops);
        let main = last_return_span(&f.body).unwrap_or(f.span);
        Some((main, loops))
    }
}

/// The span of the last `return` statement in source order, if any.
fn last_return_span(stmts: &[cparser::TStmt]) -> Option<ir::diag::Span> {
    use cparser::TStmt;
    let mut found = None;
    for s in stmts {
        match s {
            TStmt::Return(_, span) => found = Some(*span),
            TStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let sp = last_return_span(else_branch)
                    .or_else(|| last_return_span(then_branch));
                if let Some(sp) = sp {
                    found = Some(sp);
                }
            }
            TStmt::While { body, .. } | TStmt::DoWhile { body, .. } | TStmt::Block(body) => {
                if let Some(sp) = last_return_span(body) {
                    found = Some(sp);
                }
            }
            _ => {}
        }
    }
    found
}

/// Collects loop-keyword spans in WP traversal order (see
/// [`Output::fn_spans`]).
fn collect_loop_spans(stmts: &[cparser::TStmt], out: &mut Vec<ir::diag::Span>) {
    use cparser::TStmt;
    for s in stmts.iter().rev() {
        match s {
            TStmt::While { body, span, .. } => {
                out.push(*span);
                collect_loop_spans(body, out);
            }
            TStmt::DoWhile { body, span, .. } => {
                out.push(*span);
                // The loop's own body, then the unrolled first iteration.
                collect_loop_spans(body, out);
                collect_loop_spans(body, out);
            }
            TStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_loop_spans(then_branch, out);
                collect_loop_spans(else_branch, out);
            }
            TStmt::Block(b) => collect_loop_spans(b, out),
            _ => {}
        }
    }
}

/// Translates C source text through the full pipeline.
///
/// # Errors
///
/// Returns the first failing phase's [`Diag`].
pub fn translate(src: &str, opts: &Options) -> Result<Output, Diag> {
    let typed = cparser::parse_and_check(src)?;
    translate_program(&typed, opts)
}

/// Translates an already-typechecked program through the full pipeline,
/// scheduling the per-function phase work across [`Options::workers`]
/// threads (see the module docs for the determinism guarantee).
///
/// # Errors
///
/// As for [`translate`]. With multiple workers, errors of a phase are
/// reported for the first failing function in that phase's fixed order,
/// independent of thread interleaving.
pub fn translate_program(typed: &cparser::TProgram, opts: &Options) -> Result<Output, Diag> {
    crate::phase::run_pipeline(typed, opts, &crate::phase::ArtifactStore::new())
}
