//! Phase L2: control-flow abstraction and local-variable lifting.
//!
//! The L1 output is verbose: abrupt termination is encoded with exceptions
//! and the `global_exn_var` ghost variable, and every local lives in the
//! state. L2 produces the reader-friendly form of the paper's figures:
//!
//! * locals become lambda-bound variables (`do t ← gets …; …`),
//! * loops become `whileLoop` combinators whose iterator tuple carries
//!   exactly the locals the loop modifies (Fig 6),
//! * the `return`/`break`/`continue` exception dance is eliminated where
//!   control flow allows (type specialisation), and kept as tagged
//!   exceptions where it does not,
//! * trailing `if (c) return a; return b;` becomes
//!   `return (if c then a else b)` (so `max` comes out exactly as in
//!   Fig 2).
//!
//! Correctness: each L2 function is related to its L1 counterpart by a
//! `refines` theorem admitted via the kernel's `ExecTested` rule — a
//! randomized differential test over generated heaps and arguments (the
//! documented substitute for Isabelle's rewrite-rule proofs, DESIGN.md §2).

use std::collections::BTreeSet;

use cparser::typecheck::{ctype_to_ty, TExprKind, TFunDef, TProgram, TStmt};
use ir::diag::{Diag, DiagKind};
use ir::expr::Expr;
use ir::guard::GuardKind;
use ir::state::State;
use ir::ty::Ty;
use ir::update::Update;
use kernel::rules::refine;
use kernel::{CheckCtx, Thm};
use monadic::interp::MonadFault;
use monadic::{MonadicFn, Prog, ProgramCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simpl::stmt::SimplStmt;
use simpl::translate::FnTranslator;

/// Exception tag for `return`.
pub const TAG_RET: u32 = 0;
/// Exception tag for `break`.
pub const TAG_BRK: u32 = 1;
/// Exception tag for `continue`.
pub const TAG_CONT: u32 = 2;

/// An L2 diagnostic (phase `L2`, kind `Unsupported` unless noted).
fn l2_diag(msg: impl Into<String>) -> Diag {
    Diag::new(ir::diag::Phase::L2, DiagKind::Unsupported, msg)
}

fn err<T>(msg: impl Into<String>) -> Result<T, Diag> {
    Err(l2_diag(msg))
}

type R<T> = Result<T, Diag>;

/// Translates a typed program to L2 and proves each function refines its L1
/// counterpart.
///
/// # Errors
///
/// Returns an error when translation fails or a differential test finds a
/// refinement violation (which would indicate a driver bug).
pub fn l2_program(
    cx: &CheckCtx,
    tp: &TProgram,
    l1ctx: &ProgramCtx,
    trials: u32,
    seed: u64,
) -> R<(ProgramCtx, Vec<(String, Thm)>)> {
    let mut l2ctx = ProgramCtx {
        tenv: l1ctx.tenv.clone(),
        globals: l1ctx.globals.clone(),
        ..ProgramCtx::default()
    };
    for f in &tp.functions {
        let fun = l2_function(tp, f)?;
        l2ctx.fns.insert(f.name.clone(), fun);
    }
    // Differential refinement theorems, one per function.
    let heap_types = crate::testing::heap_types_of(&l1ctx.tenv, l1ctx);
    let mut thms = Vec::new();
    for f in &tp.functions {
        let thm = l2_fn_theorem(cx, &l2ctx, l1ctx, &heap_types, &f.name, trials, seed)?;
        thms.push((f.name.clone(), thm));
    }
    Ok((l2ctx, thms))
}

/// The L2 `refines` theorem of one function: an `ExecTested` certificate
/// that the L2 body refines the L1 body, validated differentially. The RNG
/// stream is derived from `(seed, name)` so the theorem statement (which
/// records the seed) is independent of the order functions are processed
/// in — sequential and parallel pipelines produce identical theorems.
///
/// # Errors
///
/// Returns an error when a differential trial finds a refinement violation
/// (which would indicate a driver bug).
pub fn l2_fn_theorem(
    cx: &CheckCtx,
    l2ctx: &ProgramCtx,
    l1ctx: &ProgramCtx,
    heap_types: &[Ty],
    name: &str,
    trials: u32,
    seed: u64,
) -> R<Thm> {
    let fn_seed = crate::pipeline::derive_seed(seed, name);
    let l2b = &l2ctx.fns[name].body;
    let l1b = &l1ctx.fns[name].body;
    refine::exec_tested(cx, l2b, l1b, trials, fn_seed, || {
        test_fn_refines(l2ctx, l1ctx, name, heap_types, trials, fn_seed)
            .map_err(|m| Diag::new(ir::diag::Phase::L2, DiagKind::Testing, m))
    })
    .map_err(|e| {
        Diag::new(
            ir::diag::Phase::L2,
            DiagKind::Testing,
            format!("{name}: {e}"),
        )
        .with_function(name)
    })
}

/// Differential test: the L2 function refines the L1 function (equal
/// results and equal heap/global state whenever L2 does not fail).
fn test_fn_refines(
    l2ctx: &ProgramCtx,
    l1ctx: &ProgramCtx,
    fname: &str,
    heap_types: &[Ty],
    trials: u32,
    seed: u64,
) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = &l1ctx.fns[fname];
    let void = f.ret_ty == Ty::Unit;
    for i in 0..trials {
        let conc = crate::testing::gen_state(&mut rng, &l1ctx.tenv, heap_types, 4);
        let mut st = State::Conc(conc);
        for (g, v) in &l1ctx.globals {
            st.set_global(g, v.clone());
        }
        let args: Vec<_> = f
            .params
            .iter()
            .map(|(_, t)| crate::testing::random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let r2 = monadic::exec_fn(l2ctx, fname, &args, st.clone(), 100_000);
        let r2 = match r2 {
            Ok(pair) => pair,
            Err(MonadFault::Failure(_) | MonadFault::OutOfFuel) => continue,
            Err(e) => return Err(format!("trial {i}: L2 stuck: {e}")),
        };
        let r1 = match monadic::exec_fn(l1ctx, fname, &args, st, 100_000) {
            Ok(pair) => pair,
            // L1 spends more fuel per call (locals live in the state), so
            // it can time out where L2 finished: inconclusive, not a
            // violation.
            Err(MonadFault::OutOfFuel) => continue,
            Err(e) => return Err(format!("trial {i}: L1 fails ({e}) but L2 succeeds")),
        };
        let (v2, mut s2) = r2;
        let (v1, mut s1) = r1;
        if !void && v1 != v2 {
            return Err(format!("trial {i}: values differ: L1 {v1:?} vs L2 {v2:?}"));
        }
        // Locals are a calling-convention artefact; compare heap + globals.
        s1.swap_locals(std::collections::BTreeMap::new());
        s2.swap_locals(std::collections::BTreeMap::new());
        if s1 != s2 {
            return Err(format!("trial {i}: states differ after {fname}"));
        }
    }
    Ok(())
}

/// Translates one function to its L2 form.
///
/// # Errors
///
/// Returns an error on unsupported control-flow shapes.
pub fn l2_function(tp: &TProgram, f: &TFunDef) -> R<MonadicFn> {
    let ret_ty = ctype_to_ty(&f.ret);
    let body = normalize(&f.body);
    let direct = returns_only_in_tail(&body, true);
    let mut tr = L2Tr {
        fx: FnTranslator::new(tp, ret_ty.clone()),
        scope: f.params.iter().map(|(n, _)| n.clone()).collect(),
        locals_order: f.locals.iter().map(|(n, _)| n.clone()).collect(),
        direct,
        ret_void: ret_ty == Ty::Unit,
        tmp: 0,
    };
    // Non-void functions must return through an explicit `return`; falling
    // off the end is unreachable (`Fail`), whether or not control flow is
    // direct.
    let tail = if ret_ty == Ty::Unit {
        Prog::skip()
    } else {
        Prog::Fail
    };
    let mut prog = tr.tr_stmts(&body, tail, None)?;
    if !direct {
        // Early returns arrive as tagged exceptions.
        prog = Prog::Catch(
            ir::intern::Interned::new(prog),
            "·rv".to_owned(),
            ir::intern::Interned::new(Prog::ret(Expr::proj(1, Expr::var("·rv")))),
        );
    }
    let prog = tidy(&prog, &f.volatile_locals);
    // Guard simplification (the paper's Sec 2 phase): discharge guards the
    // decision procedures prove, and drop guards already established on
    // every path to this point.
    let var_tys: std::collections::HashMap<String, ir::ty::Ty> = f
        .locals
        .iter()
        .map(|(n, t)| (n.clone(), ctype_to_ty(t)))
        .collect();
    let prog = discharge_guards(&prog, &var_tys);
    let prog = dedup_guards(&prog, &mut std::collections::BTreeSet::new());
    Ok(MonadicFn {
        name: f.name.clone(),
        params: f
            .params
            .iter()
            .map(|(n, t)| (n.clone(), ctype_to_ty(t)))
            .collect(),
        ret_ty,
        frame: None,
        body: prog,
    })
}

// ---- control-flow analyses -------------------------------------------------

/// Pushes the continuation of an always-exiting `if` into its empty `else`
/// branch, recursively — this is what turns `if (c) return b; return a;`
/// into a two-armed conditional.
fn normalize(stmts: &[TStmt]) -> Vec<TStmt> {
    let mut out: Vec<TStmt> = Vec::new();
    let mut i = 0;
    while i < stmts.len() {
        match &stmts[i] {
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } if else_branch.is_empty()
                && always_exits(then_branch)
                && i + 1 < stmts.len() =>
            {
                let rest = normalize(&stmts[i + 1..]);
                out.push(TStmt::If {
                    cond: cond.clone(),
                    then_branch: normalize(then_branch),
                    else_branch: rest,
                    span: *span,
                });
                return out;
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => out.push(TStmt::If {
                cond: cond.clone(),
                then_branch: normalize(then_branch),
                else_branch: normalize(else_branch),
                span: *span,
            }),
            TStmt::While { cond, body, span } => out.push(TStmt::While {
                cond: cond.clone(),
                body: normalize(body),
                span: *span,
            }),
            TStmt::DoWhile { body, cond, span } => out.push(TStmt::DoWhile {
                body: normalize(body),
                cond: cond.clone(),
                span: *span,
            }),
            TStmt::Block(b) => out.push(TStmt::Block(normalize(b))),
            s => out.push(s.clone()),
        }
        i += 1;
    }
    out
}

/// Does every control path through the block end in `return`/`break`/
/// `continue`?
fn always_exits(stmts: &[TStmt]) -> bool {
    match stmts.last() {
        Some(TStmt::Return(..) | TStmt::Break(_) | TStmt::Continue(_)) => true,
        Some(TStmt::If {
            then_branch,
            else_branch,
            ..
        }) => always_exits(then_branch) && always_exits(else_branch),
        Some(TStmt::Block(b)) => always_exits(b),
        _ => false,
    }
}

/// Do all `return`s occur in tail position (so the function can be
/// translated without the exception encoding)?
fn returns_only_in_tail(stmts: &[TStmt], tail: bool) -> bool {
    for (i, s) in stmts.iter().enumerate() {
        let is_last = i + 1 == stmts.len();
        match s {
            TStmt::Return(..)
                if !(tail && is_last) => {
                    return false;
                }
            TStmt::If {
                then_branch,
                else_branch,
                ..
            }
                if (!returns_only_in_tail(then_branch, tail && is_last)
                    || !returns_only_in_tail(else_branch, tail && is_last))
                => {
                    return false;
                }
            TStmt::While { body, .. } | TStmt::DoWhile { body, .. }
                if contains_return(body) => {
                    return false;
                }
            TStmt::Block(b)
                if !returns_only_in_tail(b, tail && is_last) => {
                    return false;
                }
            _ => {}
        }
    }
    true
}

fn contains_return(stmts: &[TStmt]) -> bool {
    stmts.iter().any(|s| match s {
        TStmt::Return(..) => true,
        TStmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_return(then_branch) || contains_return(else_branch),
        TStmt::While { body, .. } | TStmt::DoWhile { body, .. } => contains_return(body),
        TStmt::Block(b) => contains_return(b),
        _ => false,
    })
}

fn contains_break_or_continue(stmts: &[TStmt]) -> (bool, bool) {
    let mut brk = false;
    let mut cont = false;
    fn walk(stmts: &[TStmt], brk: &mut bool, cont: &mut bool) {
        for s in stmts {
            match s {
                TStmt::Break(_) => *brk = true,
                TStmt::Continue(_) => *cont = true,
                TStmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, brk, cont);
                    walk(else_branch, brk, cont);
                }
                TStmt::Block(b) => walk(b, brk, cont),
                // Nested loops capture their own break/continue.
                TStmt::While { .. } | TStmt::DoWhile { .. } => {}
                _ => {}
            }
        }
    }
    walk(stmts, &mut brk, &mut cont);
    (brk, cont)
}

/// Locals (by unique name) assigned anywhere in the block, in `order`.
fn assigned_locals(stmts: &[TStmt], order: &[String], scope: &BTreeSet<String>) -> Vec<String> {
    let mut set = BTreeSet::new();
    fn walk(stmts: &[TStmt], set: &mut BTreeSet<String>) {
        for s in stmts {
            match s {
                TStmt::Assign { lhs, .. } => {
                    if let TExprKind::Local(n) = &lhs.kind {
                        set.insert(n.clone());
                    }
                    // Member/index chains rooted at a local also assign it.
                    let mut cur = lhs;
                    while let TExprKind::Member(inner, _) | TExprKind::Index(inner, _) = &cur.kind
                    {
                        cur = inner;
                    }
                    if let TExprKind::Local(n) = &cur.kind {
                        set.insert(n.clone());
                    }
                }
                TStmt::Decl { name, .. } => {
                    set.insert(name.clone());
                }
                TStmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, set);
                    walk(else_branch, set);
                }
                TStmt::While { body, .. } | TStmt::DoWhile { body, .. } => walk(body, set),
                TStmt::Block(b) => walk(b, set),
                _ => {}
            }
        }
    }
    walk(stmts, &mut set);
    order
        .iter()
        .filter(|n| set.contains(*n) && scope.contains(*n))
        .cloned()
        .collect()
}

// ---- the translator ---------------------------------------------------------

struct LoopCtx {
    vars: Vec<String>,
}

struct L2Tr<'a> {
    fx: FnTranslator<'a>,
    /// Locals currently in scope (params + declarations seen so far).
    scope: BTreeSet<String>,
    /// Declaration order of all locals (from the typechecker).
    locals_order: Vec<String>,
    direct: bool,
    ret_void: bool,
    tmp: u64,
}

/// A converted pre-step: a guard, a bound call, or a hoisted state read.
enum PreStep {
    Guard(GuardKind, Expr),
    Call { tmp: String, prog: Prog },
    Gets { tmp: String, expr: Expr },
}

impl<'a> L2Tr<'a> {
    fn fresh(&mut self) -> String {
        self.tmp += 1;
        format!("·t{}", self.tmp)
    }

    /// Converts Simpl pre-statements (hoisted calls wrapped in guards) into
    /// L2 pre-steps.
    fn convert_pre(&mut self, pre: Vec<SimplStmt>) -> R<Vec<PreStep>> {
        let mut out = Vec::new();
        for s in pre {
            self.convert_pre_one(s, &mut out)?;
        }
        Ok(out)
    }

    fn convert_pre_one(&mut self, s: SimplStmt, out: &mut Vec<PreStep>) -> R<()> {
        match s {
            SimplStmt::Guard(k, g, inner) => {
                out.push(PreStep::Guard(k, delocal(&g)));
                self.convert_pre_one(*inner, out)
            }
            SimplStmt::Call {
                fname,
                args,
                ret_local,
            } => {
                let tmp = ret_local.unwrap_or_else(|| self.fresh());
                let args = self.hoist_heap_args(args.iter().map(delocal).collect(), out);
                out.push(PreStep::Call {
                    tmp,
                    prog: Prog::Call { fname, args },
                });
                Ok(())
            }
            SimplStmt::Skip => Ok(()),
            other => err(format!("unexpected hoisted statement: {other:?}")),
        }
    }

    /// Heap-reading call arguments are hoisted into `gets` binds so that
    /// call nodes stay heap-free (a requirement of the heap-abstraction
    /// call rule).
    fn hoist_heap_args(&mut self, args: Vec<Expr>, out: &mut Vec<PreStep>) -> Vec<Expr> {
        args.into_iter()
            .map(|a| {
                if a.reads_state() {
                    let tmp = self.fresh();
                    out.push(PreStep::Gets {
                        tmp: tmp.clone(),
                        expr: a,
                    });
                    Expr::var(tmp)
                } else {
                    a
                }
            })
            .collect()
    }

    /// Wraps `body` in the pre-steps (binds and guards), innermost last.
    /// Trivially-true guards (e.g. division by a non-zero literal) are
    /// discharged by the simplifier here — the L2 guard simplification of
    /// the paper's Sec 2 phase list.
    fn with_pre(&self, pre: Vec<PreStep>, body: Prog) -> Prog {
        pre.into_iter().rev().fold(body, |acc, step| match step {
            PreStep::Guard(_, g)
                if solver::simplify::simplify(&g).is_true_lit() =>
            {
                acc
            }
            PreStep::Guard(k, g) => Prog::then(Prog::Guard(k, g), acc),
            PreStep::Call { tmp, prog } => Prog::bind(prog, tmp, acc),
            PreStep::Gets { tmp, expr } => Prog::bind(Prog::Gets(expr), tmp, acc),
        })
    }

    /// Translates an expression to a value-yielding program plus pre-steps.
    fn value(&mut self, e: &cparser::typecheck::TExpr) -> R<(Vec<PreStep>, Expr)> {
        let mut pre = Vec::new();
        let tr = self
            .fx
            .rvalue(e, &mut pre)
            .map_err(|e| e.in_phase(ir::diag::Phase::L2))?;
        let mut steps = self.convert_pre(pre)?;
        for (k, g) in tr.guards {
            steps.push(PreStep::Guard(k, delocal(&g)));
        }
        Ok((steps, delocal(&tr.expr)))
    }

    /// Translates a condition to a boolean expression plus pre-steps.
    fn condition(&mut self, e: &cparser::typecheck::TExpr) -> R<(Vec<PreStep>, Expr)> {
        let mut pre = Vec::new();
        let tr = self
            .fx
            .cond(e, &mut pre)
            .map_err(|e| e.in_phase(ir::diag::Phase::L2))?;
        let mut steps = self.convert_pre(pre)?;
        for (k, g) in tr.guards {
            steps.push(PreStep::Guard(k, delocal(&g)));
        }
        Ok((steps, delocal(&tr.expr)))
    }

    /// The program yielding a value expression (a `gets` when it reads the
    /// state, a `return` otherwise).
    fn yield_value(e: Expr) -> Prog {
        if e.reads_state() {
            Prog::Gets(e)
        } else {
            Prog::Return(e)
        }
    }

    fn tr_stmts(&mut self, stmts: &[TStmt], tail: Prog, lp: Option<&LoopCtx>) -> R<Prog> {
        let Some((first, rest)) = stmts.split_first() else {
            return Ok(tail);
        };
        let is_last = rest.is_empty();
        match first {
            TStmt::Decl { name, ty, init, .. } => {
                self.scope.insert(name.clone());
                let (steps, e) = match init {
                    Some(e) => self.value(e)?,
                    None => {
                        let zero =
                            ir::value::Value::zero_of(&ctype_to_ty(ty), &self.fx_tenv());
                        (Vec::new(), Expr::Lit(zero))
                    }
                };
                let k = self.tr_stmts(rest, tail, lp)?;
                Ok(self.with_pre(steps, Prog::bind(Self::yield_value(e), name.clone(), k)))
            }
            TStmt::Assign { lhs, rhs, .. } => {
                let (mut steps, re) = self.value(rhs)?;
                let mut pre_lhs = Vec::new();
                let (lguards, upd) = self
                    .fx
                    .lvalue_update(lhs, re, &mut pre_lhs)
                    .map_err(|e| e.in_phase(ir::diag::Phase::L2))?;
                steps.extend(self.convert_pre(pre_lhs)?);
                for (k, g) in lguards {
                    steps.push(PreStep::Guard(k, delocal(&g)));
                }
                let k = self.tr_stmts(rest, tail, lp)?;
                let prog = match upd {
                    Update::Local(n, e) => {
                        Prog::bind(Self::yield_value(delocal(&e)), n, k)
                    }
                    other => Prog::then(Prog::Modify(delocal_update(&other)), k),
                };
                Ok(self.with_pre(steps, prog))
            }
            TStmt::ExprCall(e, _) => {
                let TExprKind::Call(name, args) = &e.kind else {
                    return err("expression statement is not a call");
                };
                let mut pre = Vec::new();
                let (guards, arg_exprs) = self
                    .fx
                    .call_args(args, &mut pre)
                    .map_err(|e| e.in_phase(ir::diag::Phase::L2))?;
                let mut steps = self.convert_pre(pre)?;
                for (k, g) in guards {
                    steps.push(PreStep::Guard(k, delocal(&g)));
                }
                let hoisted =
                    self.hoist_heap_args(arg_exprs.iter().map(delocal).collect(), &mut steps);
                let call = Prog::Call {
                    fname: name.clone(),
                    args: hoisted,
                };
                let k = self.tr_stmts(rest, tail, lp)?;
                Ok(self.with_pre(steps, Prog::then(call, k)))
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let (steps, c) = self.condition(cond)?;
                if is_last {
                    // Tail position: both branches continue with the tail.
                    let t = self.tr_stmts(then_branch, tail.clone(), lp)?;
                    let e = self.tr_stmts(else_branch, tail, lp)?;
                    return Ok(self.with_pre(steps, Prog::cond(c, t, e)));
                }
                // Phi-style: branches yield the locals they may change.
                let mut both = then_branch.clone();
                both.extend(else_branch.iter().cloned());
                let vars = assigned_locals(&both, &self.locals_order, &self.scope);
                let k = self.tr_stmts(rest, tail, lp)?;
                if vars.is_empty() {
                    let t = self.tr_stmts(then_branch, Prog::skip(), lp)?;
                    let e = self.tr_stmts(else_branch, Prog::skip(), lp)?;
                    return Ok(self.with_pre(steps, Prog::then(Prog::cond(c, t, e), k)));
                }
                let yield_vars = Prog::ret(pack_expr(&vars));
                let t = self.tr_stmts(then_branch, yield_vars.clone(), lp)?;
                let e = self.tr_stmts(else_branch, yield_vars, lp)?;
                let joined = if vars.len() == 1 {
                    Prog::bind(Prog::cond(c, t, e), vars[0].clone(), k)
                } else {
                    Prog::bind_tuple(Prog::cond(c, t, e), vars.clone(), k)
                };
                Ok(self.with_pre(steps, joined))
            }
            TStmt::While { cond, body, .. } => {
                let (loop_prog, vars) = self.tr_loop(cond, body, None)?;
                let k = self.tr_stmts(rest, tail, lp)?;
                Ok(join_loop(loop_prog, &vars, k))
            }
            TStmt::DoWhile { body, cond, .. } => {
                let (loop_prog, vars) = self.tr_loop(cond, body, Some(body))?;
                let k = self.tr_stmts(rest, tail, lp)?;
                Ok(join_loop(loop_prog, &vars, k))
            }
            TStmt::Return(value, _) => {
                let (steps, e) = match value {
                    Some(e) => self.value(e)?,
                    None => (Vec::new(), Expr::unit()),
                };
                let prog = if self.direct {
                    if self.ret_void && value.is_none() {
                        Prog::skip()
                    } else {
                        Prog::Return(e)
                    }
                } else {
                    Prog::Throw(Expr::Tuple(vec![Expr::u32(TAG_RET), e]))
                };
                // Anything after a return is dead code.
                Ok(self.with_pre(steps, prog))
            }
            TStmt::Break(_) => {
                let Some(l) = lp else {
                    return err("break outside a loop");
                };
                Ok(Prog::Throw(Expr::Tuple(vec![
                    Expr::u32(TAG_BRK),
                    pack_expr(&l.vars),
                ])))
            }
            TStmt::Continue(_) => {
                let Some(l) = lp else {
                    return err("continue outside a loop");
                };
                Ok(Prog::Throw(Expr::Tuple(vec![
                    Expr::u32(TAG_CONT),
                    pack_expr(&l.vars),
                ])))
            }
            TStmt::Block(b) => {
                let mut combined: Vec<TStmt> = b.clone();
                // Keep block-scoping by flattening — names are unique.
                combined.extend(rest.iter().cloned());
                self.tr_stmts(&combined, tail, lp)
            }
        }
    }

    fn loop_vars(&self, body: &[TStmt]) -> Vec<String> {
        let vars = assigned_locals(body, &self.locals_order, &self.scope);
        if vars.is_empty() {
            vec!["_".to_owned()]
        } else {
            vars
        }
    }

    /// Translates a loop; `first` is `Some(body)` for do/while.
    /// Returns the loop program and its iterator variables.
    fn tr_loop(
        &mut self,
        cond: &cparser::typecheck::TExpr,
        body: &[TStmt],
        first: Option<&[TStmt]>,
    ) -> R<(Prog, Vec<String>)> {
        let vars = self.loop_vars(body);
        let dummy = vars == ["_".to_owned()];
        let (cond_steps, c) = self.condition(cond)?;
        // Condition guards must hold at every evaluation: before the loop
        // and at the end of each iteration.
        let cond_guards: Vec<(GuardKind, Expr)> = cond_steps
            .iter()
            .map(|s| match s {
                PreStep::Guard(k, g) => Ok((k.clone(), g.clone())),
                PreStep::Call { .. } | PreStep::Gets { .. } => {
                    err("calls in loop conditions are unsupported")
                }
            })
            .collect::<R<Vec<_>>>()?;

        let (has_brk, has_cont) = contains_break_or_continue(body);
        let lp = LoopCtx { vars: vars.clone() };

        // Body: run statements, then guard the next condition evaluation,
        // then yield the new iterator values.
        let mut body_tail = Prog::ret(if dummy {
            Expr::unit()
        } else {
            pack_expr(&vars)
        });
        for (k, g) in cond_guards.iter().rev() {
            body_tail = Prog::then(Prog::Guard(k.clone(), g.clone()), body_tail);
        }
        let mut body_prog = self.tr_stmts(body, body_tail.clone(), Some(&lp))?;
        if has_cont {
            body_prog = Prog::Catch(
                ir::intern::Interned::new(body_prog),
                "·e".to_owned(),
                ir::intern::Interned::new(Prog::cond(
                    Expr::eq(Expr::proj(0, Expr::var("·e")), Expr::u32(TAG_CONT)),
                    Prog::ret(Expr::proj(1, Expr::var("·e"))),
                    Prog::Throw(Expr::var("·e")),
                )),
            );
        }

        let init = if dummy {
            vec![Expr::unit()]
        } else {
            vars.iter().map(|v| Expr::var(v.clone())).collect()
        };
        let mut loop_prog = Prog::While {
            vars: vars.clone(),
            cond: c,
            body: ir::intern::Interned::new(body_prog.clone()),
            init,
        };
        // do/while: run the body once before the loop (its yielded values
        // seed the iterator).
        if let Some(first_body) = first {
            let mut first_prog = self.tr_stmts(first_body, body_tail, Some(&lp))?;
            if has_cont {
                first_prog = Prog::Catch(
                    ir::intern::Interned::new(first_prog),
                    "·e".to_owned(),
                    ir::intern::Interned::new(Prog::cond(
                        Expr::eq(Expr::proj(0, Expr::var("·e")), Expr::u32(TAG_CONT)),
                        Prog::ret(Expr::proj(1, Expr::var("·e"))),
                        Prog::Throw(Expr::var("·e")),
                    )),
                );
            }
            let mut inner = loop_prog;
            if let Prog::While { init, .. } = &mut inner {
                *init = if dummy {
                    vec![Expr::unit()]
                } else {
                    vars.iter().map(|v| Expr::var(v.clone())).collect()
                };
            }
            loop_prog = if dummy {
                Prog::then(first_prog, inner)
            } else if vars.len() == 1 {
                Prog::bind(first_prog, vars[0].clone(), inner)
            } else {
                Prog::bind_tuple(first_prog, vars.clone(), inner)
            };
        } else {
            // Pre-loop condition guards.
            for (k, g) in cond_guards.iter().rev() {
                loop_prog = Prog::then(Prog::Guard(k.clone(), g.clone()), loop_prog);
            }
        }
        if has_brk {
            loop_prog = Prog::Catch(
                ir::intern::Interned::new(loop_prog),
                "·e".to_owned(),
                ir::intern::Interned::new(Prog::cond(
                    Expr::eq(Expr::proj(0, Expr::var("·e")), Expr::u32(TAG_BRK)),
                    Prog::ret(Expr::proj(1, Expr::var("·e"))),
                    Prog::Throw(Expr::var("·e")),
                )),
            );
        }
        Ok((loop_prog, vars))
    }

    fn fx_tenv(&self) -> ir::ty::TypeEnv {
        // The type environment lives in the typed program the translator
        // borrows; locals need zero values of struct types occasionally.
        self.fx.tenv().clone()
    }
}

fn pack_expr(vars: &[String]) -> Expr {
    if vars.len() == 1 {
        Expr::var(vars[0].clone())
    } else {
        Expr::Tuple(vars.iter().map(|v| Expr::var(v.clone())).collect())
    }
}

fn join_loop(loop_prog: Prog, vars: &[String], k: Prog) -> Prog {
    if vars == ["_".to_owned()] {
        Prog::then(loop_prog, k)
    } else if vars.len() == 1 {
        Prog::bind(loop_prog, vars[0].clone(), k)
    } else {
        Prog::bind_tuple(loop_prog, vars.to_vec(), k)
    }
}

/// Replaces state-stored local reads by lambda-bound variable reads.
fn delocal(e: &Expr) -> Expr {
    e.map(&|x| match &x {
        Expr::Local(n) => Expr::Var(*n),
        _ => x,
    })
}

fn delocal_update(u: &Update) -> Update {
    u.map_exprs(&delocal)
}

/// Cosmetic post-pass: the rewrites that make the output match the paper's
/// figures (`condition (return a) (return b)` → `return (if …)`, unit-bind
/// cleanup, `v ← p; return v` → `p`). Bindings of names in `pinned`
/// (`volatile` locals) are never substituted away: their reads must stay
/// exactly where the source put them.
fn tidy(p: &Prog, pinned: &BTreeSet<String>) -> Prog {
    let q = tidy_once(p, pinned);
    if q == *p {
        q
    } else {
        tidy(&q, pinned)
    }
}

fn tidy_once(p: &Prog, pinned: &BTreeSet<String>) -> Prog {
    match p {
        Prog::Bind(l, v, r) => {
            let l = tidy_once(l, pinned);
            let r = tidy_once(r, pinned);
            // v ← return e; return v  →  return e
            if let Prog::Return(e) = &r {
                if *e == Expr::var(v.clone()) {
                    return l;
                }
            }
            // v ← return lit/var; r  →  r[v := e], substituting only the
            // free occurrences of v (binder-aware, capture-avoiding).
            // Volatile locals are pinned: their binding survives.
            if let Prog::Return(e) = &l {
                if matches!(e, Expr::Lit(_) | Expr::Var(_))
                    && v != "_"
                    && !pinned.contains(v)
                {
                    if let Some(substituted) = subst_free(&r, v, e) {
                        return tidy_once(&substituted, pinned);
                    }
                }
            }
            // _ ← return (); r  →  r
            if l == Prog::skip() {
                return r;
            }
            Prog::bind(l, v.clone(), r)
        }
        Prog::BindTuple(l, vs, r) => {
            Prog::bind_tuple(tidy_once(l, pinned), vs.clone(), tidy_once(r, pinned))
        }
        Prog::Condition(c, t, e) => {
            let t = tidy_once(t, pinned);
            let e = tidy_once(e, pinned);
            if let (Prog::Return(a), Prog::Return(b)) = (&t, &e) {
                return Prog::Return(Expr::ite(c.clone(), a.clone(), b.clone()));
            }
            if let (Prog::Gets(a), Prog::Gets(b)) = (&t, &e) {
                return Prog::Gets(Expr::ite(c.clone(), a.clone(), b.clone()));
            }
            Prog::cond(c.clone(), t, e)
        }
        Prog::Catch(l, v, r) => Prog::Catch(
            ir::intern::Interned::new(tidy_once(l, pinned)),
            v.clone(),
            ir::intern::Interned::new(tidy_once(r, pinned)),
        ),
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => Prog::While {
            vars: vars.clone(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(tidy_once(body, pinned)),
            init: init.clone(),
        },
        Prog::ExecConcrete(q) => {
            Prog::ExecConcrete(ir::intern::Interned::new(tidy_once(q, pinned)))
        }
        Prog::ExecAbstract(q) => {
            Prog::ExecAbstract(ir::intern::Interned::new(tidy_once(q, pinned)))
        }
        other => other.clone(),
    }
}

/// Drops guards that the solver proves outright (state-free, small goals
/// only — the analogue of Isabelle discharging `4 < 32`-style obligations
/// during translation).
fn discharge_guards(p: &Prog, var_tys: &std::collections::HashMap<String, ir::ty::Ty>) -> Prog {
    let rewrite = |q: &Prog| -> Option<Prog> {
        if let Prog::Guard(_, g) = q {
            if !g.reads_state() && g.term_size() <= 40
                && solver::decide(g, var_tys) == solver::Verdict::Valid {
                    return Some(Prog::skip());
                }
        }
        None
    };
    map_prog(p, &rewrite)
}

/// Structural map over programs (post-order), applying `f` where it yields
/// a replacement.
fn map_prog(p: &Prog, f: &impl Fn(&Prog) -> Option<Prog>) -> Prog {
    let rebuilt = match p {
        Prog::Bind(l, v, r) => Prog::bind(map_prog(l, f), v.clone(), map_prog(r, f)),
        Prog::BindTuple(l, vs, r) => {
            Prog::bind_tuple(map_prog(l, f), vs.clone(), map_prog(r, f))
        }
        Prog::Catch(l, v, r) => Prog::Catch(
            ir::intern::Interned::new(map_prog(l, f)),
            v.clone(),
            ir::intern::Interned::new(map_prog(r, f)),
        ),
        Prog::Condition(c, t, e) => Prog::cond(c.clone(), map_prog(t, f), map_prog(e, f)),
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => Prog::While {
            vars: vars.clone(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(map_prog(body, f)),
            init: init.clone(),
        },
        Prog::ExecConcrete(q) => Prog::ExecConcrete(ir::intern::Interned::new(map_prog(q, f))),
        Prog::ExecAbstract(q) => Prog::ExecAbstract(ir::intern::Interned::new(map_prog(q, f))),
        other => other.clone(),
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

/// Drops a guard when an identical, state-independent guard has already
/// executed on every path to it (guards are idempotent; state-free guard
/// expressions are only invalidated by rebinding one of their variables).
fn dedup_guards(p: &Prog, established: &mut std::collections::BTreeSet<String>) -> Prog {
    match p {
        Prog::Bind(l, v, r) => {
            // Is `l` a pure guard?
            if let Prog::Guard(k, g) = &**l {
                if v == "_" && !g.reads_state() {
                    let key = format!("{g:?}");
                    if established.contains(&key) {
                        return dedup_guards(r, established);
                    }
                    established.insert(key);
                    return Prog::bind(
                        Prog::Guard(k.clone(), g.clone()),
                        "_",
                        dedup_guards(r, established),
                    );
                }
            }
            let l2 = dedup_guards(l, &mut established.clone());
            // Rebinding v invalidates guards mentioning it.
            established.retain(|key| !key.contains(&format!("Var(\"{v}\")")));
            Prog::bind(l2, v.clone(), dedup_guards(r, established))
        }
        Prog::BindTuple(l, vs, r) => {
            let l2 = dedup_guards(l, &mut established.clone());
            for v in vs {
                established.retain(|key| !key.contains(&format!("Var(\"{v}\")")));
            }
            Prog::bind_tuple(l2, vs.clone(), dedup_guards(r, established))
        }
        Prog::Condition(c, t, e) => Prog::cond(
            c.clone(),
            dedup_guards(t, &mut established.clone()),
            dedup_guards(e, &mut established.clone()),
        ),
        Prog::Catch(l, v, r) => Prog::Catch(
            ir::intern::Interned::new(dedup_guards(l, &mut established.clone())),
            v.clone(),
            ir::intern::Interned::new(dedup_guards(r, &mut std::collections::BTreeSet::new())),
        ),
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => Prog::While {
            vars: vars.clone(),
            cond: cond.clone(),
            body: ir::intern::Interned::new(dedup_guards(body, &mut std::collections::BTreeSet::new())),
            init: init.clone(),
        },
        other => other.clone(),
    }
}

/// Capture-avoiding substitution of the *free* occurrences of variable `v`
/// by expression `e`. Returns `None` when a binder would capture a free
/// variable of `e` (the rewrite is then skipped).
fn subst_free(p: &Prog, v: &str, e: &Expr) -> Option<Prog> {
    let efv = e.free_vars();
    fn go(p: &Prog, v: &str, e: &Expr, efv: &std::collections::BTreeSet<String>) -> Option<Prog> {
        let subst_expr = |x: &Expr| x.subst_var(v, e);
        Some(match p {
            Prog::Return(a) => Prog::Return(subst_expr(a)),
            Prog::Gets(a) => Prog::Gets(subst_expr(a)),
            Prog::Throw(a) => Prog::Throw(subst_expr(a)),
            Prog::Guard(k, a) => Prog::Guard(k.clone(), subst_expr(a)),
            Prog::Modify(u) => Prog::Modify(u.map_exprs(&subst_expr)),
            Prog::Fail => Prog::Fail,
            Prog::Bind(l, u, r) => {
                let l2 = go(l, v, e, efv)?;
                let r2 = if u == v {
                    (**r).clone() // v shadowed: stop
                } else if efv.contains(u) {
                    return None; // capture
                } else {
                    go(r, v, e, efv)?
                };
                Prog::bind(l2, u.clone(), r2)
            }
            Prog::BindTuple(l, us, r) => {
                let l2 = go(l, v, e, efv)?;
                let r2 = if us.iter().any(|u| u == v) {
                    (**r).clone()
                } else if us.iter().any(|u| efv.contains(u)) {
                    return None;
                } else {
                    go(r, v, e, efv)?
                };
                Prog::bind_tuple(l2, us.clone(), r2)
            }
            Prog::Catch(l, u, r) => {
                let l2 = go(l, v, e, efv)?;
                let r2 = if u == v {
                    (**r).clone()
                } else if efv.contains(u) {
                    return None;
                } else {
                    go(r, v, e, efv)?
                };
                Prog::Catch(ir::intern::Interned::new(l2), u.clone(), ir::intern::Interned::new(r2))
            }
            Prog::Condition(c, t, f2) => Prog::cond(
                subst_expr(c),
                go(t, v, e, efv)?,
                go(f2, v, e, efv)?,
            ),
            Prog::While {
                vars,
                cond,
                body,
                init,
            } => {
                let init2: Vec<Expr> = init.iter().map(subst_expr).collect();
                let (cond2, body2) = if vars.iter().any(|u| u == v) {
                    (cond.clone(), (**body).clone()) // shadowed inside
                } else if vars.iter().any(|u| efv.contains(u)) {
                    return None;
                } else {
                    (subst_expr(cond), go(body, v, e, efv)?)
                };
                Prog::While {
                    vars: vars.clone(),
                    cond: cond2,
                    body: ir::intern::Interned::new(body2),
                    init: init2,
                }
            }
            Prog::Call { fname, args } => Prog::Call {
                fname: fname.clone(),
                args: args.iter().map(subst_expr).collect(),
            },
            Prog::ExecConcrete(q) => Prog::ExecConcrete(ir::intern::Interned::new(go(q, v, e, efv)?)),
            Prog::ExecAbstract(q) => Prog::ExecAbstract(ir::intern::Interned::new(go(q, v, e, efv)?)),
        })
    }
    go(p, v, e, &efv)
}

/// Does the program rebind `name` anywhere (so substitution would capture)?
#[allow(dead_code)]
fn binds_name(p: &Prog, name: &str) -> bool {
    match p {
        Prog::Bind(l, v, r) | Prog::Catch(l, v, r) => {
            v == name || binds_name(l, name) || binds_name(r, name)
        }
        Prog::BindTuple(l, vs, r) => {
            vs.iter().any(|v| v == name) || binds_name(l, name) || binds_name(r, name)
        }
        Prog::Condition(_, t, e) => binds_name(t, name) || binds_name(e, name),
        Prog::While { vars, body, .. } => {
            vars.iter().any(|v| v == name) || binds_name(body, name)
        }
        Prog::ExecConcrete(q) | Prog::ExecAbstract(q) => binds_name(q, name),
        _ => false,
    }
}
