//! Random program-state generation for the differential refinement
//! validators.
//!
//! Generates concrete byte-level states populated with tagged heap objects
//! whose pointer fields point at each other (or NULL), so that
//! pointer-chasing code (list reversal, Schorr-Waite) explores non-trivial
//! shapes, plus random argument values whose pointer arguments hit the
//! allocated objects.

use rand::rngs::StdRng;
use rand::Rng;

use ir::state::ConcState;
use ir::ty::{Signedness, Ty, TypeEnv};
use ir::value::{Ptr, Value};
use ir::word::Word;

/// Base address of generated objects (each object slot is 0x100 apart).
pub const OBJ_BASE: u64 = 0x1000;
/// Spacing between generated objects.
pub const OBJ_STRIDE: u64 = 0x100;

/// Generates a concrete state with `n` objects of each of the given heap
/// types, randomly initialised; pointer fields point at allocated objects
/// of the right type or NULL.
#[must_use]
pub fn gen_state(rng: &mut StdRng, tenv: &TypeEnv, heap_types: &[Ty], n: usize) -> ConcState {
    let mut st = ConcState::default();
    // Pre-compute the addresses each type's objects will live at.
    let mut addrs_of: std::collections::BTreeMap<Ty, Vec<u64>> = Default::default();
    let mut next = OBJ_BASE;
    for ty in heap_types {
        let mut addrs = Vec::new();
        for _ in 0..n {
            addrs.push(next);
            next += OBJ_STRIDE;
        }
        addrs_of.insert(ty.clone(), addrs);
    }
    for ty in heap_types {
        for addr in addrs_of[ty].clone() {
            let v = random_object(rng, tenv, ty, &addrs_of);
            st.mem.alloc(addr, &v, tenv).expect("generated object encodes");
        }
    }
    st
}

/// A random pointer into the allocated objects of `ty` (sometimes NULL).
#[must_use]
pub fn random_ptr_into(
    rng: &mut StdRng,
    ty: &Ty,
    addrs_of: &std::collections::BTreeMap<Ty, Vec<u64>>,
) -> Ptr {
    let addrs = addrs_of.get(ty).map(Vec::as_slice).unwrap_or(&[]);
    if addrs.is_empty() || rng.gen_bool(0.3) {
        Ptr::null(ty.clone())
    } else {
        Ptr::new(addrs[rng.gen_range(0..addrs.len())], ty.clone())
    }
}

fn random_object(
    rng: &mut StdRng,
    tenv: &TypeEnv,
    ty: &Ty,
    addrs_of: &std::collections::BTreeMap<Ty, Vec<u64>>,
) -> Value {
    match ty {
        Ty::Word(w, s) => {
            let bits = if rng.gen_bool(0.5) {
                rng.gen_range(0..64)
            } else {
                rng.gen()
            };
            Value::Word(Word::new(bits, *w, *s))
        }
        Ty::Ptr(p) => Value::Ptr(random_ptr_into(rng, p, addrs_of)),
        Ty::Struct(name) => {
            let def = tenv.struct_def(name).expect("struct defined");
            let fields = def
                .fields
                .clone()
                .into_iter()
                .map(|f| {
                    let v = random_object(rng, tenv, &f.ty, addrs_of);
                    (f.name, v)
                })
                .collect();
            Value::Struct(name.clone(), fields)
        }
        Ty::Bool => Value::Bool(rng.gen()),
        other => Value::zero_of(other, tenv),
    }
}

/// Random argument for a parameter type; pointers land on generated object
/// slots (valid with high probability) or NULL.
#[must_use]
pub fn random_arg(rng: &mut StdRng, ty: &Ty, heap_types: &[Ty], n: usize) -> Value {
    match ty {
        Ty::Ptr(p) => {
            // Reconstruct the deterministic address layout of `gen_state`.
            let mut next = OBJ_BASE;
            for ht in heap_types {
                if ht == &**p {
                    break;
                }
                next += OBJ_STRIDE * n as u64;
            }
            if rng.gen_bool(0.25) {
                Value::Ptr(Ptr::null((**p).clone()))
            } else {
                let k = rng.gen_range(0..n.max(1)) as u64;
                Value::Ptr(Ptr::new(next + k * OBJ_STRIDE, (**p).clone()))
            }
        }
        Ty::Word(w, Signedness::Unsigned) => {
            Value::Word(Word::new(rng.gen_range(0..64), *w, Signedness::Unsigned))
        }
        Ty::Word(w, Signedness::Signed) => Value::Word(Word::of_int(
            &bignum::Int::from(rng.gen_range(-40i64..40)),
            *w,
            Signedness::Signed,
        )),
        other => Value::zero_of(other, &TypeEnv::new()),
    }
}

/// The heap types a typed program accesses (pointee types of all pointer
/// types appearing anywhere) — used both by state generation and by the
/// heap-abstraction engine's `abs_globals` construction.
#[must_use]
pub fn heap_types_of(tenv: &TypeEnv, fns: &monadic::ProgramCtx) -> Vec<Ty> {
    let mut out = std::collections::BTreeSet::new();
    for f in fns.fns.values() {
        collect_prog_heap_types(&f.body, &mut out);
        for (_, t) in &f.params {
            if let Ty::Ptr(p) = t {
                out.insert((**p).clone());
            }
        }
    }
    // Include field pointee types of known structs (next pointers etc.).
    for s in tenv.structs() {
        for f in &s.fields {
            if let Ty::Ptr(p) = &f.ty {
                out.insert((**p).clone());
            }
        }
    }
    out.retain(|t| !matches!(t, Ty::Unit));
    out.into_iter().collect()
}

fn collect_prog_heap_types(p: &monadic::Prog, out: &mut std::collections::BTreeSet<Ty>) {
    p.visit_exprs(&mut |e| {
        e.visit(&mut |sub| {
            if let ir::expr::Expr::ReadHeap(t, _) | ir::expr::Expr::IsValid(t, _) = sub {
                out.insert(t.clone());
            }
        });
    });
    // Heap updates carry their type directly.
    collect_updates(p, out);
}

fn collect_updates(p: &monadic::Prog, out: &mut std::collections::BTreeSet<Ty>) {
    use monadic::Prog;
    match p {
        Prog::Modify(ir::update::Update::Heap(t, ..)) => {
            out.insert(t.clone());
        }
        Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
            collect_updates(l, out);
            collect_updates(r, out);
        }
        Prog::Condition(_, t, e) => {
            collect_updates(t, out);
            collect_updates(e, out);
        }
        Prog::While { body, .. } => collect_updates(body, out),
        Prog::ExecConcrete(q) | Prog::ExecAbstract(q) => collect_updates(q, out),
        _ => {}
    }
}

/// End-to-end differential refinement check between the Simpl (parser)
/// level and the final WA output of a pipeline run: whenever the abstract
/// run succeeds normally, the concrete run must succeed with the related
/// result and an equal lifted heap. Returns the number of decided trials.
///
/// # Panics
///
/// Panics on a refinement violation.
pub fn check_e2e_refinement(
    out: &crate::Output,
    fname: &str,
    heap_types: &[Ty],
    trials: u32,
    seed: u64,
) -> u32 {
    use ir::state::State;
    use monadic::MonadResult;
    let mut rng = rand::SeedableRng::seed_from_u64(seed);
    let f = out.wa.function(fname).expect("function exists");
    let simpl_f = out.simpl.function(fname).expect("function exists");
    let mut decided = 0;
    for i in 0..trials {
        let conc = gen_state(&mut rng, &out.simpl.tenv, heap_types, 4);
        let args: Vec<Value> = simpl_f
            .params
            .iter()
            .map(|(_, t)| random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let abs_args: Vec<Value> = args
            .iter()
            .zip(&simpl_f.params)
            .map(|(v, (_, t))| {
                kernel::AbsFun::for_ty(t).apply(v).expect("abstractable argument")
            })
            .collect();
        let abs_state =
            State::Abs(heapmodel::lift_state(&conc, &out.simpl.tenv, heap_types));
        let (abs_val, abs_final) =
            match monadic::exec_fn(&out.wa, fname, &abs_args, abs_state, 400_000) {
                Ok((MonadResult::Normal(v), st)) => (v, st),
                _ => continue,
            };
        let (conc_val, conc_final) = simpl::exec_fn(
            &out.simpl,
            fname,
            &args,
            State::Conc(conc),
            400_000,
        )
        .unwrap_or_else(|e| panic!("{fname} trial {i}: concrete faults: {e}"));
        let expect = match (&conc_val, &f.ret_ty) {
            (Value::Word(w), Ty::Nat) => Value::Nat(w.unat()),
            (Value::Word(w), Ty::Int) => Value::Int(w.sint()),
            (other, _) => other.clone(),
        };
        assert_eq!(abs_val, expect, "{fname} trial {i}: results unrelated");
        let State::Conc(cf) = conc_final else { unreachable!() };
        let lifted = heapmodel::lift_state(&cf, &out.simpl.tenv, heap_types);
        let State::Abs(af) = abs_final else { unreachable!() };
        assert_eq!(lifted.heaps, af.heaps, "{fname} trial {i}: heaps differ");
        decided += 1;
    }
    decided
}
