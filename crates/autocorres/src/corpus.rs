//! Corpus sweep: point the pipeline at a directory of real-world `.c`
//! files and report, per function, how far it got.
//!
//! The paper's evaluation (Sec 5) runs AutoCorres over existing code
//! bases rather than hand-picked examples; this module is the analogue.
//! [`sweep`] walks every `*.c` file in a directory (sorted, so the report
//! is deterministic), pushes each through [`translate`], replays each
//! function's refinement theorems through the independent kernel checker,
//! and tallies the abstract interpreter's guard discharges.
//!
//! A file the frontend rejects is *not* an error of the sweep: the table
//! records the structured [`Diag`] so a run over an unvetted corpus shows
//! exactly where the supported subset ends. The sweep itself only fails
//! on I/O problems (missing directory, unreadable file).

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use ir::diag::Diag;

use crate::{translate, Options};

/// How far one function got through the pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FnStatus {
    /// Translated to WA and every refinement theorem (L1/L2/HL/WA)
    /// replayed through the kernel checker.
    Proved,
    /// Translated, but the checker rejected a theorem — always a pipeline
    /// bug, never a property of the input program.
    CheckFailed(String),
}

impl fmt::Display for FnStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnStatus::Proved => f.write_str("proved"),
            FnStatus::CheckFailed(e) => write!(f, "check failed: {e}"),
        }
    }
}

/// One function's row in the corpus table.
#[derive(Clone, Debug)]
pub struct FnReport {
    /// The function name.
    pub function: String,
    /// Reachable guards the abstract interpreter saw (0 with
    /// [`Options::no_absint`]).
    pub guards: usize,
    /// Guards it proved true, each backed by an `absint_discharge`
    /// theorem.
    pub discharged: usize,
    /// Final pipeline status.
    pub status: FnStatus,
}

/// Outcome of the pipeline on one corpus file.
#[derive(Clone, Debug)]
pub enum FileOutcome {
    /// The file translated end-to-end; one row per function.
    Swept(Vec<FnReport>),
    /// The pipeline rejected the file — the diagnostic says which phase
    /// and (when known) which function and source position.
    Failed(Box<Diag>),
}

/// One file's entry in the corpus report.
#[derive(Clone, Debug)]
pub struct FileReport {
    /// Path as discovered under the corpus directory.
    pub path: PathBuf,
    /// What happened.
    pub outcome: FileOutcome,
}

/// The whole sweep, in file-name order.
#[derive(Clone, Debug, Default)]
pub struct CorpusReport {
    /// Per-file outcomes.
    pub files: Vec<FileReport>,
}

impl CorpusReport {
    /// Number of files that translated end-to-end.
    #[must_use]
    pub fn files_ok(&self) -> usize {
        self.files
            .iter()
            .filter(|f| matches!(f.outcome, FileOutcome::Swept(_)))
            .count()
    }

    /// Total functions across all swept files.
    #[must_use]
    pub fn functions(&self) -> usize {
        self.files
            .iter()
            .map(|f| match &f.outcome {
                FileOutcome::Swept(fns) => fns.len(),
                FileOutcome::Failed(_) => 0,
            })
            .sum()
    }

    /// Functions whose theorems all replayed.
    #[must_use]
    pub fn proved(&self) -> usize {
        self.rows()
            .filter(|r| r.status == FnStatus::Proved)
            .count()
    }

    /// Rejected files plus functions whose theorems failed to replay.
    #[must_use]
    pub fn failures(&self) -> usize {
        let bad_files = self.files.len() - self.files_ok();
        let bad_fns = self
            .rows()
            .filter(|r| r.status != FnStatus::Proved)
            .count();
        bad_files + bad_fns
    }

    /// Total and discharged guard counts over all swept functions.
    #[must_use]
    pub fn guard_totals(&self) -> (usize, usize) {
        self.rows()
            .fold((0, 0), |(g, d), r| (g + r.guards, d + r.discharged))
    }

    fn rows(&self) -> impl Iterator<Item = &FnReport> {
        self.files.iter().flat_map(|f| match &f.outcome {
            FileOutcome::Swept(fns) => fns.as_slice(),
            FileOutcome::Failed(_) => &[],
        })
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:<20} {:>6} {:>10}  status",
            "file", "function", "guards", "discharged"
        )?;
        for file in &self.files {
            let name = file
                .path
                .file_name()
                .map_or_else(|| file.path.display().to_string(), |n| {
                    n.to_string_lossy().into_owned()
                });
            match &file.outcome {
                FileOutcome::Swept(fns) => {
                    for r in fns {
                        writeln!(
                            f,
                            "{:<24} {:<20} {:>6} {:>10}  {}",
                            name, r.function, r.guards, r.discharged, r.status
                        )?;
                    }
                }
                FileOutcome::Failed(d) => {
                    let at = d
                        .span
                        .map_or_else(String::new, |s| format!(" at {s}"));
                    writeln!(f, "{name:<24} {:<20} {:>6} {:>10}  failed{at}: {d}", "-", "-", "-")?;
                }
            }
        }
        let (guards, discharged) = self.guard_totals();
        write!(
            f,
            "swept {} file(s), {} function(s): {} proved, {} failed; \
             {discharged}/{guards} guard(s) discharged statically",
            self.files.len(),
            self.functions(),
            self.proved(),
            self.failures(),
        )
    }
}

/// Runs the pipeline over every `*.c` file directly under `dir`.
///
/// Files are processed in name order; within a file, functions are
/// reported in the WA context's (sorted) order, so the table is
/// deterministic across runs and worker counts.
///
/// # Errors
///
/// Only on I/O failures — an unreadable directory or file. Frontend and
/// pipeline rejections are recorded in the report, not raised.
pub fn sweep(dir: &Path, opts: &Options) -> Result<CorpusReport, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "c") && p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{}: no .c files found", dir.display()));
    }
    let mut report = CorpusReport::default();
    for path in paths {
        let src =
            fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let outcome = match translate(&src, opts) {
            Err(d) => FileOutcome::Failed(Box::new(d)),
            Ok(out) => {
                let mut fns = Vec::new();
                for name in out.wa.fns.keys() {
                    let status = match kernel::check_all(
                        out.thms
                            .iter()
                            .filter(|(_, n, _)| n == name)
                            .map(|(_, n, t)| (n, t)),
                        &out.check_ctx,
                        1,
                    ) {
                        Ok(_) => FnStatus::Proved,
                        Err((_, e)) => FnStatus::CheckFailed(e.to_string()),
                    };
                    let (guards, discharged) = out
                        .absint
                        .get(name)
                        .map_or((0, 0), |a| (a.report.guards.len(), a.report.discharged()));
                    fns.push(FnReport {
                        function: name.clone(),
                        guards,
                        discharged,
                        status,
                    });
                }
                FileOutcome::Swept(fns)
            }
        };
        report.files.push(FileReport { path, outcome });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_failures_without_raising() {
        let dir = std::env::temp_dir().join("autocorres-corpus-test");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ok.c"), "int id(int x) { return x; }").unwrap();
        fs::write(dir.join("bad.c"), "float f(float x) { return x; }").unwrap();
        let report = sweep(&dir, &Options::default()).unwrap();
        assert_eq!(report.files.len(), 2);
        assert_eq!(report.functions(), 1);
        assert_eq!(report.proved(), 1);
        assert_eq!(report.failures(), 1);
        let text = report.to_string();
        assert!(text.contains("id"), "{text}");
        assert!(text.contains("failed"), "{text}");
        fs::remove_dir_all(&dir).ok();
    }
}
