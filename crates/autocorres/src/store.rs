//! Disk-backed artifact persistence: warm-starting a fresh process from an
//! earlier run's proof state (DESIGN.md §6g).
//!
//! A [`DiskStore`] mirrors the two session caches onto disk:
//!
//! * every [`ArtifactStore`] entry — `(phase, function, input digest)` →
//!   phase artifact — as one content-addressed file under `artifacts/`,
//! * the [`kernel::ReplayCache`]'s successful-validation digests in
//!   `replay.bin`.
//!
//! Layout under the cache directory:
//!
//! ```text
//! meta                          b"ACRSTOR1" + two 16-byte scheme probes
//! replay.bin                    b"ACRSRPL1" + digests + integrity digest
//! artifacts/<phase>-<fn>-<digest>.bin
//!                               b"ACRSART1" + payload + integrity digest
//! ```
//!
//! # Integrity and trust model
//!
//! Every file carries a magic header and a trailing
//! [`ir::codec::digest128_bytes`] over its payload; a corrupt, truncated,
//! or foreign file fails one of the checks and is **rejected
//! individually** — the pipeline recomputes that entry from source, so
//! damage degrades warm starts, never verdicts. The store is part of the
//! *local trusted base* (like the in-memory session caches it mirrors):
//! the integrity digest defends against accidental corruption, not an
//! adversary with write access to the cache directory — adversarial
//! transport is what proof certificates (`kernel::cert`) are for, and
//! those revalidate every node.
//!
//! Version skew is safe by construction, twice over. First, the `meta`
//! file records probes of the digest schemes (the codec's FNV construction
//! and the standard library's `DefaultHasher`, whose fixed SipHash key may
//! change between Rust releases); a mismatch makes the whole directory
//! load as a cold start with a diagnostic. Second, even if the probe
//! missed, a stale entry's *key* digest could never equal one freshly
//! computed under a different scheme — lookups simply miss and recompute,
//! and stale replay digests never match a real validation's digest, so a
//! preload can only skip re-runs of validations that actually succeeded.
//!
//! # Concurrency
//!
//! Writers create a uniquely named temporary file and `rename` it into
//! place — atomic on POSIX — so concurrent readers only ever observe
//! complete files and concurrent writers race to last-writer-wins on
//! byte-identical content (entries are content-addressed by their key).

use std::collections::HashSet;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ir::codec::{digest128_bytes, Codec, DecodeError, Decoder, Encoder};
use ir::diag::{Diag, DiagKind};
use kernel::{ReplayCache, Thm};
use monadic::MonadicFn;

use crate::phase::{AbsintFn, AdaptedFn, Artifact, ArtifactStore, PhaseArtifact, PHASES};

/// Magic + version of the store's `meta` file.
const META_MAGIC: &[u8; 8] = b"ACRSTOR1";
/// Magic + version of one artifact entry file.
const ART_MAGIC: &[u8; 8] = b"ACRSART1";
/// Magic + version of the replay-digest file.
const RPL_MAGIC: &[u8; 8] = b"ACRSRPL1";

// ---- artifact codecs --------------------------------------------------------

impl Codec for AdaptedFn {
    fn encode(&self, e: &mut Encoder) {
        self.body.encode(e);
        self.thm.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(AdaptedFn {
            body: Codec::decode(d)?,
            thm: Thm::decode(d)?,
        })
    }
}

impl Codec for AbsintFn {
    fn encode(&self, e: &mut Encoder) {
        self.report.encode(e);
        self.thms.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(AbsintFn {
            report: Codec::decode(d)?,
            thms: Vec::decode(d)?,
        })
    }
}

impl Codec for Artifact {
    fn encode(&self, e: &mut Encoder) {
        match self {
            Artifact::L1 { fun, thm } => {
                e.u8(0);
                fun.encode(e);
                thm.encode(e);
            }
            Artifact::L2Fn(fun) => {
                e.u8(1);
                fun.encode(e);
            }
            Artifact::L2Thm(thm) => {
                e.u8(2);
                thm.encode(e);
            }
            Artifact::Hl { fun, thm } => {
                e.u8(3);
                fun.encode(e);
                thm.encode(e);
            }
            Artifact::Wa { fun, thm } => {
                e.u8(4);
                fun.encode(e);
                thm.encode(e);
            }
            Artifact::Adapt(a) => {
                e.u8(5);
                a.encode(e);
            }
            Artifact::Absint(a) => {
                e.u8(6);
                a.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match d.u8()? {
            0 => Artifact::L1 {
                fun: MonadicFn::decode(d)?,
                thm: Thm::decode(d)?,
            },
            1 => Artifact::L2Fn(MonadicFn::decode(d)?),
            2 => Artifact::L2Thm(Thm::decode(d)?),
            3 => Artifact::Hl {
                fun: MonadicFn::decode(d)?,
                thm: Option::decode(d)?,
            },
            4 => Artifact::Wa {
                fun: MonadicFn::decode(d)?,
                thm: Option::decode(d)?,
            },
            5 => Artifact::Adapt(Option::decode(d)?),
            6 => Artifact::Absint(AbsintFn::decode(d)?),
            b => return Err(DecodeError(format!("invalid Artifact tag {b}"))),
        })
    }
}

// ---- scheme probes ----------------------------------------------------------

/// Probe of the `DefaultHasher`-based digest scheme used by the phase
/// input digests and the replay cache. `DefaultHasher::new()` is SipHash
/// with a fixed key — deterministic across processes of one Rust release,
/// but free to change between releases; this probe hashes a fixed
/// structured value (including an interned term, covering the
/// content-based `Symbol` hash) so any scheme change flips it.
fn hasher_probe() -> u128 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    fn pass(seed: u64) -> u64 {
        let mut h = DefaultHasher::new();
        seed.hash(&mut h);
        0xACu64.hash(&mut h);
        "autocorres-store-probe".hash(&mut h);
        ir::expr::Expr::binop(
            ir::expr::BinOp::Add,
            ir::expr::Expr::var("store_probe"),
            ir::expr::Expr::u32(1),
        )
        .hash(&mut h);
        h.finish()
    }
    (u128::from(pass(0x9E37_79B9_7F4A_7C15)) << 64) | u128::from(pass(0xC2B2_AE3D_27D4_EB4F))
}

/// Probe of the codec's own FNV-based integrity digest.
fn codec_probe() -> u128 {
    digest128_bytes(b"autocorres-store-probe")
}

fn meta_bytes() -> Vec<u8> {
    let mut v = Vec::with_capacity(40);
    v.extend_from_slice(META_MAGIC);
    v.extend_from_slice(&hasher_probe().to_le_bytes());
    v.extend_from_slice(&codec_probe().to_le_bytes());
    v
}

// ---- the disk store ---------------------------------------------------------

/// What a [`DiskStore::load_into`] found.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Artifact entries accepted into the session store.
    pub artifacts: usize,
    /// Replay-cache digests preloaded.
    pub replay_digests: usize,
    /// On-disk entries rejected (corrupt, truncated, foreign, or
    /// version-skewed) — each falls back to recomputation.
    pub rejected: usize,
    /// The whole directory was skipped because its `meta` header did not
    /// match this build's format/digest schemes.
    pub version_skew: bool,
    /// Non-fatal diagnostics (rejections, skew) for the caller to surface.
    pub warnings: Vec<Diag>,
}

/// A disk-backed mirror of the session caches. See the module docs.
pub struct DiskStore {
    dir: PathBuf,
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating the directory tree.
    pub fn open(dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir.join("artifacts"))?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The directory this store mirrors into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn warn(msg: String) -> Diag {
        // The store caches kernel-checked artifacts; `Lint` is the one
        // non-fatal kind (warm-start degradation never fails a run).
        Diag::new(ir::diag::Phase::Kernel, DiagKind::Lint, msg)
    }

    /// Loads every valid on-disk entry into the session caches. Never
    /// fails: anything unreadable or invalid is counted in
    /// [`LoadReport::rejected`] and recomputed by the pipeline instead.
    pub fn load_into(&self, store: &ArtifactStore, replay: &ReplayCache) -> LoadReport {
        let mut rep = LoadReport::default();
        match std::fs::read(self.dir.join("meta")) {
            Ok(bytes) => {
                if bytes != meta_bytes() {
                    rep.version_skew = true;
                    rep.warnings.push(Self::warn(format!(
                        "cache {}: format or digest-scheme mismatch (written by a \
                         different build?); starting cold",
                        self.dir.display()
                    )));
                    return rep;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // A fresh (or pre-meta) directory: nothing trustworthy to
                // load. Entries and meta will be written on save.
                if self.has_entries() {
                    rep.version_skew = true;
                    rep.warnings.push(Self::warn(format!(
                        "cache {}: entries present but no meta header; starting cold",
                        self.dir.display()
                    )));
                }
                return rep;
            }
            Err(e) => {
                rep.warnings.push(Self::warn(format!(
                    "cache {}: meta unreadable ({e}); starting cold",
                    self.dir.display()
                )));
                return rep;
            }
        }

        let art_dir = self.dir.join("artifacts");
        let mut paths: Vec<PathBuf> = match std::fs::read_dir(&art_dir) {
            Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(e) => {
                rep.warnings.push(Self::warn(format!(
                    "cache {}: artifacts unreadable ({e})",
                    self.dir.display()
                )));
                return rep;
            }
        };
        paths.sort();
        // In-flight temporaries of a concurrent writer are not entries;
        // anything else that fails to parse is.
        paths.retain(|p| p.extension().and_then(|e| e.to_str()) != Some("tmp"));
        for decoded in decode_all(&paths) {
            match decoded {
                Some((phase, name, artifact)) => {
                    store.preload(phase, &name, Arc::new(artifact));
                    rep.artifacts += 1;
                }
                None => rep.rejected += 1,
            }
        }

        match std::fs::read(self.dir.join("replay.bin")) {
            Ok(bytes) => match decode_replay(&bytes) {
                Ok(digests) => {
                    replay.preload(&digests);
                    rep.replay_digests = digests.len();
                }
                Err(_) => rep.rejected += 1,
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => rep.rejected += 1,
        }

        if rep.rejected > 0 {
            rep.warnings.push(Self::warn(format!(
                "cache {}: rejected {} corrupt or foreign entr{} (recomputing)",
                self.dir.display(),
                rep.rejected,
                if rep.rejected == 1 { "y" } else { "ies" }
            )));
        }
        rep
    }

    /// Writes the session caches back to disk. Existing entry files are
    /// kept (content-addressed: same key, same bytes); `meta` and
    /// `replay.bin` are replaced atomically, the latter merged with
    /// concurrent writers' digests.
    ///
    /// # Errors
    ///
    /// Filesystem errors; the store on disk stays consistent (every file
    /// is complete) even on failure.
    pub fn save(&self, store: &ArtifactStore, replay: &ReplayCache) -> io::Result<()> {
        self.write_atomic(&self.dir.join("meta"), &meta_bytes())?;
        for ((phase, name, digest), artifact) in store.entries() {
            let path = self.dir.join("artifacts").join(entry_filename(phase, &name, digest));
            if path.exists() {
                continue;
            }
            self.write_atomic(&path, &encode_entry(phase, &name, &artifact))?;
        }
        // Merge-on-write: a concurrent process may have persisted digests
        // this session never saw; last-writer-wins must not drop them.
        let mut digests: HashSet<u128> = std::fs::read(self.dir.join("replay.bin"))
            .ok()
            .and_then(|b| decode_replay(&b).ok())
            .map(|v| v.into_iter().collect())
            .unwrap_or_default();
        digests.extend(replay.export_digests());
        let mut digests: Vec<u128> = digests.into_iter().collect();
        digests.sort_unstable();
        self.write_atomic(&self.dir.join("replay.bin"), &encode_replay(&digests))?;
        Ok(())
    }

    fn has_entries(&self) -> bool {
        std::fs::read_dir(self.dir.join("artifacts"))
            .map(|mut rd| rd.next().is_some())
            .unwrap_or(false)
    }

    /// Writes `bytes` to a unique temporary sibling, then renames it over
    /// `path` — readers never see a partial file; racing writers settle on
    /// last-writer-wins.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("{}-{}.tmp", std::process::id(), seq));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        let res = std::fs::rename(&tmp, path);
        if res.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        res
    }
}

/// Reads and decodes every entry file, in parallel for large stores:
/// decoding is pure per file (the interner is sharded and thread-safe),
/// so only the read+decode fans out — results scatter back into path
/// order and the caller's accept/reject walk stays deterministic. On a
/// seL4-scale store (~3 900 entries, ~270 k proof nodes) the sequential
/// decode dominated warm start; fanning it out is what keeps a fresh
/// process's warm start well under the bench's 25 %-of-cold gate.
fn decode_all(paths: &[PathBuf]) -> Vec<Option<(&'static str, String, PhaseArtifact)>> {
    let decode_one = |path: &PathBuf| {
        std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|b| decode_entry(&b).map_err(|e| e.0))
            .ok()
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    if workers <= 1 || paths.len() < 32 {
        return paths.iter().map(decode_one).collect();
    }
    let mut decoded: Vec<Option<(&'static str, String, PhaseArtifact)>> = Vec::new();
    decoded.resize_with(paths.len(), || None);
    let next = AtomicU64::new(0);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    // Per-thread read-through intern caches, as in the
                    // phase pool and parallel replay.
                    let _intern_scope = ir::intern::ParallelScope::enter();
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let Some(path) = paths.get(i) else { break };
                        mine.push((i, decode_one(path)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            // A panicked worker's slots stay `None` and count as rejected
            // — load never fails, it degrades.
            for (i, r) in h.join().unwrap_or_default() {
                decoded[i] = r;
            }
        }
    });
    decoded
}

/// `<phase>-<fn>-<digest>.bin`, with the function name sanitized for the
/// filesystem (C identifiers pass through unchanged; the digest keeps
/// sanitized names collision-free regardless).
fn entry_filename(phase: &str, name: &str, digest: u128) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '-' })
        .collect();
    format!("{phase}-{safe}-{digest:032x}.bin")
}

fn encode_entry(phase: &str, name: &str, artifact: &PhaseArtifact) -> Vec<u8> {
    let mut e = Encoder::new();
    e.str(phase);
    e.str(name);
    e.u128_fixed(artifact.digest);
    artifact.value.encode(&mut e);
    seal(ART_MAGIC, e.finish())
}

fn decode_entry(bytes: &[u8]) -> Result<(&'static str, String, PhaseArtifact), DecodeError> {
    let payload = unseal(ART_MAGIC, bytes)?;
    let mut d = Decoder::new(payload);
    let phase_name = d.str()?;
    // The store key's phase component is `&'static str`; an entry naming
    // an unknown phase (a future format, a renamed phase) is rejected.
    let phase = PHASES
        .iter()
        .map(|p| p.name())
        .find(|n| *n == phase_name)
        .ok_or_else(|| DecodeError(format!("unknown phase {phase_name:?}")))?;
    let name = d.str()?;
    let digest = d.u128_fixed()?;
    let value = Artifact::decode(&mut d)?;
    if d.remaining() != 0 {
        return Err(DecodeError(format!("{} trailing bytes", d.remaining())));
    }
    Ok((phase, name, PhaseArtifact { digest, value }))
}

fn encode_replay(digests: &[u128]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.varint(digests.len() as u64);
    for &d in digests {
        e.u128_fixed(d);
    }
    seal(RPL_MAGIC, e.finish())
}

fn decode_replay(bytes: &[u8]) -> Result<Vec<u128>, DecodeError> {
    let payload = unseal(RPL_MAGIC, bytes)?;
    let mut d = Decoder::new(payload);
    let n = d.seq_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.u128_fixed()?);
    }
    if d.remaining() != 0 {
        return Err(DecodeError(format!("{} trailing bytes", d.remaining())));
    }
    Ok(out)
}

/// `magic + payload + digest128(payload)`.
fn seal(magic: &[u8; 8], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len() + 16);
    out.extend_from_slice(magic);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&digest128_bytes(&payload).to_le_bytes());
    out
}

/// Inverse of [`seal`]: checks magic and integrity digest, returns the
/// payload slice.
fn unseal<'a>(magic: &[u8; 8], bytes: &'a [u8]) -> Result<&'a [u8], DecodeError> {
    if bytes.len() < 24 {
        return Err(DecodeError("file too short".into()));
    }
    if &bytes[..8] != magic {
        return Err(DecodeError("bad magic".into()));
    }
    let payload = &bytes[8..bytes.len() - 16];
    let mut stored = [0u8; 16];
    stored.copy_from_slice(&bytes[bytes.len() - 16..]);
    if digest128_bytes(payload) != u128::from_le_bytes(stored) {
        return Err(DecodeError("integrity digest mismatch".into()));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Options, Session};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "acr-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const SRC: &str = "unsigned inc(unsigned x) { if (x < 100u) { return x + 1u; } return x; }";

    fn opts(dir: &Path) -> Options {
        Options {
            l2_trials: 2,
            cache_dir: Some(dir.to_path_buf()),
            ..Options::default()
        }
    }

    #[test]
    fn roundtrip_through_disk_warm_starts() {
        let dir = tmpdir("rt");
        let out1 = {
            let sess = Session::new(opts(&dir));
            let out = sess.translate(SRC).expect("translate");
            assert!(out.stats.cold_start_ms.is_some(), "first run is cold");
            assert_eq!(out.stats.dirty_fns, 1, "everything recomputed cold");
            out
        };
        // A *fresh* session (fresh process stand-in) over the same dir.
        let sess = Session::new(opts(&dir));
        assert!(sess.load_report().artifacts > 0, "artifacts loaded");
        assert_eq!(sess.load_report().rejected, 0);
        let out2 = sess.translate(SRC).expect("translate warm");
        assert_eq!(out2.stats.dirty_fns, 0, "warm start recomputes nothing");
        assert!(out2.stats.warm_start_ms.is_some());
        assert_eq!(out2.stats.store_misses, 0);
        assert_eq!(
            out1.wa.function("inc").unwrap().to_string(),
            out2.wa.function("inc").unwrap().to_string()
        );
        assert_eq!(
            out1.stats.deterministic_summary(),
            out2.stats.deterministic_summary()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_rejected_individually() {
        let dir = tmpdir("corrupt");
        {
            let sess = Session::new(opts(&dir));
            sess.translate(SRC).expect("translate");
        }
        // Flip one byte in the middle of every artifact file in turn and
        // in replay.bin: each load must reject it and still succeed.
        let clean = {
            let sess = Session::new(opts(&dir));
            sess.translate(SRC).expect("translate").wa.function("inc").unwrap().to_string()
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir.join("artifacts"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        paths.push(dir.join("replay.bin"));
        for path in paths {
            let orig = std::fs::read(&path).unwrap();
            let mut bad = orig.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let sess = Session::new(opts(&dir));
            assert!(sess.load_report().rejected >= 1, "{}", path.display());
            let out = sess.translate(SRC).expect("translate survives corruption");
            assert_eq!(out.wa.function("inc").unwrap().to_string(), clean);
            std::fs::write(&path, &orig).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skew_and_garbage_degrade_to_cold_start() {
        let dir = tmpdir("skew");
        {
            let sess = Session::new(opts(&dir));
            sess.translate(SRC).expect("translate");
        }
        // Foreign + empty files among the entries: rejected, not fatal.
        std::fs::write(dir.join("artifacts/README.txt"), b"not an artifact").unwrap();
        std::fs::write(dir.join("artifacts/empty.bin"), b"").unwrap();
        {
            let sess = Session::new(opts(&dir));
            assert_eq!(sess.load_report().rejected, 2);
            assert!(sess.load_report().artifacts > 0);
            let out = sess.translate(SRC).expect("translate");
            assert_eq!(out.stats.dirty_fns, 0);
        }
        // Version-skewed meta: the whole directory loads cold, with a
        // warning, and the next save rewrites the header.
        let mut meta = std::fs::read(dir.join("meta")).unwrap();
        meta[9] ^= 0xff;
        std::fs::write(dir.join("meta"), &meta).unwrap();
        {
            let sess = Session::new(opts(&dir));
            let rep = sess.load_report();
            assert!(rep.version_skew);
            assert_eq!(rep.artifacts, 0);
            assert!(!rep.warnings.is_empty());
            let out = sess.translate(SRC).expect("translate cold");
            assert!(out.stats.cold_start_ms.is_some());
            assert!(out.stats.dirty_fns > 0);
        }
        // The save above healed the meta header; loads are warm again.
        let sess = Session::new(opts(&dir));
        assert!(!sess.load_report().version_skew);
        assert!(sess.load_report().artifacts > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_phase_entries_are_rejected() {
        let dir = tmpdir("phase");
        {
            let sess = Session::new(opts(&dir));
            sess.translate(SRC).expect("translate");
        }
        // A self-consistent entry (valid magic + digest) naming a phase
        // this build does not know: must be rejected by name, not trusted.
        let mut e = Encoder::new();
        e.str("l9");
        e.str("inc");
        e.u128_fixed(42);
        Artifact::L2Fn(MonadicFn {
            name: "inc".into(),
            params: vec![],
            ret_ty: ir::ty::Ty::Unit,
            frame: None,
            body: monadic::Prog::Fail,
        })
        .encode(&mut e);
        std::fs::write(
            dir.join("artifacts/l9-inc-0000.bin"),
            seal(ART_MAGIC, e.finish()),
        )
        .unwrap();
        let sess = Session::new(opts(&dir));
        assert_eq!(sess.load_report().rejected, 1);
        assert!(sess.translate(SRC).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
