//! Incremental translation sessions.
//!
//! A [`Session`] owns two caches that outlive a single `translate` call:
//!
//! * the **artifact store** ([`crate::phase::ArtifactStore`]), mapping
//!   `(phase, function, input_digest)` to the phase artifact produced the
//!   last time those exact inputs were seen, and
//! * a **replay cache** ([`kernel::ReplayCache`]), remembering which proof
//!   nodes the independent checker already validated.
//!
//! Translating edited source through the same session therefore re-runs
//! only the *dirty cone*: the edited function in every phase, plus its
//! transitive callers in the exec-testing phases (whose differential tests
//! execute calls, so their input digests cover the callee cone). Everything
//! else is answered from the store — and because every phase job is a
//! deterministic pure function of exactly its digested inputs, the output
//! is byte-identical to a from-scratch run. Scheduling is equally
//! invisible: the work-stealing phase executor and its batching plan
//! (see [`crate::phase`]) key nothing into the digests, so the same
//! session produces the same bytes at any worker count, and cache hits
//! are counted per function regardless of how functions were batched
//! onto scheduled nodes. Likewise
//! [`Session::check_all_report`] replays only theorems whose derivations
//! contain proof nodes not yet seen by this session's replay cache.
//!
//! ```
//! use autocorres::{Options, Session};
//! let sess = Session::new(Options::default());
//! let out1 = sess.translate("int one(void) { return 1; }").unwrap();
//! let out2 = sess.translate("int one(void) { return 1; }").unwrap();
//! assert_eq!(out2.stats.dirty_fns, 0); // nothing changed: full cache hit
//! assert_eq!(out1.wa.function("one").unwrap().to_string(),
//!            out2.wa.function("one").unwrap().to_string());
//! ```

use ir::diag::Diag;
use kernel::{KernelError, ReplayCache, ReplayReport};

use crate::phase::{run_pipeline, ArtifactStore};
use crate::pipeline::{Options, Output};

/// A translation session: pipeline options plus the cross-run caches.
pub struct Session {
    opts: Options,
    store: ArtifactStore,
    replay: ReplayCache,
}

impl Session {
    /// Creates a session with empty caches.
    #[must_use]
    pub fn new(opts: Options) -> Session {
        Session {
            opts,
            store: ArtifactStore::new(),
            replay: ReplayCache::new(),
        }
    }

    /// The options every translation in this session runs with.
    #[must_use]
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Number of artifacts currently held by the session store.
    #[must_use]
    pub fn artifacts(&self) -> usize {
        self.store.len()
    }

    /// Audit-only (`audit` feature): direct access to the session's
    /// artifact store, for the store-corruption attacks.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Audit-only (`audit` feature): direct access to the session's
    /// replay cache, for the cache-corruption attacks.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_replay(&self) -> &ReplayCache {
        &self.replay
    }

    /// Translates C source, reusing unchanged per-function artifacts from
    /// earlier runs of this session.
    ///
    /// # Errors
    ///
    /// The first failing phase's diagnostic, in the same phase/function
    /// order as a from-scratch run.
    pub fn translate(&self, src: &str) -> Result<Output, Diag> {
        let typed = cparser::parse_and_check(src)?;
        self.translate_program(&typed)
    }

    /// Translates an already-typechecked program (see [`Session::translate`]).
    ///
    /// # Errors
    ///
    /// As for [`Session::translate`].
    pub fn translate_program(&self, typed: &cparser::TProgram) -> Result<Output, Diag> {
        run_pipeline(typed, &self.opts, &self.store)
    }

    /// Replays `out`'s theorems through the independent checker, skipping
    /// proof nodes this session already validated (the reported
    /// `cache_hits`/`cache_misses` cover this call only).
    ///
    /// # Errors
    ///
    /// The failing function name and kernel error, first in theorem order.
    pub fn check_all_report(
        &self,
        out: &Output,
        workers: usize,
    ) -> Result<ReplayReport, (String, KernelError)> {
        kernel::check_all_with(
            out.thms.iter().map(|(_, n, t)| (n, t)),
            &out.check_ctx,
            workers,
            &self.replay,
        )
    }
}
