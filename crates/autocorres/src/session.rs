//! Incremental translation sessions.
//!
//! A [`Session`] owns two caches that outlive a single `translate` call:
//!
//! * the **artifact store** ([`crate::phase::ArtifactStore`]), mapping
//!   `(phase, function, input_digest)` to the phase artifact produced the
//!   last time those exact inputs were seen, and
//! * a **replay cache** ([`kernel::ReplayCache`]), remembering which proof
//!   nodes the independent checker already validated.
//!
//! Translating edited source through the same session therefore re-runs
//! only the *dirty cone*: the edited function in every phase, plus its
//! transitive callers in the exec-testing phases (whose differential tests
//! execute calls, so their input digests cover the callee cone). Everything
//! else is answered from the store — and because every phase job is a
//! deterministic pure function of exactly its digested inputs, the output
//! is byte-identical to a from-scratch run. Scheduling is equally
//! invisible: the work-stealing phase executor and its batching plan
//! (see [`crate::phase`]) key nothing into the digests, so the same
//! session produces the same bytes at any worker count, and cache hits
//! are counted per function regardless of how functions were batched
//! onto scheduled nodes. Likewise
//! [`Session::check_all_report`] replays only theorems whose derivations
//! contain proof nodes not yet seen by this session's replay cache.
//!
//! With [`Options::cache_dir`] set, both caches additionally persist to
//! disk through a [`DiskStore`] (DESIGN.md §6g): `Session::new` preloads
//! every valid on-disk entry — so a *fresh process* warm-starts exactly
//! like a long-lived session — and each successful `translate` (and each
//! `check_all_report`) writes the caches back, best-effort. Disk problems
//! never fail a translation; they surface as [`LoadReport`] warnings and
//! degrade to recomputation.
//!
//! ```
//! use autocorres::{Options, Session};
//! let sess = Session::new(Options::default());
//! let out1 = sess.translate("int one(void) { return 1; }").unwrap();
//! let out2 = sess.translate("int one(void) { return 1; }").unwrap();
//! assert_eq!(out2.stats.dirty_fns, 0); // nothing changed: full cache hit
//! assert_eq!(out1.wa.function("one").unwrap().to_string(),
//!            out2.wa.function("one").unwrap().to_string());
//! ```

use ir::diag::Diag;
use kernel::{KernelError, ReplayCache, ReplayReport};

use crate::phase::{run_pipeline, ArtifactStore, PHASES};
use crate::pipeline::{Options, Output};
use crate::store::{DiskStore, LoadReport};

/// A translation session: pipeline options plus the cross-run caches.
pub struct Session {
    opts: Options,
    store: ArtifactStore,
    replay: ReplayCache,
    /// The disk mirror, when `opts.cache_dir` was set and usable.
    disk: Option<DiskStore>,
    /// What `Session::new` found on disk (empty default without a disk).
    load: LoadReport,
}

impl Session {
    /// Creates a session with empty caches — or, when
    /// [`Options::cache_dir`] is set, caches preloaded from that
    /// directory's [`DiskStore`]. An unusable directory (not creatable)
    /// or invalid contents degrade to empty caches with
    /// [`Session::load_report`] warnings, never an error.
    #[must_use]
    pub fn new(opts: Options) -> Session {
        let store = ArtifactStore::new();
        let replay = ReplayCache::new();
        let mut load = LoadReport::default();
        let disk = match &opts.cache_dir {
            None => None,
            Some(dir) => match DiskStore::open(dir) {
                Ok(d) => {
                    load = d.load_into(&store, &replay);
                    Some(d)
                }
                Err(e) => {
                    load.warnings.push(Diag::new(
                        ir::diag::Phase::Kernel,
                        ir::diag::DiagKind::Lint,
                        format!("cache {}: unusable ({e}); persistence disabled", dir.display()),
                    ));
                    None
                }
            },
        };
        Session {
            opts,
            store,
            replay,
            disk,
            load,
        }
    }

    /// The options every translation in this session runs with.
    #[must_use]
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Number of artifacts currently held by the session store.
    #[must_use]
    pub fn artifacts(&self) -> usize {
        self.store.len()
    }

    /// What `Session::new` loaded (or failed to load) from the disk
    /// store. Default-empty when no `cache_dir` was configured.
    #[must_use]
    pub fn load_report(&self) -> &LoadReport {
        &self.load
    }

    /// Writes the session caches back to the disk store now. Called
    /// automatically (best-effort, errors swallowed) after successful
    /// translations; call explicitly when a write failure must surface.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or a no-op `Ok` without a `cache_dir`.
    pub fn persist(&self) -> std::io::Result<()> {
        match &self.disk {
            Some(d) => d.save(&self.store, &self.replay),
            None => Ok(()),
        }
    }

    /// Audit-only (`audit` feature): direct access to the session's
    /// artifact store, for the store-corruption attacks.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Audit-only (`audit` feature): direct access to the session's
    /// replay cache, for the cache-corruption attacks.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_replay(&self) -> &ReplayCache {
        &self.replay
    }

    /// Translates C source, reusing unchanged per-function artifacts from
    /// earlier runs of this session (and, with a cache dir, earlier
    /// processes).
    ///
    /// # Errors
    ///
    /// The first failing phase's diagnostic, in the same phase/function
    /// order as a from-scratch run.
    pub fn translate(&self, src: &str) -> Result<Output, Diag> {
        let typed = cparser::parse_and_check(src)?;
        self.translate_program(&typed)
    }

    /// Translates an already-typechecked program (see [`Session::translate`]).
    ///
    /// # Errors
    ///
    /// As for [`Session::translate`].
    pub fn translate_program(&self, typed: &cparser::TProgram) -> Result<Output, Diag> {
        let mut out = run_pipeline(typed, &self.opts, &self.store)?;
        if self.disk.is_some() {
            self.stamp_store_stats(&mut out);
            let _ = self.persist();
        }
        Ok(out)
    }

    /// Fills the persistence fields of `out.stats` for a disk-backed run.
    fn stamp_store_stats(&self, out: &mut Output) {
        let stats = &mut out.stats;
        stats.store_rejected = self.load.rejected;
        let total_jobs = out.wa.fns.len() * PHASES.len();
        stats.store_hits = stats.cached_nodes.min(total_jobs);
        stats.store_misses = total_jobs.saturating_sub(stats.store_hits);
        let ms = stats.total_wall.as_millis().min(u128::from(u64::MAX)) as u64;
        if self.load.artifacts > 0 {
            stats.warm_start_ms = Some(ms);
        } else {
            stats.cold_start_ms = Some(ms);
        }
    }

    /// Replays `out`'s theorems through the independent checker, skipping
    /// proof nodes this session already validated (the reported
    /// `cache_hits`/`cache_misses` cover this call only). With a cache
    /// dir, newly validated digests persist for future processes.
    ///
    /// # Errors
    ///
    /// The failing function name and kernel error, first in theorem order.
    pub fn check_all_report(
        &self,
        out: &Output,
        workers: usize,
    ) -> Result<ReplayReport, (String, KernelError)> {
        let rep = kernel::check_all_with(
            out.thms.iter().map(|(_, n, t)| (n, t)),
            &out.check_ctx,
            workers,
            &self.replay,
        )?;
        if self.disk.is_some() {
            let _ = self.persist();
        }
        Ok(rep)
    }
}
