//! The work-scheduling layer: a std-only work-stealing pool for the
//! per-function pipeline phases.
//!
//! Three primitives:
//!
//! * [`par_map`] — an order-preserving parallel map for independent jobs
//!   (theorem replay, ad-hoc fan-out). Items are claimed in contiguous
//!   chunks so the shared counter is touched O(workers) times, not O(items).
//! * [`run_dag`] / [`run_dag_tagged`] — a dependency-respecting scheduler.
//!   With `workers <= 1` it runs a deterministic lowest-index topological
//!   order inline on the calling thread — zero pool setup. With more
//!   workers it runs a *work-stealing* pool: each worker owns a deque,
//!   pushes the nodes it unblocks onto its own deque (LIFO, cache-warm),
//!   and steals from the front of a victim's deque (FIFO, oldest first)
//!   only when its own runs dry. There is no barrier anywhere: a node runs
//!   the moment its last dependency finishes, whichever phase it belongs
//!   to.
//! * [`plan_workers`] — the adaptive sizing policy: how many workers a
//!   given amount of estimated work actually deserves on this host
//!   (1 on single-CPU hosts, never more than the host has cores, fewer
//!   when the work is too small to amortize a pool).
//!
//! Sequential and parallel schedules execute the *same* closures —
//! byte-identical output is a property of the closures (per-function
//! seeds, name/slot-keyed result collection), not of scheduling luck. Both
//! report [`PoolStats`] for the utilization numbers in
//! [`crate::stats::PipelineStats`].

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worker-pool occupancy of one scheduled graph (or map).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Workers the caller asked for.
    pub requested: usize,
    /// Workers the pool actually ran with (after [`plan_workers`] and
    /// clamping to the job count). `1` means the inline fast path: no
    /// threads were spawned at all.
    pub workers: usize,
    /// Sum of per-worker busy time.
    pub busy: Duration,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Tasks executed by a worker other than the one that made them ready.
    pub steals: u64,
    /// Scheduled units (batch nodes for the pipeline graph, chunks for
    /// [`par_map`]).
    pub tasks: usize,
}

impl PoolStats {
    /// Raw busy time over capacity (`wall × effective workers`).
    ///
    /// Deliberately *not* clamped to `[0, 1]`: a value above `1.0` means
    /// the reported worker count is wrong (more concurrency happened than
    /// the pool admits to), and a value far below `1.0` at a high worker
    /// count means the pool was oversubscribed or starved. Both are
    /// pathologies worth seeing, not clamping away.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / capacity
        }
    }
}

/// Number of CPUs the host exposes (1 when undetectable).
#[must_use]
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Target scheduled units per worker: enough slack for stealing to balance
/// uneven batch costs, few enough that per-unit scheduling cost stays
/// negligible.
pub const TASKS_PER_WORKER: usize = 4;

/// Minimum estimated cost (term-size units) one batch must carry before a
/// worker is worth adding. Calibrated so a workload measured in
/// milliseconds stays inline while anything seconds-scale fans out fully
/// on real cores.
pub const MIN_TASK_COST: u64 = 500;

/// The adaptive pool-sizing policy: how many workers `requested` workers
/// and `estimated_cost` units of work (term-size units; `u64::MAX` for
/// "plenty") actually deserve.
///
/// * `requested <= 1` → `1` (explicitly sequential).
/// * `force_pool` → `requested` verbatim (tests and benches that must
///   exercise the parallel machinery, including oversubscription).
/// * one host CPU → `1`: a pool can only time-slice there, so it is pure
///   overhead.
/// * otherwise `min(requested, host_cpus, cost / (MIN_TASK_COST ×
///   TASKS_PER_WORKER))` — never more workers than cores (oversubscription
///   never helps a CPU-bound pipeline) and never so many that batches drop
///   below [`MIN_TASK_COST`].
///
/// The choice never affects output bytes — only wall-clock time — so it is
/// free to depend on the host.
#[must_use]
pub fn plan_workers(requested: usize, estimated_cost: u64, force_pool: bool) -> usize {
    if requested <= 1 {
        return 1;
    }
    if force_pool {
        return requested;
    }
    let cpus = host_cpus();
    if cpus <= 1 {
        return 1;
    }
    let by_cost = (estimated_cost / (MIN_TASK_COST * TASKS_PER_WORKER as u64))
        .min(usize::MAX as u64) as usize;
    requested.min(cpus).min(by_cost.max(1))
}

/// Applies `job` to every item index, returning results in item order.
///
/// With `workers <= 1` the jobs run inline, in order, on the calling
/// thread. Otherwise `workers` scoped threads claim contiguous chunks of
/// indices from a shared counter (≈ [`TASKS_PER_WORKER`] chunks per
/// worker); results land in their input slot, so the output order (and any
/// fold over it, e.g. first-error selection) is independent of thread
/// interleaving.
pub fn par_map<T, R, F>(items: &[T], workers: usize, job: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let requested = workers.max(1);
    let workers = requested.clamp(1, items.len().max(1));
    if workers <= 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        let wall = start.elapsed();
        return (
            out,
            PoolStats {
                requested,
                workers: 1,
                busy: wall,
                wall,
                steals: 0,
                tasks: items.len(),
            },
        );
    }
    // Workers will intern concurrently: route interning through the
    // per-thread caches for the duration of the pool.
    let _intern_scope = ir::intern::ParallelScope::enter();
    let chunk = items.len().div_ceil(workers * TASKS_PER_WORKER).max(1);
    let tasks = items.len().div_ceil(chunk);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut busy = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let lo = next.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= items.len() {
                            break;
                        }
                        let hi = (lo + chunk).min(items.len());
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            mine.push((lo + i, job(lo + i, item)));
                        }
                    }
                    (mine, t0.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (mine, worker_busy) = h.join().expect("pool worker panicked");
            busy += worker_busy;
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
    });
    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect();
    (
        out,
        PoolStats {
            requested,
            workers,
            busy,
            wall: start.elapsed(),
            steals: 0,
            tasks,
        },
    )
}

/// Sentinel marking a node as enqueued (or executed): its pending-dependency
/// counter can no longer reach the enqueue threshold.
const SCHEDULED: usize = usize::MAX;

/// A deterministic, cycle-tolerant lowest-index topological order of a
/// dependency graph: the exact order the sequential scheduler executes, and
/// the order batches are cut from. Cycles (legal in C call graphs:
/// recursion) are broken at the lowest-index stuck node.
#[must_use]
pub fn topo_order(deps: &[Vec<usize>]) -> Vec<usize> {
    let n = deps.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n, "topo_order: dependency index out of range");
            if d != i {
                dependents[d].push(i);
                indegree[i] += 1;
            }
        }
    }
    let mut ready: BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| indegree[i] == 0)
        .map(std::cmp::Reverse)
        .collect();
    for std::cmp::Reverse(i) in ready.iter().copied().collect::<Vec<_>>() {
        indegree[i] = SCHEDULED;
    }
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let Some(std::cmp::Reverse(i)) = ready.pop() else {
            // Stuck: break the cycle at the lowest-index blocked node.
            let i = (0..n)
                .find(|&i| indegree[i] != SCHEDULED)
                .expect("unfinished node exists while order is short");
            indegree[i] = SCHEDULED;
            ready.push(std::cmp::Reverse(i));
            continue;
        };
        order.push(i);
        for &dep in &dependents[i] {
            if indegree[dep] != SCHEDULED {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    indegree[dep] = SCHEDULED;
                    ready.push(std::cmp::Reverse(dep));
                }
            }
        }
    }
    order
}

/// Runs one job per node of a dependency graph, never starting a node
/// before all of `deps[node]` have finished. Results are returned in node
/// order. See [`run_dag_tagged`] for the scheduling discipline; the job
/// here does not learn whether its node was stolen.
///
/// # Panics
///
/// Panics if `deps.len() != n` or an edge index is out of range.
pub fn run_dag<R, F>(n: usize, deps: &[Vec<usize>], workers: usize, job: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run_dag_tagged(n, deps, workers, |i, _stolen| job(i))
}

/// [`run_dag`] where the job also learns whether its node was *stolen*
/// (executed by a worker other than the one that made it ready) — the
/// pipeline attributes steal counts to phases this way.
///
/// With `workers <= 1` this degenerates to the deterministic
/// lowest-index topological order of [`topo_order`], inline on the calling
/// thread, with zero pool setup. Otherwise each worker owns a deque:
/// finishing a node pushes the nodes it unblocked onto the finisher's own
/// deque (popped LIFO), and a worker whose deque is empty steals the
/// oldest node from a victim's deque. Workers with nothing to run or steal
/// park on a condvar; the last parked worker breaks dependency cycles
/// deterministically at the lowest-index stuck node (recursion in the call
/// graph), exactly as the sequential order does.
///
/// # Panics
///
/// Panics if `deps.len() != n` or an edge index is out of range.
pub fn run_dag_tagged<R, F>(
    n: usize,
    deps: &[Vec<usize>],
    workers: usize,
    job: F,
) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize, bool) -> R + Sync,
{
    assert_eq!(deps.len(), n, "run_dag: deps length mismatch");
    let start = Instant::now();
    let requested = workers.max(1);
    let workers = requested.clamp(1, n.max(1));
    // Reverse adjacency: which nodes each node unblocks.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n, "run_dag: dependency index out of range");
            if d == i {
                continue; // self-recursion imposes no ordering
            }
            dependents[d].push(i);
            indegree[i] += 1;
        }
    }

    if workers <= 1 {
        let order = topo_order(deps);
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for i in order {
            out[i] = Some(job(i, false));
        }
        let wall = start.elapsed();
        let out: Vec<R> = out
            .into_iter()
            .map(|s| s.expect("every node scheduled"))
            .collect();
        return (
            out,
            PoolStats {
                requested,
                workers: 1,
                busy: wall,
                wall,
                steals: 0,
                tasks: n,
            },
        );
    }

    // Workers will intern concurrently: route interning through the
    // per-thread caches for the duration of the pool.
    let _intern_scope = ir::intern::ParallelScope::enter();
    let pool = WsPool::new(n, workers, indegree);
    // Seed the deques round-robin with the initially ready nodes, lowest
    // index first, so early work spreads across workers immediately.
    {
        let mut w = 0;
        for i in 0..n {
            if pool.pending[i].load(Ordering::Relaxed) == 0 {
                pool.pending[i].store(SCHEDULED, Ordering::Relaxed);
                pool.deques[w]
                    .lock()
                    .expect("deque poisoned")
                    .push_back(i);
                w = (w + 1) % workers;
            }
        }
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut busy = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let dependents = &dependents;
                let job = &job;
                s.spawn(move || {
                    let t0 = Instant::now();
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    while let Some((i, stolen)) = pool.acquire(w) {
                        mine.push((i, job(i, stolen)));
                        pool.complete(w, i, dependents);
                    }
                    (mine, t0.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (mine, worker_busy) = h.join().expect("dag worker panicked");
            busy += worker_busy;
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
    });
    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every node scheduled exactly once"))
        .collect();
    (
        out,
        PoolStats {
            requested,
            workers,
            busy,
            wall: start.elapsed(),
            steals: pool.steals.load(Ordering::Relaxed),
            tasks: n,
        },
    )
}

/// Shared state of the work-stealing pool.
struct WsPool {
    /// Per-worker deques. The owner pushes/pops at the back; thieves pop
    /// at the front. Each deque has its own lock, so owners and thieves
    /// only contend pairwise.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Unresolved dependency count per node; [`SCHEDULED`] once enqueued.
    pending: Vec<AtomicUsize>,
    /// Nodes fully executed.
    finished: AtomicUsize,
    n: usize,
    /// Workers currently parked (or about to park).
    idle: AtomicUsize,
    /// Park/wake coordination. The lock protects nothing but the condvar;
    /// all scheduling state is in the atomics and deques.
    park: Mutex<()>,
    cond: Condvar,
    steals: AtomicU64,
}

impl WsPool {
    fn new(n: usize, workers: usize, indegree: Vec<usize>) -> WsPool {
        WsPool {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: indegree.into_iter().map(AtomicUsize::new).collect(),
            finished: AtomicUsize::new(0),
            n,
            idle: AtomicUsize::new(0),
            park: Mutex::new(()),
            cond: Condvar::new(),
            steals: AtomicU64::new(0),
        }
    }

    /// Pops the next node for worker `w`: own deque first (newest),
    /// then steal (oldest) from the other deques, then park. Returns
    /// `None` when the whole graph has finished.
    fn acquire(&self, w: usize) -> Option<(usize, bool)> {
        loop {
            if self.finished.load(Ordering::Acquire) >= self.n {
                return None;
            }
            if let Some(i) = self.deques[w].lock().expect("deque poisoned").pop_back() {
                return Some((i, false));
            }
            if let Some(i) = self.try_steal(w) {
                return Some((i, true));
            }
            self.park(w);
        }
    }

    fn try_steal(&self, w: usize) -> Option<usize> {
        let k = self.deques.len();
        for v in 1..k {
            let victim = (w + v) % k;
            if let Some(i) = self.deques[victim]
                .lock()
                .expect("deque poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        None
    }

    /// Marks node `i` done and enqueues every node it unblocked onto
    /// worker `w`'s own deque, waking parked workers if any.
    fn complete(&self, w: usize, i: usize, dependents: &[Vec<usize>]) {
        let mut released = 0usize;
        for &dep in &dependents[i] {
            if self.pending[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                self.pending[dep].store(SCHEDULED, Ordering::Relaxed);
                self.deques[w]
                    .lock()
                    .expect("deque poisoned")
                    .push_back(dep);
                released += 1;
            }
        }
        let done = self.finished.fetch_add(1, Ordering::AcqRel) + 1;
        if done >= self.n || (released > 0 && self.idle.load(Ordering::SeqCst) > 0) {
            let _g = self.park.lock().expect("park lock poisoned");
            self.cond.notify_all();
        }
    }

    /// Parks worker `w` until new work may exist. The last worker to park
    /// while the graph is unfinished has proven a dependency cycle (no
    /// node running, none ready): it breaks the cycle deterministically at
    /// the lowest-index stuck node and continues.
    fn park(&self, w: usize) {
        self.idle.fetch_add(1, Ordering::SeqCst);
        let mut g = self.park.lock().expect("park lock poisoned");
        loop {
            if self.finished.load(Ordering::Acquire) >= self.n {
                break;
            }
            if self
                .deques
                .iter()
                .any(|d| !d.lock().expect("deque poisoned").is_empty())
            {
                break;
            }
            if self.idle.load(Ordering::SeqCst) == self.deques.len() {
                // Every worker is idle and every deque is empty, so no
                // pending counter can move: the scan below is exact.
                if let Some(i) = (0..self.n)
                    .find(|&i| self.pending[i].load(Ordering::Relaxed) != SCHEDULED)
                {
                    self.pending[i].store(SCHEDULED, Ordering::Relaxed);
                    self.deques[w].lock().expect("deque poisoned").push_back(i);
                    self.cond.notify_all();
                    break;
                }
                // All nodes scheduled; stragglers are mid-`complete`. Fall
                // through to the timed wait for the final finish count.
            }
            // Timed wait: a bounded backstop against any lost-wakeup
            // window between the deque re-check and the wait.
            let (guard, _timeout) = self
                .cond
                .wait_timeout(g, Duration::from_micros(200))
                .expect("park lock poisoned");
            g = guard;
        }
        drop(g);
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8] {
            let (out, stats) = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
            assert!(stats.workers >= 1 && stats.utilization() <= 1.01);
            assert_eq!(stats.requested, workers.max(1));
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let (out, _) = par_map(&[] as &[u8], 8, |_, &x| x);
        assert!(out.is_empty());
        let (out, stats) = par_map(&[7u8], 8, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(stats.workers, 1, "one item never needs more than one worker");
        assert_eq!(stats.requested, 8, "the request is still reported");
    }

    #[test]
    fn run_dag_respects_dependencies() {
        // Chain with a diamond: 0 ← 1 ← {2, 3} ← 4.
        let deps = vec![vec![], vec![0], vec![1], vec![1], vec![2, 3]];
        let clock = AtomicU64::new(0);
        for workers in [1, 2, 8] {
            let (stamps, _) = run_dag(5, &deps, workers, |_| {
                clock.fetch_add(1, Ordering::SeqCst)
            });
            for (i, ds) in deps.iter().enumerate() {
                for &d in ds {
                    assert!(
                        stamps[d] < stamps[i],
                        "workers={workers}: node {i} ran before its dependency {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_dag_sequential_is_lowest_index_topological() {
        let deps = vec![vec![2], vec![], vec![], vec![0, 1]];
        let order = Mutex::new(Vec::new());
        run_dag(4, &deps, 1, |i| order.lock().unwrap().push(i));
        // Ready sets evolve as {1,2} → pop 1 → {2} → pop 2 → {0} → {3}.
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 0, 3]);
        assert_eq!(topo_order(&deps), vec![1, 2, 0, 3]);
    }

    #[test]
    fn run_dag_breaks_cycles_instead_of_deadlocking() {
        // 0 ⇄ 1 cycle plus 2 depending on both; self-loop on 3.
        let deps = vec![vec![1], vec![0], vec![0, 1], vec![3]];
        for workers in [1, 4] {
            let (out, _) = run_dag(4, &deps, workers, |i| i);
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
        assert_eq!(topo_order(&deps), vec![3, 0, 1, 2]);
    }

    #[test]
    fn work_stealing_attributes_steals() {
        // A wide independent graph with slow jobs: with several workers
        // the seeded round-robin spread means most nodes run un-stolen,
        // but the counter must stay coherent (0 ≤ steals ≤ n).
        let deps = vec![Vec::new(); 64];
        let (_, stats) = run_dag_tagged(64, &deps, 4, |_, _| {
            std::thread::yield_now();
        });
        assert!(stats.steals <= 64);
        assert_eq!(stats.tasks, 64);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn plan_workers_policy() {
        // Explicit sequential stays sequential, whatever the work.
        assert_eq!(plan_workers(1, u64::MAX, false), 1);
        assert_eq!(plan_workers(0, u64::MAX, false), 1);
        // Forcing bypasses every cap, including host CPUs.
        assert_eq!(plan_workers(8, 0, true), 8);
        // Tiny work never fans out.
        assert_eq!(plan_workers(8, 0, false), 1);
        let planned = plan_workers(8, u64::MAX, false);
        if host_cpus() == 1 {
            assert_eq!(planned, 1, "a 1-CPU host always runs inline");
        } else {
            assert!(planned >= 2 && planned <= host_cpus().min(8));
        }
    }

    #[test]
    fn topo_order_covers_every_node_once() {
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2], vec![3], vec![]];
        let order = topo_order(&deps);
        let mut seen = vec![false; deps.len()];
        let mut pos = vec![0usize; deps.len()];
        for (k, &i) in order.iter().enumerate() {
            assert!(!seen[i]);
            seen[i] = true;
            pos[i] = k;
        }
        assert!(seen.iter().all(|&b| b));
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                assert!(pos[d] < pos[i], "{d} must precede {i}");
            }
        }
    }
}
