//! The work-scheduling layer: std-only scoped-thread pools for the
//! per-function pipeline phases.
//!
//! Two primitives:
//!
//! * [`par_map`] — an order-preserving parallel map for phases whose
//!   per-function jobs are independent (L1, L2, HL, the adaptation tests).
//! * [`run_dag`] — a dependency-respecting scheduler for phases where a
//!   function's job must not start before its callees' jobs finish (the WA
//!   phase, whose call-graph ordering `adapt_concrete_callers` and mixed
//!   level calls induce).
//!
//! Both run jobs inline on the caller's thread when `workers <= 1`, so the
//! sequential pipeline and the parallel pipeline execute the *same*
//! closures — byte-identical output is then a property of the closures
//! (per-function seeds, name-keyed result collection), not of scheduling
//! luck. Both report [`PoolStats`] for the utilization numbers in
//! [`crate::stats::PipelineStats`].

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worker-pool occupancy of one phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Workers the phase ran with.
    pub workers: usize,
    /// Sum of per-worker busy time.
    pub busy: Duration,
    /// Wall-clock time of the phase.
    pub wall: Duration,
}

impl PoolStats {
    /// Fraction of worker capacity spent busy, in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers.max(1) as f64;
        if capacity <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        }
    }
}

/// Applies `job` to every item index, returning results in item order.
///
/// With `workers <= 1` the jobs run inline, in order, on the calling
/// thread. Otherwise `workers` scoped threads claim indices from a shared
/// counter; results land in their input slot, so the output order (and any
/// fold over it, e.g. first-error selection) is independent of thread
/// interleaving.
pub fn par_map<T, R, F>(items: &[T], workers: usize, job: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        let wall = start.elapsed();
        return (
            out,
            PoolStats {
                workers: 1,
                busy: wall,
                wall,
            },
        );
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut busy = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        mine.push((i, job(i, item)));
                    }
                    (mine, t0.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (mine, worker_busy) = h.join().expect("pool worker panicked");
            busy += worker_busy;
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
    });
    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect();
    (
        out,
        PoolStats {
            workers,
            busy,
            wall: start.elapsed(),
        },
    )
}

/// Shared scheduling state of [`run_dag`].
struct DagState {
    /// Unresolved dependency count per node; `usize::MAX` marks scheduled.
    indegree: Vec<usize>,
    /// Min-heap of ready node indices (lowest index first, so the
    /// sequential path and tie-breaks are deterministic).
    ready: BinaryHeap<std::cmp::Reverse<usize>>,
    running: usize,
    finished: usize,
}

impl DagState {
    /// When no node is ready but work remains and nothing is running, the
    /// dependency graph has a cycle (e.g. mutually recursive functions).
    /// Break it deterministically: force-ready the lowest-index blocked
    /// node. Jobs must therefore tolerate running before such a callee —
    /// the pipeline guarantees this by testing against complete contexts.
    fn break_cycle_if_stuck(&mut self, n: usize) {
        if !self.ready.is_empty() || self.running > 0 || self.finished >= n {
            return;
        }
        if let Some(i) = (0..n).find(|&i| self.indegree[i] != usize::MAX) {
            self.indegree[i] = usize::MAX;
            self.ready.push(std::cmp::Reverse(i));
        }
    }
}

/// Runs one job per node of a dependency graph, never starting a node
/// before all of `deps[node]` have finished. Results are returned in node
/// order. Ready nodes are dispatched lowest-index-first; with
/// `workers <= 1` this degenerates to a deterministic topological order on
/// the calling thread.
///
/// Cycles (legal in C call graphs: recursion) are broken deterministically
/// at the lowest-index stuck node rather than deadlocking.
///
/// # Panics
///
/// Panics if `deps.len() != n` or an edge index is out of range.
pub fn run_dag<R, F>(n: usize, deps: &[Vec<usize>], workers: usize, job: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert_eq!(deps.len(), n, "run_dag: deps length mismatch");
    let start = Instant::now();
    // Reverse adjacency: which nodes each node unblocks.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < n, "run_dag: dependency index out of range");
            if d == i {
                continue; // self-recursion imposes no ordering
            }
            dependents[d].push(i);
            indegree[i] += 1;
        }
    }
    let mut state = DagState {
        indegree,
        ready: (0..n)
            .filter(|&i| deps[i].iter().all(|&d| d == i))
            .map(std::cmp::Reverse)
            .collect(),
        running: 0,
        finished: 0,
    };
    for std::cmp::Reverse(i) in state.ready.iter().copied().collect::<Vec<_>>() {
        state.indegree[i] = usize::MAX;
    }
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        while state.finished < n {
            state.break_cycle_if_stuck(n);
            let std::cmp::Reverse(i) = state
                .ready
                .pop()
                .expect("a node is always ready after cycle breaking");
            out[i] = Some(job(i));
            state.finished += 1;
            for &dep in &dependents[i] {
                if state.indegree[dep] != usize::MAX {
                    state.indegree[dep] -= 1;
                    if state.indegree[dep] == 0 {
                        state.indegree[dep] = usize::MAX;
                        state.ready.push(std::cmp::Reverse(dep));
                    }
                }
            }
        }
        let wall = start.elapsed();
        let out: Vec<R> = out
            .into_iter()
            .map(|s| s.expect("every node scheduled"))
            .collect();
        return (
            out,
            PoolStats {
                workers: 1,
                busy: wall,
                wall,
            },
        );
    }
    let shared = Mutex::new(state);
    let cond = Condvar::new();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut busy = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    let mut mine: Vec<(usize, R)> = Vec::new();
                    let mut guard = shared.lock().expect("dag lock poisoned");
                    loop {
                        if guard.finished >= n {
                            break;
                        }
                        guard.break_cycle_if_stuck(n);
                        let Some(std::cmp::Reverse(i)) = guard.ready.pop() else {
                            guard = cond.wait(guard).expect("dag lock poisoned");
                            continue;
                        };
                        guard.running += 1;
                        drop(guard);
                        let r = job(i);
                        mine.push((i, r));
                        guard = shared.lock().expect("dag lock poisoned");
                        guard.running -= 1;
                        guard.finished += 1;
                        for &dep in &dependents[i] {
                            if guard.indegree[dep] != usize::MAX {
                                guard.indegree[dep] -= 1;
                                if guard.indegree[dep] == 0 {
                                    guard.indegree[dep] = usize::MAX;
                                    guard.ready.push(std::cmp::Reverse(dep));
                                }
                            }
                        }
                        cond.notify_all();
                    }
                    drop(guard);
                    cond.notify_all();
                    (mine, t0.elapsed())
                })
            })
            .collect();
        for h in handles {
            let (mine, worker_busy) = h.join().expect("dag worker panicked");
            busy += worker_busy;
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
    });
    let out: Vec<R> = slots
        .into_iter()
        .map(|s| s.expect("every node scheduled exactly once"))
        .collect();
    (
        out,
        PoolStats {
            workers,
            busy,
            wall: start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 8] {
            let (out, stats) = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
            assert!(stats.workers >= 1 && stats.utilization() <= 1.0);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let (out, _) = par_map(&[] as &[u8], 8, |_, &x| x);
        assert!(out.is_empty());
        let (out, stats) = par_map(&[7u8], 8, |_, &x| x + 1);
        assert_eq!(out, vec![8]);
        assert_eq!(stats.workers, 1, "one item never needs more than one worker");
    }

    #[test]
    fn run_dag_respects_dependencies() {
        // Chain with a diamond: 0 ← 1 ← {2, 3} ← 4.
        let deps = vec![vec![], vec![0], vec![1], vec![1], vec![2, 3]];
        let clock = AtomicU64::new(0);
        for workers in [1, 2, 8] {
            let (stamps, _) = run_dag(5, &deps, workers, |_| {
                clock.fetch_add(1, Ordering::SeqCst)
            });
            for (i, ds) in deps.iter().enumerate() {
                for &d in ds {
                    assert!(
                        stamps[d] < stamps[i],
                        "workers={workers}: node {i} ran before its dependency {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_dag_sequential_is_lowest_index_topological() {
        let deps = vec![vec![2], vec![], vec![], vec![0, 1]];
        let order = Mutex::new(Vec::new());
        run_dag(4, &deps, 1, |i| order.lock().unwrap().push(i));
        // Ready sets evolve as {1,2} → pop 1 → {2} → pop 2 → {0} → {3}.
        assert_eq!(*order.lock().unwrap(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn run_dag_breaks_cycles_instead_of_deadlocking() {
        // 0 ⇄ 1 cycle plus 2 depending on both; self-loop on 3.
        let deps = vec![vec![1], vec![0], vec![0, 1], vec![3]];
        for workers in [1, 4] {
            let (out, _) = run_dag(4, &deps, workers, |i| i);
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
    }
}
