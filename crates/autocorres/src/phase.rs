//! The phase graph: L1, L2, HL, and WA as uniform nodes.
//!
//! Each pipeline phase implements the [`Phase`] trait — a name, a static
//! dependency shape ([`Dep`]), a content digest of everything its
//! per-function job consumes, and the job itself. The driver
//! ([`run_phases`]) groups the functions into cost-balanced *batches*
//! (contiguous slices of a deterministic topological order of the call
//! graph, sized from the Simpl term sizes so each phase yields about
//! `workers × 4` scheduled units), expands the phase list into one node
//! per `(phase, batch)` pair plus one barrier node per phase, wires the
//! edges from the declared [`DepScope`]s, and hands the whole graph to
//! the generic [`crate::schedule::run_dag_tagged`] work-stealing
//! scheduler. There is no barrier between phases: a batch's L2 node runs
//! the moment its own dependencies finish, even while other batches are
//! still in L1. No phase owns its own scheduling code: adding a phase
//! means adding a `Phase` impl and listing it in [`PHASES`].
//!
//! Batching is pure scheduling: results still land in per-`(phase,
//! function)` slots, cache hits are still counted per function, and error
//! selection still follows the fixed per-phase orders — so output bytes
//! are identical at every worker count and batch shape. The partition is
//! safe by construction: within the topological order every callee sits
//! in the same batch or an earlier one, and a batch executes its own
//! functions in that order, so `Callees` edges never point forward
//! (recursion cycles excepted — the scheduler breaks those
//! deterministically, exactly as the per-function graph did).
//!
//! # Content-addressed incremental recomputation
//!
//! Every node computes a 128-bit *input digest* before running: a
//! double-pass hash over the function's typed + Simpl terms, the global
//! environment (layouts, globals, the signature table), the normalized
//! driver options, and — for the exec-testing phases — the transitive
//! callee cone. The [`ArtifactStore`] (owned by [`crate::Session`]) maps
//! `(phase, function, input_digest)` to the artifact produced last time;
//! a hit returns the cached artifact without re-running the job. Because
//! every job is a deterministic pure function of exactly the digested
//! inputs, a cache hit is byte-identical to a re-run — the incremental
//! test suite asserts this.
//!
//! Soundness (DESIGN.md §7): artifacts store [`kernel::Thm`] values that
//! were constructed through the kernel on the original run; the cache can
//! skip *re-construction* and *re-replay* of an unchanged derivation, but
//! it can never mint a theorem — `Thm` has no public constructor.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ir::diag::{Diag, DiagKind};
use ir::ty::Ty;
use kernel::{CheckCtx, Thm};
use monadic::{MonadicFn, Prog, ProgramCtx};
use simpl::stmt::{SimplProgram, SimplStmt};

use crate::pipeline::{derive_seed, Options, Output, PhaseTheorems};
use crate::schedule::{plan_workers, run_dag_tagged, topo_order, PoolStats, TASKS_PER_WORKER};
use crate::stats::{PhaseStat, PipelineStats};

/// Which nodes of a dependency phase a node waits for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepScope {
    /// The dependency phase's node for the *same* function.
    SameFn,
    /// The dependency phase's nodes for the function's direct callees
    /// (per the static call graph; recursion edges impose no ordering).
    Callees,
    /// The dependency phase's barrier — every function's node.
    AllFns,
}

/// One declared dependency of a phase.
#[derive(Clone, Copy, Debug)]
pub struct Dep {
    /// Name of the phase depended on.
    pub phase: &'static str,
    /// Which of its nodes to wait for.
    pub scope: DepScope,
}

/// A per-function phase result.
#[derive(Clone, Debug)]
pub enum Artifact {
    /// L1 output: the monadic function plus its `l1corres` theorem.
    L1 {
        /// Translated function (locals in state).
        fun: MonadicFn,
        /// The `l1corres` theorem.
        thm: Thm,
    },
    /// L2 translation output (no theorem yet; see [`Artifact::L2Thm`]).
    L2Fn(MonadicFn),
    /// The L2 `refines` theorem (depends on the complete L1/L2 contexts).
    L2Thm(Thm),
    /// HL output; `thm` is `None` for concrete-kept functions.
    Hl {
        /// Heap-abstracted (or concrete-kept) function.
        fun: MonadicFn,
        /// The `abs_h_stmt` theorem, when abstracted.
        thm: Option<Thm>,
    },
    /// WA output; `thm` is `None` for non-selected functions.
    Wa {
        /// Word-abstracted (or passed-through) function.
        fun: MonadicFn,
        /// The `abs_w_stmt` theorem, when selected.
        thm: Option<Thm>,
    },
    /// Caller adaptation; `None` when the function needed no rewriting.
    Adapt(Option<AdaptedFn>),
    /// Abstract-interpretation result: the guard/lint report plus the
    /// discharge theorems. Empty when `--no-absint` disabled the phase.
    Absint(AbsintFn),
}

/// The abstract-interpretation artifact for one function.
#[derive(Clone, Debug, Default)]
pub struct AbsintFn {
    /// Guard verdicts and lints from the flow-sensitive analysis.
    pub report: absint::FnAbsint,
    /// One `absint_discharge` theorem per statically proved guard, keyed
    /// by the guard's index in `report.guards`. Kept separate from the
    /// refinement theorems: discharge theorems certify guard validity,
    /// not translation correctness.
    pub thms: Vec<(usize, Thm)>,
}

/// An adapted concrete caller: the rewritten body and its theorem.
#[derive(Clone, Debug)]
pub struct AdaptedFn {
    /// Body with call sites lifted/re-concretised.
    pub body: Prog,
    /// The adaptation's `ExecTested` refinement theorem.
    pub thm: Thm,
}

/// A stored phase result: the artifact plus the input digest it was
/// computed from (the store key's digest component, kept for debugging).
#[derive(Debug)]
pub struct PhaseArtifact {
    /// 128-bit content digest of the inputs that produced `value`.
    pub digest: u128,
    /// The result.
    pub value: Artifact,
}

/// A node failure: the diagnostic plus whether this node is the *root*
/// cause (`true`) or merely downstream of another failed node (`false`).
/// Error reporting picks the first root failure in phase order.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub diag: Diag,
    /// Root cause (as opposed to inherited from a failed dependency)?
    pub root: bool,
}

impl From<Diag> for Failure {
    fn from(diag: Diag) -> Failure {
        Failure { diag, root: true }
    }
}

impl Failure {
    fn inherit(&self) -> Failure {
        Failure {
            diag: self.diag.clone(),
            root: false,
        }
    }
}

type NodeResult = Result<Arc<PhaseArtifact>, Failure>;

/// A pipeline phase: one node per function, scheduled generically.
pub trait Phase: Sync {
    /// Unique phase name (also the artifact-store key component).
    fn name(&self) -> &'static str;
    /// Dependency shape, wired into the node graph by [`run_phases`].
    fn deps(&self) -> &'static [Dep];
    /// Content digest of everything [`Phase::run`] consumes for function
    /// `f` — called after this node's dependencies completed, so it may
    /// read shared contexts.
    ///
    /// # Errors
    ///
    /// Propagates failures of the dependencies the digest covers.
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure>;
    /// Produces the function's artifact.
    ///
    /// # Errors
    ///
    /// A root `Failure` for genuine phase errors, an inherited one when a
    /// dependency already failed.
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure>;
}

/// The phase list, in pipeline order. Order matters only for error
/// reporting (first failing phase wins) and stats display; scheduling is
/// purely dependency-driven.
pub static PHASES: &[&dyn Phase] = &[
    &L1Phase,
    &L2TrPhase,
    &L2ThmPhase,
    &HlPhase,
    &WaPhase,
    &AdaptPhase,
    &AbsintPhase,
];

fn phase_index(name: &str) -> usize {
    PHASES
        .iter()
        .position(|p| p.name() == name)
        .expect("dependency on an unknown phase")
}

// ---- digests ----------------------------------------------------------------

/// Two independent fixed-key `DefaultHasher` passes, concatenated to 128
/// bits (the same construction as the kernel's `ReplayCache`).
fn digest128(write: impl Fn(&mut DefaultHasher)) -> u128 {
    fn pass(seed: u64, write: &impl Fn(&mut DefaultHasher)) -> u64 {
        let mut h = DefaultHasher::new();
        seed.hash(&mut h);
        write(&mut h);
        h.finish()
    }
    (u128::from(pass(0x9E37_79B9_7F4A_7C15, &write)) << 64)
        | u128::from(pass(0xC2B2_AE3D_27D4_EB4F, &write))
}

/// Digest of the normalized [`Options`]: the per-function selections (both
/// `BTreeSet`s iterate sorted, so insertion order cannot leak), the custom
/// word rules by identity, the *effective* L2 trial budget (`0` and the
/// default `80` hash equal), and the seed. `workers` and `cache_dir` are
/// deliberately excluded — neither the worker count nor where artifacts
/// are persisted ever affects output bytes. Custom word rules hash by
/// *pointer* identity, so they also (soundly) defeat cross-process
/// warm starts: a fresh process's rule `Arc`s never digest equal.
#[must_use]
pub fn options_digest(opts: &Options) -> u128 {
    digest128(|h| {
        for f in &opts.concrete_fns {
            f.hash(h);
        }
        0xffu8.hash(h);
        match &opts.word_abstract_fns {
            None => 0u8.hash(h),
            Some(s) => {
                1u8.hash(h);
                for f in s {
                    f.hash(h);
                }
            }
        }
        0xffu8.hash(h);
        opts.custom_word_rules.len().hash(h);
        for r in &opts.custom_word_rules {
            (Arc::as_ptr(r) as *const () as usize).hash(h);
        }
        effective_l2_trials(opts).hash(h);
        opts.seed.hash(h);
    })
}

/// The L2 differential-test budget with the `0 = default` normalization.
pub(crate) fn effective_l2_trials(opts: &Options) -> u32 {
    if opts.l2_trials == 0 {
        80
    } else {
        opts.l2_trials
    }
}

// ---- the shared per-run context ---------------------------------------------

/// Per-phase wall/busy clocks, accumulated lock-free by the node jobs.
struct PhaseClock {
    /// Sum of node durations (nanoseconds).
    busy: AtomicU64,
    /// Earliest node start, nanoseconds since the graph epoch.
    start: AtomicU64,
    /// Latest node end, nanoseconds since the graph epoch.
    end: AtomicU64,
    /// Nodes answered from the artifact store.
    cached: AtomicUsize,
    /// Batch nodes of this phase executed by a worker other than the one
    /// that made them ready.
    steals: AtomicU64,
}

impl Default for PhaseClock {
    fn default() -> PhaseClock {
        PhaseClock {
            busy: AtomicU64::new(0),
            start: AtomicU64::new(u64::MAX),
            end: AtomicU64::new(0),
            cached: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }
}

/// Everything the phase jobs share: the inputs, the precomputed digests,
/// the per-node result slots, and the lazily-built cross-function contexts
/// of the barrier-dependent phases.
pub struct PhaseCx<'a> {
    /// The typed C program.
    pub typed: &'a cparser::TProgram,
    /// The Simpl translation (trusted front end output).
    pub sp: &'a SimplProgram,
    /// Driver options.
    pub opts: &'a Options,
    /// Base kernel context (struct layouts only).
    pub cx: CheckCtx,
    /// Function names, sorted — node index order for every phase.
    pub names: Vec<String>,
    /// For each name index, the index into `typed.functions`.
    pub typed_idx: Vec<usize>,
    /// Static call graph over name indices (from the Simpl bodies).
    pub callees: Vec<Vec<usize>>,
    /// Per-function term digest (typed def + Simpl translation).
    pub fn_digests: Vec<u128>,
    /// Per-function transitive-callee cone digest (includes the function).
    pub cone_digests: Vec<u128>,
    /// Digest of layouts, globals, and the full signature table.
    pub env_digest: u128,
    /// Digest of the normalized options.
    pub opts_digest: u128,
    slots: Vec<OnceLock<NodeResult>>,
    /// Per-function "some node was recomputed" flags (0/1).
    dirty: Vec<AtomicUsize>,
    l2sh: OnceLock<Result<L2Shared, Failure>>,
    wash: OnceLock<Result<WaShared, Failure>>,
    adsh: OnceLock<Result<AdaptShared, Failure>>,
    clocks: Vec<PhaseClock>,
    epoch: Instant,
}

/// L2-theorem shared state: the complete L1/L2 contexts and the heap
/// types the differential tests generate states from.
struct L2Shared {
    l1ctx: ProgramCtx,
    l2ctx: ProgramCtx,
    heap_types: Vec<Ty>,
    /// Digest of `heap_types` — part of the L2-theorem input digest, since
    /// the generated test states depend on it.
    ht_digest: u128,
}

/// WA shared state: the complete HL context, resolved options, and the
/// kernel context extended with the abstracted signature table.
struct WaShared {
    hlctx: ProgramCtx,
    wa_opts: wordabs::WaOptions,
    check_ctx: CheckCtx,
}

/// Adaptation shared state: the final WA context (adapted bodies already
/// swapped in), the per-function plans, and the HL heap types the
/// adaptation tests use.
struct AdaptShared {
    wactx: ProgramCtx,
    plans: BTreeMap<String, (Prog, Prog)>,
    heap_types: Vec<Ty>,
    ht_digest: u128,
}

impl<'a> PhaseCx<'a> {
    /// Builds the shared context: sorted name order, the static call
    /// graph, and all per-function digests.
    #[must_use]
    pub fn new(typed: &'a cparser::TProgram, sp: &'a SimplProgram, opts: &'a Options) -> Self {
        let names: Vec<String> = sp.fns.keys().cloned().collect();
        let name_idx: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let typed_idx: Vec<usize> = names
            .iter()
            .map(|n| {
                typed
                    .functions
                    .iter()
                    .position(|f| &f.name == n)
                    .expect("simpl translates exactly the typed functions")
            })
            .collect();
        let callees: Vec<Vec<usize>> = names
            .iter()
            .map(|n| {
                let mut out = BTreeSet::new();
                collect_calls(&sp.fns[n].body, &mut out);
                out.iter()
                    .filter_map(|c| name_idx.get(c.as_str()).copied())
                    .collect()
            })
            .collect();
        let fn_digests: Vec<u128> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                digest128(|h| {
                    typed.functions[typed_idx[i]].hash(h);
                    sp.fns[n].hash(h);
                })
            })
            .collect();
        let cone_digests: Vec<u128> = (0..names.len())
            .map(|i| {
                // BFS over transitive callees, cycle-tolerant; hash the
                // reached functions' digests in deterministic index order.
                let mut seen = BTreeSet::from([i]);
                let mut frontier = vec![i];
                while let Some(j) = frontier.pop() {
                    for &c in &callees[j] {
                        if seen.insert(c) {
                            frontier.push(c);
                        }
                    }
                }
                digest128(|h| {
                    for &j in &seen {
                        names[j].hash(h);
                        fn_digests[j].hash(h);
                    }
                })
            })
            .collect();
        let env_digest = digest128(|h| {
            sp.tenv.hash(h);
            sp.globals.hash(h);
            typed.globals.hash(h);
            for (n, f) in &sp.fns {
                n.hash(h);
                f.params.hash(h);
                f.ret_ty.hash(h);
            }
        });
        let n_slots = PHASES.len() * names.len();
        let mut slots = Vec::with_capacity(n_slots);
        slots.resize_with(n_slots, OnceLock::new);
        let mut dirty = Vec::with_capacity(names.len());
        dirty.resize_with(names.len(), || AtomicUsize::new(0));
        let mut clocks = Vec::with_capacity(PHASES.len());
        clocks.resize_with(PHASES.len(), PhaseClock::default);
        PhaseCx {
            typed,
            sp,
            opts,
            cx: CheckCtx {
                tenv: sp.tenv.clone(),
                ..CheckCtx::default()
            },
            names,
            typed_idx,
            callees,
            fn_digests,
            cone_digests,
            env_digest,
            opts_digest: options_digest(opts),
            slots,
            dirty,
            l2sh: OnceLock::new(),
            wash: OnceLock::new(),
            adsh: OnceLock::new(),
            clocks,
            epoch: Instant::now(),
        }
    }

    fn slot_id(&self, phase: usize, f: usize) -> usize {
        phase * self.names.len() + f
    }

    /// The finished artifact of `(phase, f)` — panics if scheduling let us
    /// read it before its node ran (a driver bug, not a user error).
    fn artifact(&self, phase: &str, f: usize) -> Result<Arc<PhaseArtifact>, Failure> {
        let id = self.slot_id(phase_index(phase), f);
        match self.slots[id].get().expect("dependency node finished") {
            Ok(a) => Ok(Arc::clone(a)),
            Err(e) => Err(e.inherit()),
        }
    }

    /// A plain per-function digest: the phase name, the function's own
    /// term, the environment, and the options.
    fn fn_scope_digest(&self, phase: &str, f: usize) -> u128 {
        let fd = self.fn_digests[f];
        let (env, opts) = (self.env_digest, self.opts_digest);
        digest128(move |h| {
            phase.hash(h);
            fd.hash(h);
            env.hash(h);
            opts.hash(h);
        })
    }

    /// A cone digest for the exec-testing phases: like
    /// [`PhaseCx::fn_scope_digest`] but covering the transitive callee
    /// cone (tests execute calls) plus any phase-shared extra.
    fn cone_scope_digest(&self, phase: &str, f: usize, extra: u128) -> u128 {
        let cd = self.cone_digests[f];
        let (env, opts) = (self.env_digest, self.opts_digest);
        digest128(move |h| {
            phase.hash(h);
            cd.hash(h);
            env.hash(h);
            opts.hash(h);
            extra.hash(h);
        })
    }

    fn l2_shared(&self) -> Result<&L2Shared, Failure> {
        self.l2sh
            .get_or_init(|| {
                let mut l1ctx = ProgramCtx {
                    tenv: self.sp.tenv.clone(),
                    globals: self.sp.globals.clone(),
                    ..ProgramCtx::default()
                };
                let mut l2ctx = ProgramCtx {
                    tenv: self.sp.tenv.clone(),
                    globals: self.sp.globals.clone(),
                    ..ProgramCtx::default()
                };
                for (i, name) in self.names.iter().enumerate() {
                    let Artifact::L1 { fun, .. } = &self.artifact("l1", i)?.value else {
                        unreachable!("l1 nodes produce L1 artifacts");
                    };
                    l1ctx.fns.insert(name.clone(), fun.clone());
                    let Artifact::L2Fn(fun) = &self.artifact("l2", i)?.value else {
                        unreachable!("l2 nodes produce L2Fn artifacts");
                    };
                    l2ctx.fns.insert(name.clone(), fun.clone());
                }
                let heap_types = crate::testing::heap_types_of(&l1ctx.tenv, &l1ctx);
                let ht = heap_types.clone();
                let ht_digest = digest128(move |h| ht.hash(h));
                Ok(L2Shared {
                    l1ctx,
                    l2ctx,
                    heap_types,
                    ht_digest,
                })
            })
            .as_ref()
            .map_err(Failure::inherit)
    }

    fn wa_shared(&self) -> Result<&WaShared, Failure> {
        self.wash
            .get_or_init(|| {
                let mut hlctx = ProgramCtx {
                    tenv: self.sp.tenv.clone(),
                    globals: self.sp.globals.clone(),
                    ..ProgramCtx::default()
                };
                for (i, name) in self.names.iter().enumerate() {
                    let Artifact::Hl { fun, .. } = &self.artifact("hl", i)?.value else {
                        unreachable!("hl nodes produce Hl artifacts");
                    };
                    hlctx.fns.insert(name.clone(), fun.clone());
                }
                let opts = self.opts;
                let wa_opts = wordabs::WaOptions {
                    abstract_fns: match &opts.word_abstract_fns {
                        Some(s) => Some(s.clone()),
                        // Never word-abstract concrete-kept functions by
                        // default.
                        None if opts.concrete_fns.is_empty() => None,
                        None => Some(
                            hlctx
                                .fns
                                .keys()
                                .filter(|n| !opts.concrete_fns.contains(*n))
                                .cloned()
                                .collect(),
                        ),
                    },
                    custom_rules: opts.custom_word_rules.clone(),
                    custom_trials: 1000,
                };
                let check_ctx = wordabs::wa_signatures(&self.cx, &hlctx, &wa_opts);
                Ok(WaShared {
                    hlctx,
                    wa_opts,
                    check_ctx,
                })
            })
            .as_ref()
            .map_err(Failure::inherit)
    }

    fn adapt_shared(&self) -> Result<&AdaptShared, Failure> {
        self.adsh
            .get_or_init(|| {
                let wash = self.wa_shared().map_err(|e| e.inherit())?;
                let mut wactx = ProgramCtx {
                    tenv: self.sp.tenv.clone(),
                    globals: self.sp.globals.clone(),
                    ..ProgramCtx::default()
                };
                for (i, name) in self.names.iter().enumerate() {
                    let Artifact::Wa { fun, .. } = &self.artifact("wa", i)?.value else {
                        unreachable!("wa nodes produce Wa artifacts");
                    };
                    wactx.fns.insert(name.clone(), fun.clone());
                }
                let plans: BTreeMap<String, (Prog, Prog)> =
                    plan_caller_adaptations(&wash.check_ctx, &wash.hlctx, &wactx)
                        .into_iter()
                        .map(|(n, new, old)| (n, (new, old)))
                        .collect();
                for (name, (new_body, _)) in &plans {
                    wactx
                        .fns
                        .get_mut(name)
                        .expect("planned adaptation of a known function")
                        .body = new_body.clone();
                }
                let heap_types =
                    crate::testing::heap_types_of(&wash.hlctx.tenv, &wash.hlctx);
                let ht = heap_types.clone();
                let ht_digest = digest128(move |h| ht.hash(h));
                Ok(AdaptShared {
                    wactx,
                    plans,
                    heap_types,
                    ht_digest,
                })
            })
            .as_ref()
            .map_err(Failure::inherit)
    }
}

/// Direct callees of a Simpl body.
fn collect_calls(s: &SimplStmt, out: &mut BTreeSet<String>) {
    match s {
        SimplStmt::Call { fname, .. } => {
            out.insert(fname.clone());
        }
        SimplStmt::Seq(a, b) | SimplStmt::TryCatch(a, b) | SimplStmt::Cond(_, a, b) => {
            collect_calls(a, out);
            collect_calls(b, out);
        }
        SimplStmt::While(_, b) | SimplStmt::Guard(_, _, b) => collect_calls(b, out),
        SimplStmt::Skip | SimplStmt::Basic(_) | SimplStmt::Throw => {}
    }
}

// ---- the seven phases -------------------------------------------------------

/// Simpl → monadic with state-stored locals (one kernel rule per
/// construct, Table 1).
struct L1Phase;

impl Phase for L1Phase {
    fn name(&self) -> &'static str {
        "l1"
    }
    fn deps(&self) -> &'static [Dep] {
        &[]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        Ok(cx.fn_scope_digest("l1", f))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let sf = &cx.sp.fns[&cx.names[f]];
        let out = crate::l1::l1_function(&cx.cx, sf).map_err(|e| {
            Failure::from(
                Diag::new(ir::diag::Phase::L1, DiagKind::Kernel, e.to_string())
                    .with_function(&cx.names[f]),
            )
        })?;
        Ok(Artifact::L1 {
            fun: out.fun,
            thm: out.thm,
        })
    }
}

/// L1 → L2 translation (lambda-bound locals, structured control flow).
struct L2TrPhase;

impl Phase for L2TrPhase {
    fn name(&self) -> &'static str {
        "l2"
    }
    fn deps(&self) -> &'static [Dep] {
        &[]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        Ok(cx.fn_scope_digest("l2", f))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let tf = &cx.typed.functions[cx.typed_idx[f]];
        let fun = crate::l2::l2_function(cx.typed, tf)
            .map_err(|d| Failure::from(d.with_function(&cx.names[f])))?;
        Ok(Artifact::L2Fn(fun))
    }
}

/// The L2 `refines` theorem (differential test against L1; executes
/// calls, so it needs the complete L1/L2 contexts).
struct L2ThmPhase;

impl Phase for L2ThmPhase {
    fn name(&self) -> &'static str {
        "l2thm"
    }
    fn deps(&self) -> &'static [Dep] {
        &[
            Dep {
                phase: "l1",
                scope: DepScope::AllFns,
            },
            Dep {
                phase: "l2",
                scope: DepScope::AllFns,
            },
        ]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        let sh = cx.l2_shared()?;
        Ok(cx.cone_scope_digest("l2thm", f, sh.ht_digest))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let sh = cx.l2_shared()?;
        let thm = crate::l2::l2_fn_theorem(
            &cx.cx,
            &sh.l2ctx,
            &sh.l1ctx,
            &sh.heap_types,
            &cx.names[f],
            effective_l2_trials(cx.opts),
            cx.opts.seed,
        )
        .map_err(Failure::from)?;
        Ok(Artifact::L2Thm(thm))
    }
}

/// Byte-level heap → typed split heaps (Sec 4).
struct HlPhase;

impl Phase for HlPhase {
    fn name(&self) -> &'static str {
        "hl"
    }
    fn deps(&self) -> &'static [Dep] {
        &[Dep {
            phase: "l2",
            scope: DepScope::SameFn,
        }]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        Ok(cx.fn_scope_digest("hl", f))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let name = &cx.names[f];
        let Artifact::L2Fn(fun) = &cx.artifact("l2", f)?.value else {
            unreachable!("l2 nodes produce L2Fn artifacts");
        };
        let hl_opts = heapabs::HlOptions {
            concrete_fns: cx.opts.concrete_fns.clone(),
        };
        if hl_opts.concrete_fns.contains(name) {
            Ok(Artifact::Hl {
                fun: heapabs::hl_keep_concrete(fun, &hl_opts),
                thm: None,
            })
        } else {
            let (fun, thm) = heapabs::hl_function(&cx.cx, fun, &hl_opts)
                .map_err(|e| Failure::from(Diag::from(e).with_function(name)))?;
            Ok(Artifact::Hl {
                fun,
                thm: Some(thm),
            })
        }
    }
}

/// Machine words → ideal `nat`/`int` arithmetic (Sec 3). Scheduled over
/// the call graph so a caller's job never starts before its callees'.
struct WaPhase;

impl Phase for WaPhase {
    fn name(&self) -> &'static str {
        "wa"
    }
    fn deps(&self) -> &'static [Dep] {
        &[
            Dep {
                phase: "hl",
                scope: DepScope::AllFns,
            },
            Dep {
                phase: "wa",
                scope: DepScope::Callees,
            },
        ]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        Ok(cx.cone_scope_digest("wa", f, 0))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let sh = cx.wa_shared()?;
        let name = &cx.names[f];
        let fun = &sh.hlctx.fns[name];
        if sh.wa_opts.selects(name) {
            let (fun, thm) = wordabs::wa_function_in(&sh.check_ctx, &sh.hlctx, fun, &sh.wa_opts)
                .map_err(|e| Failure::from(Diag::from(e).with_function(name)))?;
            Ok(Artifact::Wa {
                fun,
                thm: Some(thm),
            })
        } else {
            Ok(Artifact::Wa {
                fun: fun.clone(),
                thm: None,
            })
        }
    }
}

/// Caller adaptation (Sec 4.6's value direction): rewrite non-abstracted
/// callers of abstracted callees and exec-test each rewritten function
/// against the final context.
struct AdaptPhase;

impl Phase for AdaptPhase {
    fn name(&self) -> &'static str {
        "adapt"
    }
    fn deps(&self) -> &'static [Dep] {
        &[Dep {
            phase: "wa",
            scope: DepScope::AllFns,
        }]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        let sh = cx.adapt_shared()?;
        Ok(cx.cone_scope_digest("adapt", f, sh.ht_digest))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        let sh = cx.adapt_shared()?;
        let wash = cx.wa_shared()?;
        let name = &cx.names[f];
        let Some((new_body, old_body)) = sh.plans.get(name) else {
            return Ok(Artifact::Adapt(None));
        };
        let fn_seed = derive_seed(cx.opts.seed, name);
        let thm = kernel::rules::refine::exec_tested(
            &wash.check_ctx,
            new_body,
            old_body,
            60,
            fn_seed,
            || {
                test_adapted_fn(&sh.wactx, &wash.hlctx, name, &sh.heap_types, 60, fn_seed)
                    .map_err(|m| Diag::new(ir::diag::Phase::Wa, DiagKind::Testing, m))
            },
        )
        .map_err(|e| {
            Failure::from(
                Diag::new(ir::diag::Phase::Wa, DiagKind::Kernel, e.to_string())
                    .with_function(name),
            )
        })?;
        Ok(Artifact::Adapt(Some(AdaptedFn {
            body: new_body.clone(),
            thm,
        })))
    }
}

/// Abstract interpretation over the final (adapted) bodies: wrapping
/// intervals, nullness/validity, and reachability, feeding guard
/// discharge (one `absint_discharge` theorem per proved guard) and the
/// source-level lint passes. Purely observational — it never rewrites a
/// body or a spec, so disabling it cannot change translation output.
struct AbsintPhase;

impl Phase for AbsintPhase {
    fn name(&self) -> &'static str {
        "absint"
    }
    fn deps(&self) -> &'static [Dep] {
        &[Dep {
            phase: "adapt",
            scope: DepScope::AllFns,
        }]
    }
    fn input_digest(&self, cx: &PhaseCx<'_>, f: usize) -> Result<u128, Failure> {
        // The analysis reads the function's final body (callee kills are
        // name-only, so the own-function digest covers the inputs), but
        // adapted bodies depend on the callee cone — use the cone digest
        // like the other post-WA phases. `no_absint` is hashed here, not
        // in the options digest, so flipping it cannot invalidate the
        // translation phases' cache entries.
        let sh = cx.adapt_shared()?;
        let extra = sh.ht_digest ^ u128::from(cx.opts.no_absint);
        Ok(cx.cone_scope_digest("absint", f, extra))
    }
    fn run(&self, cx: &PhaseCx<'_>, f: usize) -> Result<Artifact, Failure> {
        if cx.opts.no_absint {
            return Ok(Artifact::Absint(AbsintFn::default()));
        }
        let sh = cx.adapt_shared()?;
        let wash = cx.wa_shared()?;
        let name = &cx.names[f];
        let fun = &sh.wactx.fns[name];
        let mut report = absint::analyze_fn(fun, &cx.sp.tenv);
        report.lints = absint::lint_fn(&cx.typed.functions[cx.typed_idx[f]]);
        let mut thms = Vec::new();
        for g in &report.guards {
            if let absint::Verdict::ProvedTrue { hyp } = &g.verdict {
                let thm = kernel::rules::refine::absint_discharge(
                    &wash.check_ctx,
                    hyp,
                    g.kind.clone(),
                    &g.guard,
                )
                .map_err(|e| {
                    Failure::from(
                        Diag::new(ir::diag::Phase::Absint, DiagKind::Kernel, e.to_string())
                            .with_function(name),
                    )
                })?;
                thms.push((g.index, thm));
            }
        }
        Ok(Artifact::Absint(AbsintFn { report, thms }))
    }
}

// ---- the artifact store -----------------------------------------------------

/// `(phase name, function name, input digest)` — the store key.
type ArtifactKey = (&'static str, String, u128);

/// Session-scoped artifact store: `(phase, function, input_digest)` →
/// artifact. Lookups that hit skip the phase job entirely.
#[derive(Default)]
pub struct ArtifactStore {
    map: Mutex<HashMap<ArtifactKey, Arc<PhaseArtifact>>>,
}

impl ArtifactStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Number of stored artifacts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("artifact store poisoned").len()
    }

    /// Is the store empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, phase: &'static str, name: &str, digest: u128) -> Option<Arc<PhaseArtifact>> {
        self.map
            .lock()
            .expect("artifact store poisoned")
            .get(&(phase, name.to_owned(), digest))
            .map(Arc::clone)
    }

    fn put(&self, phase: &'static str, name: &str, artifact: Arc<PhaseArtifact>) {
        self.map
            .lock()
            .expect("artifact store poisoned")
            .insert((phase, name.to_owned(), artifact.digest), artifact);
    }

    /// Every stored entry, sorted by key — the disk write-back snapshot
    /// (`crate::store`).
    pub(crate) fn entries(&self) -> Vec<(ArtifactKey, Arc<PhaseArtifact>)> {
        let mut v: Vec<(ArtifactKey, Arc<PhaseArtifact>)> = self
            .map
            .lock()
            .expect("artifact store poisoned")
            .iter()
            .map(|(k, a)| (k.clone(), Arc::clone(a)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Inserts an artifact loaded from disk. Identical to the pipeline's
    /// own `put`: the entry only ever *answers* a lookup whose freshly
    /// computed input digest matches, so a stale or mismatched preload is
    /// a miss, never a wrong answer.
    pub(crate) fn preload(&self, phase: &'static str, name: &str, artifact: Arc<PhaseArtifact>) {
        self.put(phase, name, artifact);
    }

    /// Audit-only (`audit` feature): every stored key, sorted.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_keys(&self) -> Vec<(&'static str, String, u128)> {
        let mut keys: Vec<ArtifactKey> = self
            .map
            .lock()
            .expect("artifact store poisoned")
            .keys()
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Audit-only (`audit` feature): reads a stored artifact by key.
    #[cfg(feature = "audit")]
    #[must_use]
    pub fn audit_get(
        &self,
        phase: &'static str,
        name: &str,
        digest: u128,
    ) -> Option<Arc<PhaseArtifact>> {
        self.get(phase, name, digest)
    }

    /// Audit-only (`audit` feature): overwrites the artifact stored under
    /// an existing key — the store-corruption attack. Returns `false`
    /// (storing nothing) when the key was never populated, so the attack
    /// cannot accidentally *grow* the store.
    #[cfg(feature = "audit")]
    pub fn audit_replace(
        &self,
        phase: &'static str,
        name: &str,
        digest: u128,
        value: Artifact,
    ) -> bool {
        let mut map = self.map.lock().expect("artifact store poisoned");
        let key = (phase, name.to_owned(), digest);
        if !map.contains_key(&key) {
            return false;
        }
        map.insert(key, Arc::new(PhaseArtifact { digest, value }));
        true
    }
}

// ---- the generic driver -----------------------------------------------------

/// The function batches one pipeline run schedules: contiguous slices of
/// a deterministic topological order of the call graph, cut so each batch
/// carries roughly `total cost / batch count` Simpl term-size units.
/// Shared by every phase, so `SameFn` edges map batch `k` to batch `k`
/// and — callees preceding callers in the order — `Callees` edges only
/// ever reach the same or an earlier batch (recursion cycles excepted).
pub(crate) struct BatchPlan {
    /// Function indices per batch, each in intra-batch execution order.
    batches: Vec<Vec<usize>>,
    /// Inverse map: `batch_of[f]` is the batch holding function `f`.
    batch_of: Vec<usize>,
    /// Summed Simpl term size over all functions — the pool-sizing
    /// estimate fed to [`plan_workers`] (per phase; multiply by the phase
    /// count for the whole graph).
    pub cost: u64,
}

impl BatchPlan {
    /// Cuts the call-graph topological order into at most
    /// `workers × TASKS_PER_WORKER` cost-balanced contiguous batches.
    pub(crate) fn new(cx: &PhaseCx<'_>, workers: usize) -> BatchPlan {
        let n = cx.names.len();
        let costs: Vec<u64> = cx
            .names
            .iter()
            .map(|name| cx.sp.fns[name].body.term_size() as u64 + 1)
            .collect();
        let cost: u64 = costs.iter().sum();
        let order = topo_order(&cx.callees);
        let max_batches = (workers * TASKS_PER_WORKER).clamp(1, n.max(1));
        let target = cost.div_ceil(max_batches as u64).max(1);
        let mut batches: Vec<Vec<usize>> = Vec::with_capacity(max_batches);
        let mut cur: Vec<usize> = Vec::new();
        let mut acc = 0u64;
        for &i in &order {
            cur.push(i);
            acc += costs[i];
            if acc >= target && batches.len() + 1 < max_batches {
                batches.push(std::mem::take(&mut cur));
                acc = 0;
            }
        }
        if !cur.is_empty() {
            batches.push(cur);
        }
        let mut batch_of = vec![0usize; n];
        for (k, b) in batches.iter().enumerate() {
            for &i in b {
                batch_of[i] = k;
            }
        }
        BatchPlan {
            batches,
            batch_of,
            cost,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.batches.len()
    }
}

/// Expands [`PHASES`] into the per-batch node graph (with one barrier
/// node per phase encoding `AllFns` edges linearly) and executes it on
/// the work-stealing [`run_dag_tagged`] scheduler. Results land in `cx`'s
/// per-function slots; per-phase clocks, cache and steal counters
/// accumulate in `cx`.
pub(crate) fn run_phases(
    cx: &PhaseCx<'_>,
    store: &ArtifactStore,
    plan: &BatchPlan,
    workers: usize,
) -> PoolStats {
    let nb = plan.len();
    if nb == 0 {
        return PoolStats {
            requested: workers.max(1),
            workers: 1,
            ..PoolStats::default()
        };
    }
    let stride = nb + 1;
    let n_nodes = PHASES.len() * stride;
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n_nodes];
    for (p, phase) in PHASES.iter().enumerate() {
        // Barrier: waits for every batch of its phase.
        deps[p * stride + nb].extend((0..nb).map(|k| p * stride + k));
        for d in phase.deps() {
            let q = phase_index(d.phase);
            for k in 0..nb {
                let node = p * stride + k;
                match d.scope {
                    DepScope::SameFn => {
                        // The partition is shared across phases, so the
                        // same function lives in the same batch there.
                        deps[node].insert(q * stride + k);
                    }
                    DepScope::AllFns => {
                        deps[node].insert(q * stride + nb);
                    }
                    DepScope::Callees => {
                        for &i in &plan.batches[k] {
                            for &c in &cx.callees[i] {
                                deps[node].insert(q * stride + plan.batch_of[c]);
                            }
                        }
                    }
                }
            }
        }
    }
    let deps: Vec<Vec<usize>> = deps
        .into_iter()
        .map(|s| s.into_iter().collect())
        .collect();
    let (_, pool) = run_dag_tagged(n_nodes, &deps, workers, |node, stolen| {
        let (p, k) = (node / stride, node % stride);
        if k == nb {
            // Barriers do no work.
            return;
        }
        let clock = &cx.clocks[p];
        if stolen {
            clock.steals.fetch_add(1, Ordering::Relaxed);
        }
        // Intra-batch order is the topological order, so a callee in the
        // same batch always runs before its caller.
        for &i in &plan.batches[k] {
            let t0 = Instant::now();
            let started = cx.epoch.elapsed().as_nanos() as u64;
            let result = exec_node(cx, store, p, i);
            clock
                .busy
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            clock.start.fetch_min(started, Ordering::Relaxed);
            clock
                .end
                .fetch_max(cx.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let _ = cx.slots[cx.slot_id(p, i)].set(result);
        }
    });
    pool
}

fn exec_node(cx: &PhaseCx<'_>, store: &ArtifactStore, p: usize, i: usize) -> NodeResult {
    let phase = PHASES[p];
    let digest = phase.input_digest(cx, i)?;
    let name = &cx.names[i];
    if let Some(hit) = store.get(phase.name(), name, digest) {
        cx.clocks[p].cached.fetch_add(1, Ordering::Relaxed);
        return Ok(hit);
    }
    cx.dirty[i].store(1, Ordering::Relaxed);
    let value = phase.run(cx, i)?;
    let artifact = Arc::new(PhaseArtifact { digest, value });
    store.put(phase.name(), name, Arc::clone(&artifact));
    Ok(artifact)
}

// ---- assembly ---------------------------------------------------------------

/// One phase's clock snapshot after the graph ran.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ClockSnap {
    /// Summed per-function job time, nanoseconds.
    pub busy: u64,
    /// Earliest job start, nanoseconds since the graph epoch.
    pub start: u64,
    /// Latest job end, nanoseconds since the graph epoch.
    pub end: u64,
    /// Per-function jobs answered from the artifact store.
    pub cached: usize,
    /// Batch nodes of the phase executed by a thief worker.
    pub steals: u64,
}

/// Per-phase outcome summary used by the pipeline to build the output and
/// the stats.
pub(crate) struct GraphRun {
    /// First root failure in phase order, if any.
    pub error: Option<Diag>,
    /// Per-phase clock snapshots, indexed like [`PHASES`].
    pub clocks: Vec<ClockSnap>,
    /// Functions with at least one recomputed (non-cached) node.
    pub dirty_fns: usize,
    /// Total nodes answered from the artifact store.
    pub cached_nodes: usize,
}

/// Collects errors/clock data after [`run_phases`] finished.
pub(crate) fn graph_outcome(cx: &PhaseCx<'_>) -> GraphRun {
    let n = cx.names.len();
    // Error selection mirrors the old strictly-phased pipeline: the first
    // failing function of the earliest failing phase, in that phase's
    // fixed iteration order (source order for the L2 phases, name order
    // elsewhere).
    let mut error: Option<Diag> = None;
    let mut fallback: Option<Diag> = None;
    for (p, phase) in PHASES.iter().enumerate() {
        let src_order = matches!(phase.name(), "l2" | "l2thm");
        let order: Vec<usize> = if src_order {
            let mut by_src: Vec<usize> = (0..n).collect();
            by_src.sort_by_key(|&i| cx.typed_idx[i]);
            by_src
        } else {
            (0..n).collect()
        };
        for i in order {
            if let Some(Err(f)) = cx.slots[p * n + i].get() {
                if f.root {
                    error = Some(f.diag.clone());
                    break;
                }
                if fallback.is_none() {
                    fallback = Some(f.diag.clone());
                }
            }
        }
        if error.is_some() {
            break;
        }
    }
    let error = error.or(fallback);
    let clocks: Vec<ClockSnap> = cx
        .clocks
        .iter()
        .map(|c| {
            let start = c.start.load(Ordering::Relaxed);
            ClockSnap {
                busy: c.busy.load(Ordering::Relaxed),
                start: if start == u64::MAX { 0 } else { start },
                end: c.end.load(Ordering::Relaxed),
                cached: c.cached.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
            }
        })
        .collect();
    let dirty_fns = cx
        .dirty
        .iter()
        .filter(|d| d.load(Ordering::Relaxed) != 0)
        .count();
    let cached_nodes = cx
        .clocks
        .iter()
        .map(|c| c.cached.load(Ordering::Relaxed))
        .sum();
    GraphRun {
        error,
        clocks,
        dirty_fns,
        cached_nodes,
    }
}

// ---- the pipeline entry point -----------------------------------------------

/// Runs the whole phase graph over `typed` and assembles the legacy
/// [`Output`] — theorem lists in the historical per-phase orders, stats
/// per phase — so the result is byte-identical to the old strictly-phased
/// driver (and to any cached re-run).
pub(crate) fn run_pipeline(
    typed: &cparser::TProgram,
    opts: &Options,
    store: &ArtifactStore,
) -> Result<Output, Diag> {
    let total_start = Instant::now();
    let requested = opts.workers.max(1);

    // Parse (trusted, sequential, never cached — the frontend is cheap
    // relative to the proof-producing phases).
    let parse_start = Instant::now();
    let sp = simpl::translate_program(typed)?;
    let parse_pool = PoolStats {
        requested: 1,
        workers: 1,
        busy: parse_start.elapsed(),
        wall: parse_start.elapsed(),
        steals: 0,
        tasks: 1,
    };
    let mut phases: Vec<PhaseStat> =
        vec![PhaseStat::from_pool("parse", parse_pool, sp.fns.len(), 0, 0)];

    let cx = PhaseCx::new(typed, &sp, opts);
    // Size the pool from the estimated work (term sizes × phase count),
    // then cut the batches for the width actually granted.
    let plan = BatchPlan::new(&cx, requested);
    let workers = plan_workers(
        requested,
        plan.cost.saturating_mul(PHASES.len() as u64),
        opts.force_pool,
    );
    let plan = if workers == requested {
        plan
    } else {
        BatchPlan::new(&cx, workers)
    };
    let graph_pool = run_phases(&cx, store, &plan, workers);
    let workers = graph_pool.workers;
    let outcome = graph_outcome(&cx);
    if let Some(d) = outcome.error {
        return Err(d);
    }
    let n = cx.names.len();

    // Theorem lists in the legacy orders: l1/hl/wa in sorted-name order,
    // l2 in source order, adaptation theorems appended to `wa`.
    let take = |phase: &str, i: usize| -> Arc<PhaseArtifact> {
        cx.artifact(phase, i).expect("graph reported success")
    };
    let mut l1_thms: Vec<(String, Thm)> = Vec::with_capacity(n);
    for i in 0..n {
        let Artifact::L1 { thm, .. } = &take("l1", i).value else {
            unreachable!("l1 nodes produce L1 artifacts");
        };
        l1_thms.push((cx.names[i].clone(), thm.clone()));
    }
    let mut src_order: Vec<usize> = (0..n).collect();
    src_order.sort_by_key(|&i| cx.typed_idx[i]);
    let mut l2_thms: Vec<(String, Thm)> = Vec::with_capacity(n);
    for &i in &src_order {
        let Artifact::L2Thm(thm) = &take("l2thm", i).value else {
            unreachable!("l2thm nodes produce L2Thm artifacts");
        };
        l2_thms.push((cx.names[i].clone(), thm.clone()));
    }
    let mut hl_thms: Vec<(String, Thm)> = Vec::new();
    for i in 0..n {
        let Artifact::Hl { thm, .. } = &take("hl", i).value else {
            unreachable!("hl nodes produce Hl artifacts");
        };
        if let Some(thm) = thm {
            hl_thms.push((cx.names[i].clone(), thm.clone()));
        }
    }
    let mut wa_thms: Vec<(String, Thm)> = Vec::new();
    for i in 0..n {
        let Artifact::Wa { thm, .. } = &take("wa", i).value else {
            unreachable!("wa nodes produce Wa artifacts");
        };
        if let Some(thm) = thm {
            wa_thms.push((cx.names[i].clone(), thm.clone()));
        }
    }
    let mut adapt_thms: Vec<(String, Thm)> = Vec::new();
    for i in 0..n {
        let Artifact::Adapt(adapted) = &take("adapt", i).value else {
            unreachable!("adapt nodes produce Adapt artifacts");
        };
        if let Some(a) = adapted {
            adapt_thms.push((cx.names[i].clone(), a.thm.clone()));
        }
    }
    let mut absint_map: BTreeMap<String, AbsintFn> = BTreeMap::new();
    for i in 0..n {
        let Artifact::Absint(a) = &take("absint", i).value else {
            unreachable!("absint nodes produce Absint artifacts");
        };
        absint_map.insert(cx.names[i].clone(), a.clone());
    }

    // Per-phase stats from the node clocks; `l2`/`l2thm` merge into the
    // single legacy `l2` entry so the deterministic summary is unchanged.
    let batches = plan.len();
    let pool = |c: ClockSnap| PoolStats {
        requested,
        workers,
        busy: Duration::from_nanos(c.busy),
        wall: Duration::from_nanos(c.end.saturating_sub(c.start)),
        steals: c.steals,
        tasks: batches,
    };
    let mk = |name, pool: PoolStats, fns, thms: &[(String, Thm)], cached| {
        let proof_nodes = thms.iter().map(|(_, t)| t.proof_size()).sum();
        PhaseStat {
            cached,
            ..PhaseStat::from_pool(name, pool, fns, thms.len(), proof_nodes)
        }
    };
    let c = &outcome.clocks;
    phases.push(mk("l1", pool(c[0]), n, &l1_thms, c[0].cached));
    let l2_pool = PoolStats {
        requested,
        workers,
        busy: Duration::from_nanos(c[1].busy + c[2].busy),
        wall: Duration::from_nanos(
            c[1].end.max(c[2].end).saturating_sub(c[1].start.min(c[2].start)),
        ),
        steals: c[1].steals + c[2].steals,
        tasks: batches * 2,
    };
    phases.push(mk("l2", l2_pool, n, &l2_thms, c[1].cached + c[2].cached));
    phases.push(mk("hl", pool(c[3]), n, &hl_thms, c[3].cached));
    phases.push(mk("wa", pool(c[4]), n, &wa_thms, c[4].cached));
    phases.push(mk(
        "adapt",
        pool(c[5]),
        adapt_thms.len(),
        &adapt_thms,
        c[5].cached,
    ));
    wa_thms.extend(adapt_thms);
    // Discharge theorems are (guard index, Thm) pairs and stay out of the
    // refinement-theorem lists: the row is built by hand, not via `mk`.
    let absint_thms: usize = absint_map.values().map(|a| a.thms.len()).sum();
    let absint_nodes: usize = absint_map
        .values()
        .flat_map(|a| a.thms.iter().map(|(_, t)| t.proof_size()))
        .sum();
    phases.push(PhaseStat {
        cached: c[6].cached,
        ..PhaseStat::from_pool("absint", pool(c[6]), n, absint_thms, absint_nodes)
    });

    let thms = PhaseTheorems {
        l1: l1_thms,
        l2: l2_thms,
        hl: hl_thms,
        wa: wa_thms,
    };
    let mut stats = PipelineStats {
        workers,
        requested_workers: requested,
        phases,
        total_wall: total_start.elapsed(),
        dirty_fns: outcome.dirty_fns,
        cached_nodes: outcome.cached_nodes,
        guards_total: absint_map.values().map(|a| a.report.guards.len()).sum(),
        guards_discharged: absint_map.values().map(|a| a.report.discharged()).sum(),
        guards_refuted: absint_map.values().map(|a| a.report.refuted()).sum(),
        ..PipelineStats::default()
    };
    for (_, name, thm) in thms.iter() {
        *stats.fn_theorems.entry(name.to_owned()).or_insert(0) += 1;
        *stats.fn_proof_nodes.entry(name.to_owned()).or_insert(0) += thm.proof_size();
    }

    // Success implies every shared context exists (or is trivially
    // constructible for the empty program).
    let l2sh = cx.l2_shared().map_err(|f| f.diag.clone())?;
    let wash = cx.wa_shared().map_err(|f| f.diag.clone())?;
    let adsh = cx.adapt_shared().map_err(|f| f.diag.clone())?;
    let (l1ctx, l2ctx) = (l2sh.l1ctx.clone(), l2sh.l2ctx.clone());
    let (hlctx, check_ctx) = (wash.hlctx.clone(), wash.check_ctx.clone());
    let wactx = adsh.wactx.clone();
    drop(cx);
    Ok(Output {
        typed: typed.clone(),
        simpl: sp,
        l1: l1ctx,
        l2: l2ctx,
        hl: hlctx,
        wa: wactx,
        thms,
        absint: absint_map,
        check_ctx,
        stats,
    })
}

// ---- caller adaptation (moved from pipeline.rs) -----------------------------

/// Plans the call-site adaptations of non-abstracted callers (Sec 4.6's
/// value direction): for every function outside the `fn_abs` table whose
/// body calls an abstracted callee, computes the rewritten body — arguments
/// lifted with `unat`/`sint`, results re-concretised with
/// `of_nat`/`of_int`. Pure: no context mutation, no testing. Returns
/// `(name, new_body, old_body)` in name order, changed functions only.
fn plan_caller_adaptations(
    cx: &CheckCtx,
    hlctx: &ProgramCtx,
    wactx: &ProgramCtx,
) -> Vec<(String, Prog, Prog)> {
    use ir::expr::{CastKind, Expr};
    use ir::ty::Signedness;

    let abstracted: BTreeSet<String> = cx.fn_abs.keys().cloned().collect();
    if abstracted.is_empty() {
        return Vec::new();
    }
    let lift_arg = |a: &Expr, conc_ty: &Ty| -> Expr {
        match conc_ty {
            Ty::Word(_, Signedness::Unsigned) => Expr::cast(CastKind::Unat, a.clone()),
            Ty::Word(_, Signedness::Signed) => Expr::cast(CastKind::Sint, a.clone()),
            _ => a.clone(),
        }
    };
    let rewrite_calls = |p: &Prog, hl_f: &dyn Fn(&str) -> Option<MonadicFn>| -> Prog {
        fn go(
            p: &Prog,
            abstracted: &BTreeSet<String>,
            hl_f: &dyn Fn(&str) -> Option<MonadicFn>,
            lift_arg: &dyn Fn(&Expr, &Ty) -> Expr,
        ) -> Prog {
            match p {
                Prog::Call { fname, args } if abstracted.contains(fname) => {
                    let Some(callee) = hl_f(fname) else {
                        return p.clone();
                    };
                    let new_args: Vec<Expr> = args
                        .iter()
                        .zip(&callee.params)
                        .map(|(a, (_, t))| lift_arg(a, t))
                        .collect();
                    let call = Prog::Call {
                        fname: fname.clone(),
                        args: new_args,
                    };
                    match &callee.ret_ty {
                        Ty::Word(w, s @ Signedness::Unsigned) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfNat(*w, *s), Expr::var("·r"))),
                        ),
                        Ty::Word(w, s @ Signedness::Signed) => Prog::bind(
                            call,
                            "·r",
                            Prog::ret(Expr::cast(CastKind::OfInt(*w, *s), Expr::var("·r"))),
                        ),
                        _ => call,
                    }
                }
                Prog::Bind(l, v, r) => Prog::bind(
                    go(l, abstracted, hl_f, lift_arg),
                    v.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::BindTuple(l, vs, r) => Prog::bind_tuple(
                    go(l, abstracted, hl_f, lift_arg),
                    vs.clone(),
                    go(r, abstracted, hl_f, lift_arg),
                ),
                Prog::Catch(l, v, r) => Prog::Catch(
                    ir::intern::Interned::new(go(l, abstracted, hl_f, lift_arg)),
                    v.clone(),
                    ir::intern::Interned::new(go(r, abstracted, hl_f, lift_arg)),
                ),
                Prog::Condition(c, t, e) => Prog::cond(
                    c.clone(),
                    go(t, abstracted, hl_f, lift_arg),
                    go(e, abstracted, hl_f, lift_arg),
                ),
                Prog::While {
                    vars,
                    cond,
                    body,
                    init,
                } => Prog::While {
                    vars: vars.clone(),
                    cond: cond.clone(),
                    body: ir::intern::Interned::new(go(body, abstracted, hl_f, lift_arg)),
                    init: init.clone(),
                },
                Prog::ExecConcrete(q) => {
                    Prog::ExecConcrete(ir::intern::Interned::new(go(q, abstracted, hl_f, lift_arg)))
                }
                Prog::ExecAbstract(q) => {
                    Prog::ExecAbstract(ir::intern::Interned::new(go(q, abstracted, hl_f, lift_arg)))
                }
                other => other.clone(),
            }
        }
        go(p, &abstracted, hl_f, &lift_arg)
    };

    wactx
        .fns
        .iter()
        .filter(|(name, _)| !abstracted.contains(*name))
        .filter_map(|(name, old)| {
            let new_body = rewrite_calls(&old.body, &|f| hlctx.fns.get(f).cloned());
            if new_body == old.body {
                None
            } else {
                Some((name.clone(), new_body, old.body.clone()))
            }
        })
        .collect()
}

/// Differential test for an adapted concrete caller: final-level run vs
/// HL-level run on identical concrete states and arguments.
fn test_adapted_fn(
    wactx: &ProgramCtx,
    hlctx: &ProgramCtx,
    fname: &str,
    heap_types: &[Ty],
    trials: u32,
    seed: u64,
) -> Result<(), String> {
    use ir::state::State;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let f = &hlctx.fns[fname];
    for i in 0..trials {
        let conc = crate::testing::gen_state(&mut rng, &hlctx.tenv, heap_types, 4);
        let args: Vec<ir::value::Value> = f
            .params
            .iter()
            .map(|(_, t)| crate::testing::random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let st = State::Conc(conc);
        let new_run = monadic::exec_fn(wactx, fname, &args, st.clone(), 200_000);
        let old_run = monadic::exec_fn(hlctx, fname, &args, st, 200_000);
        match (new_run, old_run) {
            (Ok((v1, s1)), Ok((v2, s2))) => {
                if v1 != v2 || s1 != s2 {
                    return Err(format!("trial {i}: adapted caller diverges"));
                }
            }
            (Err(monadic::MonadFault::Failure(_)), _) => continue,
            (_, Err(monadic::MonadFault::Failure(_))) => continue,
            (a, b) => return Err(format!("trial {i}: outcomes diverge: {a:?} vs {b:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_digest_is_normalized() {
        let base = Options::default();
        // Insertion order into the BTreeSet cannot leak into the digest.
        let mut a = Options::default();
        a.concrete_fns.insert("alpha".into());
        a.concrete_fns.insert("beta".into());
        let mut b = Options::default();
        b.concrete_fns.insert("beta".into());
        b.concrete_fns.insert("alpha".into());
        assert_eq!(options_digest(&a), options_digest(&b));
        assert_ne!(options_digest(&a), options_digest(&base));

        // `l2_trials: 0` means "default 80": the two must digest equal, a
        // genuinely different budget must not.
        let zero = Options {
            l2_trials: 0,
            ..Options::default()
        };
        let eighty = Options {
            l2_trials: 80,
            ..Options::default()
        };
        let forty = Options {
            l2_trials: 40,
            ..Options::default()
        };
        assert_eq!(options_digest(&zero), options_digest(&eighty));
        assert_ne!(options_digest(&zero), options_digest(&forty));

        // Worker count never affects output bytes, so it must never
        // invalidate the store.
        let wide = Options {
            workers: 16,
            ..Options::default()
        };
        assert_eq!(options_digest(&base), options_digest(&wide));

        // Seed does affect recorded theorem statements.
        let reseeded = Options {
            seed: 1,
            ..Options::default()
        };
        assert_ne!(options_digest(&base), options_digest(&reseeded));

        // `None` (abstract everything) differs from an empty explicit set,
        // and the `0xff` separators keep adjacent sets from bleeding into
        // one another.
        let none = Options {
            word_abstract_fns: None,
            ..Options::default()
        };
        let empty = Options {
            word_abstract_fns: Some(BTreeSet::new()),
            ..Options::default()
        };
        assert_ne!(options_digest(&none), options_digest(&empty));
    }

    #[test]
    fn fn_digests_are_per_function_content() {
        let typed_a = cparser::parse_and_check(
            "unsigned f(unsigned x) { return x + 1u; }\n\
             unsigned g(unsigned x) { return x * 2u; }\n",
        )
        .unwrap();
        let typed_b = cparser::parse_and_check(
            "unsigned f(unsigned x) { return x + 9u; }\n\
             unsigned g(unsigned x) { return x * 2u; }\n",
        )
        .unwrap();
        let sp_a = simpl::translate_program(&typed_a).unwrap();
        let sp_b = simpl::translate_program(&typed_b).unwrap();
        let opts = Options::default();
        let cx_a = PhaseCx::new(&typed_a, &sp_a, &opts);
        let cx_b = PhaseCx::new(&typed_b, &sp_b, &opts);
        // names are sorted: [f, g].
        assert_ne!(cx_a.fn_digests[0], cx_b.fn_digests[0], "f was edited");
        assert_eq!(cx_a.fn_digests[1], cx_b.fn_digests[1], "g was not");
        assert_eq!(cx_a.env_digest, cx_b.env_digest, "signatures unchanged");
    }
}
