//! L2 phase tests: output shapes match the paper's figures, and the
//! differential refinement theorems hold.

use autocorres::l1::l1_program;
use autocorres::l2::l2_program;
use kernel::{check, CheckCtx};
use monadic::ProgramCtx;

fn run_l2(src: &str) -> (ProgramCtx, ProgramCtx, CheckCtx) {
    let typed = cparser::parse_and_check(src).unwrap();
    let sp = simpl::translate_program(&typed).unwrap();
    let cx = CheckCtx {
        tenv: sp.tenv.clone(),
        ..CheckCtx::default()
    };
    let (l1ctx, l1thms) = l1_program(&cx, &sp).unwrap();
    for (_, t) in &l1thms {
        check(t, &cx).unwrap();
    }
    let (l2ctx, l2thms) = l2_program(&cx, &typed, &l1ctx, 120, 2024).unwrap();
    for (_, t) in &l2thms {
        check(t, &cx).unwrap();
    }
    (l1ctx, l2ctx, cx)
}

#[test]
fn fig2_max_becomes_ideal_conditional() {
    let (_, l2, _) = run_l2("int max(int a, int b) { if (a < b) return b; return a; }");
    let f = l2.function("max").unwrap();
    // The paper's max': if a < b then b else a (still on words at L2).
    assert_eq!(
        f.body.to_string(),
        "return (if a < b then b else a)",
        "got: {}",
        f.body
    );
}

#[test]
fn gcd_loop_lifts_locals_into_iterators() {
    let (_, l2, _) = run_l2(
        "unsigned gcd(unsigned a, unsigned b) {\n\
           while (b != 0u) { unsigned t = b; b = a % b; a = t; }\n\
           return a;\n\
         }",
    );
    let f = l2.function("gcd").unwrap();
    let s = f.body.to_string();
    assert!(s.contains("whileLoop (λ(a, b) s. b ≠ 0)"), "{s}");
    assert!(s.contains("(a, b) ←"), "{s}");
    assert!(s.contains("return a"), "{s}");
    assert!(!s.contains("´"), "no state-stored locals remain: {s}");
}

#[test]
fn fig6_reverse_shape() {
    let (_, l2, _) = run_l2(
        "struct node { struct node *next; unsigned data; };\n\
         struct node *reverse(struct node *list) {\n\
           struct node *rev = NULL;\n\
           while (list) {\n\
             struct node *next = list->next;\n\
             list->next = rev; rev = list; list = next;\n\
           }\n\
           return rev;\n\
         }",
    );
    let f = l2.function("reverse").unwrap();
    let s = f.body.to_string();
    // Fig 6: whileLoop over (list, rev), initialised (list, NULL).
    assert!(s.contains("whileLoop (λ(list, rev) s. list ≠ NULL)"), "{s}");
    assert!(s.contains("(list, NULL)"), "{s}");
    assert!(s.contains("return rev"), "{s}");
    // Loop-internal local `next` is a plain bind, not an iterator.
    assert!(s.contains("next ← gets"), "{s}");
}

#[test]
fn break_and_continue_translate_with_tagged_exceptions() {
    let (l1, l2, _) = run_l2(
        "unsigned f(unsigned n) {\n\
           unsigned s = 0;\n\
           unsigned i = 0;\n\
           while (1) {\n\
             if (i >= n) break;\n\
             i = i + 1u;\n\
             if (i == 3u) continue;\n\
             s = s + i;\n\
           }\n\
           return s;\n\
         }",
    );
    // Differential check at the function level (also done inside l2_program;
    // re-assert on concrete inputs here).
    for n in 0..8u32 {
        let st = ir::state::State::conc_empty();
        let (v1, _) =
            monadic::exec_fn(&l1, "f", &[ir::value::Value::u32(n)], st.clone(), 100_000)
                .unwrap();
        let (v2, _) =
            monadic::exec_fn(&l2, "f", &[ir::value::Value::u32(n)], st, 100_000).unwrap();
        assert_eq!(v1, v2, "n = {n}");
    }
}

#[test]
fn early_return_in_loop_uses_exception_encoding() {
    let (l1, l2, _) = run_l2(
        "unsigned find(unsigned n) {\n\
           unsigned i = 0;\n\
           while (i < n) {\n\
             if (i * i >= 16u) return i;\n\
             i = i + 1u;\n\
           }\n\
           return n;\n\
         }",
    );
    let f = l2.function("find").unwrap();
    assert!(f.body.to_string().contains("try"), "{}", f.body);
    for n in [0u32, 3, 4, 5, 10] {
        let st = ir::state::State::conc_empty();
        let (v1, _) =
            monadic::exec_fn(&l1, "find", &[ir::value::Value::u32(n)], st.clone(), 100_000)
                .unwrap();
        let (v2, _) =
            monadic::exec_fn(&l2, "find", &[ir::value::Value::u32(n)], st, 100_000).unwrap();
        assert_eq!(v1, v2, "n = {n}");
    }
}

#[test]
fn do_while_runs_body_first() {
    let (l1, l2, _) = run_l2(
        "unsigned f(unsigned n) {\n\
           unsigned c = 0;\n\
           do { c = c + 1u; n = n / 2u; } while (n > 0u);\n\
           return c;\n\
         }",
    );
    for n in [0u32, 1, 8, 100] {
        let st = ir::state::State::conc_empty();
        let (v1, _) =
            monadic::exec_fn(&l1, "f", &[ir::value::Value::u32(n)], st.clone(), 100_000)
                .unwrap();
        let (v2, _) =
            monadic::exec_fn(&l2, "f", &[ir::value::Value::u32(n)], st, 100_000).unwrap();
        assert_eq!(v1, v2, "n = {n}");
    }
}

#[test]
fn calls_and_heap_writes() {
    let (_, l2, _) = run_l2(
        "unsigned sq(unsigned x) { return x * x; }\n\
         void store(unsigned *p, unsigned v) { *p = sq(v) + 1u; }",
    );
    let f = l2.function("store").unwrap();
    let s = f.body.to_string();
    assert!(s.contains("sq'"), "call appears: {s}");
    assert!(s.contains("modify"), "heap write appears: {s}");
    assert!(s.contains("ptr_aligned"), "pointer guard appears: {s}");
}

#[test]
fn globals_stay_in_state() {
    let (l1, l2, _) = run_l2(
        "unsigned counter = 10;\n\
         void bump(void) { counter = counter + 1u; }",
    );
    let st = {
        let mut s = ir::state::State::conc_empty();
        s.set_global("counter", ir::value::Value::u32(10));
        s
    };
    let (_, s1) = monadic::exec_fn(&l1, "bump", &[], st.clone(), 10_000).unwrap();
    let (_, s2) = monadic::exec_fn(&l2, "bump", &[], st, 10_000).unwrap();
    assert_eq!(s1.global("counter"), Some(&ir::value::Value::u32(11)));
    assert_eq!(s2.global("counter"), Some(&ir::value::Value::u32(11)));
}
