//! Property tests of the work scheduler over random call graphs.
//!
//! The graphs come from `codegen::gen_call_graph` — the same acyclic
//! caller-calls-lower-index shape the synthetic Table 5 code bases have.
//! For every graph and worker count the scheduler must (1) run each
//! function exactly once, (2) never start a caller's job before all of its
//! callees' jobs have finished — the invariant the pipeline's WA/adaptation
//! phase relies on (a caller's adaptation is never derived before its
//! callee's WA theorem) — and (3) terminate (no deadlock; the test would
//! hang otherwise).

use autocorres::schedule::{par_map, run_dag};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs the scheduler on the graph, recording per-node start and finish
/// ticks from a shared logical clock.
fn schedule_and_trace(deps: &[Vec<usize>], workers: usize) -> Vec<(usize, usize)> {
    let clock = AtomicUsize::new(0);
    let (trace, stats) = run_dag(deps.len(), deps, workers, |_| {
        let start = clock.fetch_add(1, Ordering::SeqCst);
        let finish = clock.fetch_add(1, Ordering::SeqCst);
        (start, finish)
    });
    assert!(stats.workers >= 1);
    assert_eq!(trace.len(), deps.len(), "one result slot per function");
    trace
}

proptest! {
    #[test]
    fn dag_schedules_each_function_exactly_once_after_its_callees(
        seed in 0u64..1000,
        n in 1usize..60,
        density_pct in 0usize..100,
        workers in 1usize..9,
    ) {
        let deps = codegen::gen_call_graph(seed, n, density_pct as f64 / 100.0);
        let trace = schedule_and_trace(&deps, workers);
        // Exactly once: every slot filled with a coherent interval, and
        // all ticks distinct (2n ticks for n jobs).
        let mut ticks: Vec<usize> = trace.iter().flat_map(|&(s, f)| [s, f]).collect();
        ticks.sort_unstable();
        ticks.dedup();
        prop_assert_eq!(ticks.len(), 2 * deps.len());
        // Callee-before-caller: a caller's job starts only after every
        // callee's job finished.
        for (caller, callees) in deps.iter().enumerate() {
            for &callee in callees {
                prop_assert!(
                    trace[callee].1 < trace[caller].0,
                    "caller {} started at {} before callee {} finished at {}",
                    caller, trace[caller].0, callee, trace[callee].1
                );
            }
        }
    }

    #[test]
    fn sequential_dag_order_is_reproducible(
        seed in 0u64..200,
        n in 1usize..40,
    ) {
        let deps = codegen::gen_call_graph(seed, n, 0.7);
        let order = |_unused: ()| {
            let log = Mutex::new(Vec::new());
            run_dag(deps.len(), &deps, 1, |i| log.lock().unwrap().push(i));
            log.into_inner().unwrap()
        };
        prop_assert_eq!(order(()), order(()));
    }

    #[test]
    fn par_map_matches_sequential_map(
        xs in proptest::collection::vec(0u32..1000, 0..50),
        workers in 1usize..9,
    ) {
        let expected: Vec<u64> = xs.iter().map(|&x| u64::from(x) * 7 + 3).collect();
        let (got, _) = par_map(&xs, workers, |_, &x| u64::from(x) * 7 + 3);
        prop_assert_eq!(got, expected);
    }
}

#[test]
fn pipeline_wa_phase_orders_adaptations_after_callee_theorems() {
    // End-to-end shape check on a mixed-level program: the concrete-kept
    // caller's adaptation theorem exists, and the abstracted callee's WA
    // theorem exists — i.e. the dependency the scheduler orders is real.
    let src = "unsigned inc(unsigned x) { return x + 1u; }\n\
               unsigned twice(unsigned x) { return inc(inc(x)); }\n";
    let opts = autocorres::Options {
        concrete_fns: ["twice".to_owned()].into(),
        l2_trials: 12,
        workers: 4,
        ..autocorres::Options::default()
    };
    let out = autocorres::translate(src, &opts).unwrap();
    let wa_names: Vec<&str> = out.thms.wa.iter().map(|(n, _)| n.as_str()).collect();
    assert!(wa_names.contains(&"inc"), "callee WA theorem missing: {wa_names:?}");
    assert!(wa_names.contains(&"twice"), "caller adaptation theorem missing: {wa_names:?}");
    out.check_all().unwrap();
}
