//! End-to-end pipeline tests: every phase output, every theorem replayed,
//! and the Table 5 metric directions (output smaller than parser output).

use autocorres::{translate, Options};

#[test]
fn fig2_pipeline_end_to_end() {
    let out = translate(
        "int max(int a, int b) { if (a < b) return b; return a; }",
        &Options::default(),
    )
    .unwrap();

    // Parser output is the verbose Fig 2 Simpl.
    let simpl_text = out.simpl.function("max").unwrap().to_string();
    assert!(simpl_text.contains("TRY"));
    assert!(simpl_text.contains("global_exn_var"));
    assert!(simpl_text.contains("GUARD DontReach"));

    // Final output is the paper's max' (on ideal integers).
    let max = out.wa.function("max").unwrap();
    assert_eq!(max.body.to_string(), "return (if a < b then b else a)");
    assert_eq!(max.ret_ty, ir::ty::Ty::Int);

    // One theorem per function per phase.
    assert_eq!(out.thms.l1.len(), 1);
    assert_eq!(out.thms.l2.len(), 1);
    assert_eq!(out.thms.hl.len(), 1);
    assert_eq!(out.thms.wa.len(), 1);
    out.check_all().unwrap();
    assert!(out.total_proof_size() > 20);

    // Table 5 direction: the abstraction shrinks the specification.
    let pm = out.parser_metrics();
    let om = out.output_metrics();
    assert!(om.lines < pm.lines, "{om:?} vs {pm:?}");
    assert!(om.term_size < pm.term_size, "{om:?} vs {pm:?}");
}

#[test]
fn multi_function_program() {
    let out = translate(
        "struct node { struct node *next; unsigned data; };\n\
         unsigned len(struct node *p) {\n\
           unsigned n = 0;\n\
           while (p != NULL) { n = n + 1u; p = p->next; }\n\
           return n;\n\
         }\n\
         unsigned total(struct node *p) {\n\
           unsigned s = 0;\n\
           while (p != NULL) { s = s + p->data; p = p->next; }\n\
           return s;\n\
         }\n\
         unsigned avg(struct node *p) {\n\
           unsigned n = len(p);\n\
           if (n == 0u) return 0u;\n\
           return total(p) / n;\n\
         }",
        &Options::default(),
    )
    .unwrap();
    out.check_all().unwrap();
    let avg = out.wa.function("avg").unwrap().to_string();
    assert!(avg.contains("len'"), "{avg}");
    assert!(avg.contains("total'"), "{avg}");
    assert!(avg.contains("div"), "{avg}");
}

#[test]
fn run_final_output_semantically() {
    // The WA-level `len` really counts list nodes over the abstract heap.
    let out = translate(
        "struct node { struct node *next; unsigned data; };\n\
         unsigned len(struct node *p) {\n\
           unsigned n = 0;\n\
           while (p != NULL) { n = n + 1u; p = p->next; }\n\
           return n;\n\
         }",
        &Options::default(),
    )
    .unwrap();
    let node_ty = ir::ty::Ty::Struct("node".into());
    let mut conc = ir::state::ConcState::default();
    let mk = |next: u64| {
        ir::value::Value::Struct(
            "node".into(),
            vec![
                (
                    "next".into(),
                    ir::value::Value::Ptr(ir::value::Ptr::new(next, node_ty.clone())),
                ),
                ("data".into(), ir::value::Value::u32(0)),
            ],
        )
    };
    conc.mem.alloc(0x100, &mk(0x200), &out.wa.tenv).unwrap();
    conc.mem.alloc(0x200, &mk(0x300), &out.wa.tenv).unwrap();
    conc.mem.alloc(0x300, &mk(0), &out.wa.tenv).unwrap();
    let abs = heapmodel::lift_state(&conc, &out.wa.tenv, std::slice::from_ref(&node_ty));
    let head = ir::value::Value::Ptr(ir::value::Ptr::new(0x100, node_ty));
    let (r, _) = monadic::exec_fn(
        &out.wa,
        "len",
        &[head],
        ir::state::State::Abs(abs),
        100_000,
    )
    .unwrap();
    assert_eq!(
        r,
        monadic::MonadResult::Normal(ir::value::Value::nat(3u64)),
        "ideal natural count"
    );
}

#[test]
fn phase_outputs_all_available() {
    let out = translate(
        "unsigned mid(unsigned l, unsigned r) { return (l + r) / 2u; }",
        &Options::default(),
    )
    .unwrap();
    // All five levels have the function.
    assert!(out.simpl.function("mid").is_some());
    assert!(out.l1.function("mid").is_some());
    assert!(out.l2.function("mid").is_some());
    assert!(out.hl.function("mid").is_some());
    assert!(out.wa.function("mid").is_some());
    // L1 keeps locals in state, L2+ do not.
    assert!(out.l1.function("mid").unwrap().frame.is_some());
    assert!(out.l2.function("mid").unwrap().frame.is_none());
}

#[test]
fn concrete_fn_selection_flows_through() {
    let out = translate(
        "void poke(unsigned *p) { *p = 7u; }\n\
         void caller(unsigned *p) { poke(p); }",
        &Options {
            concrete_fns: ["poke".to_owned()].into(),
            ..Options::default()
        },
    )
    .unwrap();
    let caller = out.wa.function("caller").unwrap().to_string();
    assert!(caller.contains("exec_concrete"), "{caller}");
    // poke stays at the word/byte level.
    assert_eq!(out.wa.function("poke").unwrap().body, out.l2.function("poke").unwrap().body);
    out.check_all().unwrap();
}
