//! A CDCL SAT solver.
//!
//! The decision procedure behind word-level (bit-vector) reasoning in the
//! `solver` crate: verification conditions over machine words are
//! bit-blasted to CNF and decided here. Features: two-watched-literal
//! propagation, first-UIP conflict-driven clause learning with
//! non-chronological backjumping, VSIDS-style activity decision heuristic,
//! and Luby restarts.
//!
//! # Example
//!
//! ```
//! use sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b)
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a), Lit::pos(b)]);
//! s.add_clause([Lit::pos(a), Lit::neg(b)]);
//! let model = s.solve().expect("satisfiable");
//! assert!(model[a.index()] && model[b.index()]);
//! ```

use std::fmt;

/// A propositional variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// The variable's index (dense, starting at 0).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with the given polarity (`true` = positive).
    #[must_use]
    pub fn with_polarity(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Is this a negative literal?
    #[must_use]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unset,
    True,
    False,
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    #[allow(dead_code)]
    learnt: bool,
}

/// Statistics from a solve run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learnt.
    pub learnt_clauses: u64,
}

/// A satisfying assignment, indexable by [`Var`], [`Lit`], or registered
/// variable name.
///
/// Produced by [`Solver::solve_model`] / [`Solver::solve_model_limited`].
/// Named lookups go through the solver's name registry (see
/// [`Solver::new_named_var`]), which records names in registration order —
/// the *stable naming* contract the upper layers (bit-blasting model
/// extraction) rely on to reconstruct word values bit by bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
    names: Vec<(String, Var)>,
}

impl Model {
    /// The assignment of a variable.
    #[must_use]
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// The truth value of a literal under the model.
    #[must_use]
    pub fn lit(&self, l: Lit) -> bool {
        self.value(l.var()) ^ l.is_neg()
    }

    /// The assignment of a registered named variable.
    #[must_use]
    pub fn named(&self, name: &str) -> Option<bool> {
        self.names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| self.value(v))
    }

    /// All registered names with their assignments, in registration order.
    pub fn named_iter(&self) -> impl Iterator<Item = (&str, bool)> {
        self.names.iter().map(|(n, v)| (n.as_str(), self.value(*v)))
    }

    /// The raw assignment vector, indexed by variable.
    #[must_use]
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }
}

/// A CDCL SAT solver over clauses added incrementally.
pub struct Solver {
    num_vars: u32,
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clause indices watching that literal.
    watches: Vec<Vec<usize>>,
    assigns: Vec<Assign>,
    /// Decision level of each variable.
    level: Vec<u32>,
    /// Reason clause for each implied variable.
    reason: Vec<Option<usize>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    act_inc: f64,
    /// Set when an empty clause was added.
    unsat: bool,
    /// Pending unit clauses to assert at level 0.
    pending_units: Vec<Lit>,
    /// Registered variable names in registration order (model extraction).
    names: Vec<(String, Var)>,
    /// Statistics of the last [`Solver::solve`] run.
    pub stats: Stats,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars)
            .field("clauses", &self.clauses.len())
            .field("unsat", &self.unsat)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    #[must_use]
    pub fn new() -> Solver {
        Solver {
            num_vars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
            pending_units: Vec::new(),
            names: Vec::new(),
            stats: Stats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.assigns.push(Assign::Unset);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        v
    }

    /// Allocates a fresh variable registered under `name` for named model
    /// lookup. Names are kept in registration order; registering the same
    /// name twice keeps both entries (the first wins on lookup), so callers
    /// should register each name once.
    pub fn new_named_var(&mut self, name: impl Into<String>) -> Var {
        let v = self.new_var();
        self.names.push((name.into(), v));
        v
    }

    /// The registered names with their variables, in registration order.
    pub fn named_vars(&self) -> impl Iterator<Item = (&str, Var)> {
        self.names.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of variables allocated.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Adds a clause. An empty clause makes the instance trivially unsat.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_by_key(|l| l.0);
        lits.dedup();
        // Tautology?
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return;
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => self.pending_units.push(lits[0]),
            _ => {
                let idx = self.clauses.len();
                self.watches[lits[0].code()].push(idx);
                self.watches[lits[1].code()].push(idx);
                self.clauses.push(Clause {
                    lits,
                    learnt: false,
                });
            }
        }
    }

    fn value(&self, l: Lit) -> Assign {
        match self.assigns[l.var().index()] {
            Assign::Unset => Assign::Unset,
            Assign::True => {
                if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
            Assign::False => {
                if l.is_neg() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: Option<usize>) -> bool {
        match self.value(l) {
            Assign::True => true,
            Assign::False => false,
            Assign::Unset => {
                let v = l.var().index();
                self.assigns[v] = if l.is_neg() {
                    Assign::False
                } else {
                    Assign::True
                };
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let falsified = l.negate();
            let mut i = 0;
            // take the watch list to satisfy the borrow checker
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure falsified is at position 1.
                if self.clauses[ci].lits[0] == falsified {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.value(first) == Assign::True {
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].lits.len() {
                    let lk = self.clauses[ci].lits[k];
                    if self.value(lk) != Assign::False {
                        self.clauses[ci].lits.swap(1, k);
                        self.watches[lk.code()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(ci)) {
                    self.watches[falsified.code()] = watch_list;
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[falsified.code()] = watch_list;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.act_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backjump level).
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, u32) {
        let cur_level = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.num_vars as usize];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut reason_idx = confl;
        let mut trail_pos = self.trail.len();

        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[reason_idx].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump(v);
                    if self.level[v.index()] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next marked literal on the trail.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            reason_idx = self.reason[pv.index()].expect("implied var has a reason");
        }
        let uip = p.expect("first UIP");
        let mut clause = vec![uip.negate()];
        clause.extend(learnt);
        // Backjump level: the second-highest level in the clause.
        let bj = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        (clause, bj)
    }

    fn backtrack(&mut self, to_level: u32) {
        while self.trail_lim.len() as u32 > to_level {
            let start = self.trail_lim.pop().expect("level exists");
            while self.trail.len() > start {
                let l = self.trail.pop().expect("trail non-empty");
                let v = l.var().index();
                self.assigns[v] = Assign::Unset;
                self.reason[v] = None;
            }
        }
        self.qhead = self.trail.len();
    }

    /// Re-establishes the watched-literal invariant at decision level 0.
    ///
    /// Clauses added between `solve` calls may be unit, falsified, or have
    /// watches on literals that were already assigned (and hence will never
    /// be re-examined by `propagate`). Rebuilding the watch lists with
    /// non-false literals in front, asserting the discovered units, and
    /// propagating restores the invariant. Returns `false` on a level-0
    /// conflict (the instance is unsatisfiable).
    fn restore_watches(&mut self) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        for w in &mut self.watches {
            w.clear();
        }
        let mut clauses = std::mem::take(&mut self.clauses);
        let mut falsified = false;
        let mut units: Vec<Lit> = Vec::new();
        for (idx, c) in clauses.iter_mut().enumerate() {
            // Stable partition: non-false literals first (level-0
            // assignments are permanent, so a false literal here stays
            // false forever).
            c.lits.sort_by_key(|&l| u8::from(self.value(l) == Assign::False));
            let nonfalse = c
                .lits
                .iter()
                .take_while(|&&l| self.value(l) != Assign::False)
                .count();
            match nonfalse {
                0 => falsified = true,
                1 => {
                    if self.value(c.lits[0]) == Assign::Unset {
                        units.push(c.lits[0]);
                    }
                    if c.lits.len() >= 2 {
                        self.watches[c.lits[0].code()].push(idx);
                        self.watches[c.lits[1].code()].push(idx);
                    }
                }
                _ => {
                    self.watches[c.lits[0].code()].push(idx);
                    self.watches[c.lits[1].code()].push(idx);
                }
            }
        }
        self.clauses = clauses;
        if falsified {
            return false;
        }
        for u in units {
            if !self.enqueue(u, None) {
                return false;
            }
        }
        self.propagate().is_none()
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        for i in 0..self.num_vars as usize {
            if self.assigns[i] == Assign::Unset && self.activity[i] > best_act {
                best_act = self.activity[i];
                best = Some(Var(i as u32));
            }
        }
        // Default polarity: negative (zeros first) — works well for
        // bit-blasted arithmetic.
        best.map(Lit::neg)
    }

    /// Solves the instance: `Some(model)` if satisfiable (indexed by
    /// variable), `None` if unsatisfiable.
    pub fn solve(&mut self) -> Option<Vec<bool>> {
        self.solve_limited(u64::MAX)
            .expect("no conflict limit in plain solve")
    }

    /// Solves and wraps a satisfying assignment as a [`Model`] carrying the
    /// solver's name registry: `Some(model)` if satisfiable, `None` if
    /// unsatisfiable.
    pub fn solve_model(&mut self) -> Option<Model> {
        self.solve_model_limited(u64::MAX)
            .expect("no conflict limit in plain solve")
    }

    /// [`Solver::solve_model`] with a conflict budget.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if the conflict limit was exceeded before a
    /// verdict was reached.
    #[allow(clippy::result_unit_err)]
    pub fn solve_model_limited(&mut self, max_conflicts: u64) -> Result<Option<Model>, ()> {
        Ok(self.solve_limited(max_conflicts)?.map(|values| Model {
            values,
            names: self.names.clone(),
        }))
    }

    /// Solves with a conflict budget; `Err(())` when the budget runs out.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if the conflict limit was exceeded before a
    /// verdict was reached.
    #[allow(clippy::result_unit_err)]
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Result<Option<Vec<bool>>, ()> {
        if self.unsat {
            return Ok(None);
        }
        // Support incremental use: a previous call may have left decisions
        // on the trail (budget exhaustion) or clauses may have been added
        // whose watches point at literals already false at level 0.
        self.backtrack(0);
        // Assert pending units at level 0.
        let units = std::mem::take(&mut self.pending_units);
        for u in units {
            if !self.enqueue(u, None) {
                self.unsat = true;
                return Ok(None);
            }
        }
        if !self.restore_watches() {
            self.unsat = true;
            return Ok(None);
        }

        let mut restart_threshold = 100u64;
        let mut conflicts_since_restart = 0u64;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.stats.conflicts > max_conflicts {
                    return Err(());
                }
                if self.trail_lim.is_empty() {
                    self.unsat = true;
                    return Ok(None);
                }
                let (clause, bj) = self.analyze(confl);
                self.backtrack(bj);
                self.act_inc /= 0.95;
                if clause.len() == 1 {
                    if !self.enqueue(clause[0], None) {
                        self.unsat = true;
                        return Ok(None);
                    }
                } else {
                    let idx = self.clauses.len();
                    self.watches[clause[0].code()].push(idx);
                    self.watches[clause[1].code()].push(idx);
                    let first = clause[0];
                    self.clauses.push(Clause {
                        lits: clause,
                        learnt: true,
                    });
                    self.stats.learnt_clauses += 1;
                    self.enqueue(first, Some(idx));
                }
            } else if conflicts_since_restart >= restart_threshold {
                self.stats.restarts += 1;
                conflicts_since_restart = 0;
                restart_threshold = restart_threshold * 3 / 2;
                self.backtrack(0);
            } else if let Some(decision) = self.decide() {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.enqueue(decision, None);
            } else {
                // All variables assigned: a model.
                let model = self
                    .assigns
                    .iter()
                    .map(|a| *a == Assign::True)
                    .collect();
                self.backtrack(0);
                return Ok(Some(model));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([Lit::pos(v[0])]);
        assert!(s.solve().unwrap()[0]);

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([Lit::pos(v[0])]);
        s.add_clause([Lit::neg(v[0])]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        lits(&mut s, 1);
        s.add_clause([]);
        assert!(s.solve().is_none());
    }

    #[test]
    fn tautologies_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([Lit::pos(v[0]), Lit::neg(v[0])]);
        assert!(s.solve().is_some());
    }

    #[test]
    fn chain_implication() {
        // x0 ∧ (x_i → x_{i+1}) forces all true.
        let mut s = Solver::new();
        let v = lits(&mut s, 20);
        s.add_clause([Lit::pos(v[0])]);
        for i in 0..19 {
            s.add_clause([Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        let m = s.solve().unwrap();
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance.
        let mut s = Solver::new();
        // p[i][j] = pigeon i in hole j
        let p: Vec<Vec<Var>> = (0..3).map(|_| lits(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause([Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert!(s.solve().is_none());
        assert!(s.stats.conflicts > 0, "CDCL actually ran");
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, … encoded as CNF; satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        for i in 0..9 {
            s.add_clause([Lit::pos(v[i]), Lit::pos(v[i + 1])]);
            s.add_clause([Lit::neg(v[i]), Lit::neg(v[i + 1])]);
        }
        let m = s.solve().unwrap();
        for i in 0..9 {
            assert_ne!(m[i], m[i + 1]);
        }
    }

    #[test]
    fn models_satisfy_all_clauses_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(3..12);
            let m = rng.gen_range(5..40);
            let mut s = Solver::new();
            let vars = lits(&mut s, n);
            let mut clauses = Vec::new();
            for _ in 0..m {
                let len = rng.gen_range(1..4);
                let c: Vec<Lit> = (0..len)
                    .map(|_| {
                        Lit::with_polarity(vars[rng.gen_range(0..n)], rng.gen_bool(0.5))
                    })
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
            }
            match s.solve() {
                Some(model) => {
                    for c in &clauses {
                        // skip tautologies (ignored by the solver)
                        let taut = c.iter().any(|l| c.contains(&l.negate()));
                        if !taut {
                            assert!(
                                c.iter().any(|l| model[l.var().index()] != l.is_neg()),
                                "model must satisfy every clause"
                            );
                        }
                    }
                }
                None => {
                    // Cross-check with brute force.
                    let mut found = false;
                    'outer: for bits in 0u32..(1 << n) {
                        for c in &clauses {
                            let sat = c.iter().any(|l| {
                                let val = bits >> l.var().index() & 1 == 1;
                                val != l.is_neg()
                            });
                            if !sat {
                                continue 'outer;
                            }
                        }
                        found = true;
                        break;
                    }
                    assert!(!found, "solver said UNSAT but a model exists");
                }
            }
        }
    }

    #[test]
    fn conflict_limit() {
        // Pigeonhole 6 into 5 is hard enough to exceed a tiny budget.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..6).map(|_| lits(&mut s, 5)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..5 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause([Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve_limited(5), Err(()));
    }

    #[test]
    fn named_model_extraction() {
        let mut s = Solver::new();
        let a = s.new_named_var("a");
        let b = s.new_named_var("b");
        let c = s.new_var(); // unnamed internal variable
        s.add_clause([Lit::pos(a)]);
        s.add_clause([Lit::neg(a), Lit::pos(b)]);
        s.add_clause([Lit::pos(c), Lit::pos(b)]);
        let m = s.solve_model().expect("satisfiable");
        assert_eq!(m.named("a"), Some(true));
        assert_eq!(m.named("b"), Some(true));
        assert_eq!(m.named("c"), None);
        assert!(m.value(a) && m.lit(Lit::pos(b)) && !m.lit(Lit::neg(b)));
        let names: Vec<&str> = m.named_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"], "registration order is stable");
        assert_eq!(m.as_slice().len(), s.num_vars());
    }
}
