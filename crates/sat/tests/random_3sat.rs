//! Differential stress testing of the CDCL solver against a brute-force
//! truth-table oracle on random 3-SAT instances, plus structured families
//! (pigeonhole, parity chains, implication ladders) whose status is known.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sat::{Lit, Solver, Var};

/// Brute-force satisfiability check over all 2^n assignments.
fn brute_force(n: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    assert!(n <= 20, "brute force is exponential");
    'outer: for bits in 0u32..(1u32 << n) {
        for c in clauses {
            let sat = c
                .iter()
                .any(|&(v, pos)| ((bits >> v) & 1 == 1) == pos);
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn solve(n: usize, clauses: &[Vec<(usize, bool)>]) -> Option<Vec<bool>> {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
    for c in clauses {
        s.add_clause(c.iter().map(|&(v, pos)| Lit::with_polarity(vars[v], pos)));
    }
    s.solve()
}

fn check_model(clauses: &[Vec<(usize, bool)>], model: &[bool]) {
    for c in clauses {
        assert!(
            c.iter().any(|&(v, pos)| model[v] == pos),
            "model does not satisfy {c:?}"
        );
    }
}

#[test]
fn random_3sat_agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..300 {
        let n = rng.gen_range(1..=12);
        // Sweep across the phase transition (ratio ~4.26 is hardest).
        let m = rng.gen_range(1..=(n * 6).max(2));
        let clauses: Vec<Vec<(usize, bool)>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let expect = brute_force(n, &clauses);
        match solve(n, &clauses) {
            Some(model) => {
                assert!(expect, "round {round}: SAT claimed on UNSAT instance");
                check_model(&clauses, &model);
            }
            None => assert!(!expect, "round {round}: UNSAT claimed on SAT instance"),
        }
    }
}

#[test]
fn random_mixed_width_clauses() {
    // Unit, binary, and wide clauses mixed — exercises watched-literal
    // bookkeeping on degenerate shapes.
    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..200 {
        let n = rng.gen_range(1..=10);
        let m = rng.gen_range(1..=30);
        let clauses: Vec<Vec<(usize, bool)>> = (0..m)
            .map(|_| {
                let k = rng.gen_range(1..=4);
                (0..k)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let expect = brute_force(n, &clauses);
        match solve(n, &clauses) {
            Some(model) => {
                assert!(expect, "round {round}");
                check_model(&clauses, &model);
            }
            None => assert!(!expect, "round {round}"),
        }
    }
}

#[test]
fn duplicate_and_tautological_literals() {
    // (x ∨ x ∨ ¬x) is a tautology; (x ∨ x) is just x.
    let mut s = Solver::new();
    let x = s.new_var();
    s.add_clause([Lit::pos(x), Lit::pos(x), Lit::neg(x)]);
    s.add_clause([Lit::pos(x), Lit::pos(x)]);
    let model = s.solve().expect("satisfiable");
    assert!(model[x.index()]);
}

#[test]
fn empty_clause_is_unsat() {
    let mut s = Solver::new();
    let _ = s.new_var();
    s.add_clause(std::iter::empty());
    assert!(s.solve().is_none());
}

#[test]
fn pigeonhole_is_unsat() {
    // PHP(n+1, n): n+1 pigeons in n holes. Classic hard UNSAT family for
    // resolution; n = 5 keeps it CDCL-friendly but nontrivial.
    let pigeons = 6;
    let holes = 5;
    let mut s = Solver::new();
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &v {
        s.add_clause(row.iter().map(|&x| Lit::pos(x)));
    }
    for h in 0..holes {
        for (p1, row1) in v.iter().enumerate() {
            for row2 in &v[p1 + 1..] {
                s.add_clause([Lit::neg(row1[h]), Lit::neg(row2[h])]);
            }
        }
    }
    assert!(s.solve().is_none(), "pigeonhole must be UNSAT");
}

#[test]
fn xor_chain_parity() {
    // x0 ⊕ x1 ⊕ … ⊕ x_{k-1} = 1 encoded clause-wise per adjacent pair with
    // fresh partial-parity variables; satisfiable, and every model must
    // have odd parity.
    let k = 16;
    let mut s = Solver::new();
    let xs: Vec<Var> = (0..k).map(|_| s.new_var()).collect();
    // p_i = x_0 ⊕ … ⊕ x_i
    let ps: Vec<Var> = (0..k).map(|_| s.new_var()).collect();
    // p_0 = x_0
    s.add_clause([Lit::neg(ps[0]), Lit::pos(xs[0])]);
    s.add_clause([Lit::pos(ps[0]), Lit::neg(xs[0])]);
    for i in 1..k {
        // p_i ↔ p_{i-1} ⊕ x_i  (4 clauses)
        let (p, q, x) = (ps[i], ps[i - 1], xs[i]);
        s.add_clause([Lit::neg(p), Lit::pos(q), Lit::pos(x)]);
        s.add_clause([Lit::neg(p), Lit::neg(q), Lit::neg(x)]);
        s.add_clause([Lit::pos(p), Lit::neg(q), Lit::pos(x)]);
        s.add_clause([Lit::pos(p), Lit::pos(q), Lit::neg(x)]);
    }
    s.add_clause([Lit::pos(ps[k - 1])]);
    let model = s.solve().expect("odd parity is achievable");
    let parity = xs.iter().filter(|x| model[x.index()]).count() % 2;
    assert_eq!(parity, 1, "model must have odd parity");
}

#[test]
fn implication_ladder_propagates() {
    // x0 ∧ (x0→x1) ∧ … ∧ (x_{n-1}→x_n): solvable purely by unit
    // propagation; the final model is all-true and zero conflicts occur.
    let n = 200;
    let mut s = Solver::new();
    let xs: Vec<Var> = (0..=n).map(|_| s.new_var()).collect();
    s.add_clause([Lit::pos(xs[0])]);
    for i in 0..n {
        s.add_clause([Lit::neg(xs[i]), Lit::pos(xs[i + 1])]);
    }
    let model = s.solve().expect("ladder is satisfiable");
    assert!(xs.iter().all(|x| model[x.index()]));
    assert_eq!(s.stats.conflicts, 0, "pure propagation needs no search");
}

#[test]
fn solve_limited_gives_up_cleanly() {
    // A hard instance with a conflict budget of 1 must report Unknown
    // (Err), not a wrong answer.
    let pigeons = 8;
    let holes = 7;
    let mut s = Solver::new();
    let v: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for row in &v {
        s.add_clause(row.iter().map(|&x| Lit::pos(x)));
    }
    for h in 0..holes {
        for (p1, row1) in v.iter().enumerate() {
            for row2 in &v[p1 + 1..] {
                s.add_clause([Lit::neg(row1[h]), Lit::neg(row2[h])]);
            }
        }
    }
    assert!(s.solve_limited(1).is_err(), "budget of 1 conflict must time out");
}

#[test]
fn incremental_solving_after_sat() {
    // Solve, then add a clause contradicting the found model; the solver
    // must recover and either find another model or prove UNSAT.
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..50 {
        let n = rng.gen_range(2..=8);
        let m = rng.gen_range(1..=n * 3);
        let clauses: Vec<Vec<(usize, bool)>> = (0..m)
            .map(|_| {
                (0..3)
                    .map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        let mut all = clauses.clone();
        for c in &clauses {
            s.add_clause(c.iter().map(|&(v, pos)| Lit::with_polarity(vars[v], pos)));
        }
        // Block up to 3 models in a row.
        for _ in 0..3 {
            let Some(model) = s.solve() else {
                assert!(!brute_force(n, &all));
                break;
            };
            check_model(&all, &model);
            let blocking: Vec<(usize, bool)> =
                (0..n).map(|v| (v, !model[vars[v].index()])).collect();
            s.add_clause(
                blocking
                    .iter()
                    .map(|&(v, pos)| Lit::with_polarity(vars[v], pos)),
            );
            all.push(blocking);
        }
    }
}
