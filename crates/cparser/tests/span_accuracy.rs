//! Span accuracy: diagnostics must point at the offending byte of the
//! *original* source — across multi-line inputs, and unchanged when the
//! file uses CRLF line endings (offsets count the `\r` bytes, line/column
//! numbers do not drift).

use cparser::{lex, parse_and_check};
use ir::diag::Span;

/// The byte slice of `src` starting at the span's offset.
fn at(src: &str, s: Span) -> &str {
    &src[s.offset as usize..]
}

/// Recomputes line/column by scanning `src` up to `offset`, so the span's
/// cached line/col can be cross-checked against ground truth.
fn line_col_at(src: &str, offset: usize) -> (u32, u32) {
    let pre = &src.as_bytes()[..offset];
    let line = 1 + pre.iter().filter(|&&b| b == b'\n').count() as u32;
    let line_start = pre
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    (line, (offset - line_start + 1) as u32)
}

#[test]
fn token_offsets_index_the_original_source() {
    let src = "int f(int a) {\n    int x = a + 1;\n    return x;\n}\n";
    for t in lex(src).unwrap() {
        let (line, col) = line_col_at(src, t.span.offset as usize);
        assert_eq!((t.span.line, t.span.col), (line, col), "token {:?}", t.kind);
    }
    // Spot-check a couple of anchors.
    let toks = lex(src).unwrap();
    let ret = toks
        .iter()
        .find(|t| at(src, t.span).starts_with("return"))
        .expect("return token");
    assert_eq!(ret.span.line, 3);
    assert_eq!(ret.span.col, 5);
}

#[test]
fn token_offsets_survive_crlf() {
    let lf = "int f(int a) {\n    int x = a + 1;\n    return x;\n}\n";
    let crlf = lf.replace('\n', "\r\n");
    let lf_toks = lex(lf).unwrap();
    let crlf_toks = lex(&crlf).unwrap();
    assert_eq!(lf_toks.len(), crlf_toks.len());
    for (a, b) in lf_toks.iter().zip(&crlf_toks) {
        assert_eq!(a.kind, b.kind);
        // Lines and columns must agree between the two encodings...
        assert_eq!((a.span.line, a.span.col), (b.span.line, b.span.col));
        // ...while byte offsets must index each file's own bytes.
        let (line, col) = line_col_at(&crlf, b.span.offset as usize);
        assert_eq!((b.span.line, b.span.col), (line, col));
    }
}

#[test]
fn parse_error_spans_point_at_the_offending_token_multiline() {
    let src = "int f(int a) {\n    int x = a;\n    return x +;\n}\n";
    let e = parse_and_check(src).unwrap_err();
    let span = e.span.expect("parse error carries a span");
    assert_eq!(span.line, 3);
    assert!(at(src, span).starts_with(';'), "span at {:?}", at(src, span));
    let (line, col) = line_col_at(src, span.offset as usize);
    assert_eq!((span.line, span.col), (line, col));
}

#[test]
fn parse_error_spans_survive_crlf() {
    let lf = "int f(int a) {\n    int x = a;\n    return x +;\n}\n";
    let crlf = lf.replace('\n', "\r\n");
    let le = parse_and_check(lf).unwrap_err().span.unwrap();
    let ce = parse_and_check(&crlf).unwrap_err().span.unwrap();
    assert_eq!((le.line, le.col), (ce.line, ce.col));
    // Two `\r` bytes precede the error (end of lines 1 and 2).
    assert_eq!(ce.offset, le.offset + 2);
    assert!(at(&crlf, ce).starts_with(';'));
}

#[test]
fn lex_error_spans_survive_crlf() {
    let lf = "int f(void) {\n    return 1 @ 2;\n}\n";
    let crlf = lf.replace('\n', "\r\n");
    for src in [lf, crlf.as_str()] {
        let e = parse_and_check(src).unwrap_err();
        let span = e.span.expect("lex error carries a span");
        assert_eq!(span.line, 2);
        assert!(at(src, span).starts_with('@'));
        let (line, col) = line_col_at(src, span.offset as usize);
        assert_eq!((span.line, span.col), (line, col));
    }
}

#[test]
fn type_error_spans_point_at_the_declaration_multiline() {
    // `goto` is rejected by the parser, so use an unsupported *typed*
    // construct: assigning a pointer into an int variable.
    let src = "int g;\nint f(int *p) {\n    g = p;\n    return g;\n}\n";
    let e = parse_and_check(src).unwrap_err();
    let span = e.span.expect("type error carries a span");
    // Assignment type errors carry the statement's own span: the bad
    // store on line 3 (not the enclosing function declaration).
    assert_eq!(span.line, 3);
    assert!(at(src, span).starts_with("g = p"));
    let (line, col) = line_col_at(src, span.offset as usize);
    assert_eq!((span.line, span.col), (line, col));
}

#[test]
fn type_error_spans_survive_crlf() {
    let lf = "int g;\nint f(int *p) {\n    g = p;\n    return g;\n}\n";
    let crlf = lf.replace('\n', "\r\n");
    let le = parse_and_check(lf).unwrap_err().span.unwrap();
    let ce = parse_and_check(&crlf).unwrap_err().span.unwrap();
    assert_eq!((le.line, le.col), (ce.line, ce.col));
    assert_eq!(ce.offset, le.offset + 2); // two `\r`s before line 3
    assert!(at(&crlf, ce).starts_with("g = p"));
}
