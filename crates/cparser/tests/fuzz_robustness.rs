//! Robustness fuzzing: the frontend must never panic — every input, however
//! mangled, yields `Ok` or a clean `Err`.

use cparser::parse_and_check;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEEDS: [&str; 6] = [
    "unsigned f(unsigned a, unsigned b) { return a < b ? b : a; }",
    "struct node { struct node *next; unsigned data; };\n\
     unsigned len(struct node *p) { unsigned n = 0u; while (p) { n = n + 1u; p = p->next; } return n; }",
    "int gcd(int a, int b) { while (b != 0) { int t = b; b = a % b; a = t; } return a; }",
    "unsigned long long mix(unsigned x) { return (unsigned long long)x * 2654435761u; }",
    "void store(unsigned *p, unsigned v) { *p = v; if (v) { *p = *p + 1u; } }",
    "short narrow(int x) { return (short)(x >> 3); }",
];

/// Characters the lexer can meet, weighted toward C-looking text.
fn random_char(rng: &mut StdRng) -> char {
    const POOL: &[u8] = b"abcxyz_ 0123456789+-*/%<>=!&|^~(){};,.\"'\\\n\t?:#[]";
    POOL[rng.gen_range(0..POOL.len())] as char
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xBAD_C0DE);
    for _ in 0..2_000 {
        let len = rng.gen_range(0..200);
        let src: String = (0..len).map(|_| random_char(&mut rng)).collect();
        let _ = parse_and_check(&src);
    }
}

#[test]
fn mutated_valid_sources_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..2_000 {
        let base = SEEDS[rng.gen_range(0..SEEDS.len())];
        let mut bytes: Vec<u8> = base.bytes().collect();
        for _ in 0..rng.gen_range(1..=4) {
            if bytes.is_empty() {
                break;
            }
            let i = rng.gen_range(0..bytes.len());
            match rng.gen_range(0..3) {
                0 => bytes[i] = random_char(&mut rng) as u8,
                1 => {
                    bytes.remove(i);
                }
                _ => bytes.insert(i, random_char(&mut rng) as u8),
            }
        }
        if let Ok(src) = String::from_utf8(bytes) {
            let _ = parse_and_check(&src);
        }
    }
}

#[test]
fn truncations_never_panic() {
    // Every prefix of every seed program: unterminated everything.
    for base in SEEDS {
        for cut in 0..=base.len() {
            if base.is_char_boundary(cut) {
                let _ = parse_and_check(&base[..cut]);
            }
        }
    }
}

#[test]
fn deep_nesting_is_handled() {
    // Deeply nested expressions and blocks: either accepted or a clean
    // error, no stack overflow at reasonable depths.
    for depth in [10usize, 100, 400] {
        let expr = format!(
            "unsigned f(unsigned x) {{ return {}x{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let _ = parse_and_check(&expr);
        let blocks = format!(
            "void g(void) {{ {} {} }}",
            "{ ".repeat(depth),
            "} ".repeat(depth)
        );
        let _ = parse_and_check(&blocks);
    }
}

#[test]
fn pathological_tokens() {
    for src in [
        "int f(void) { return 999999999999999999999999999999; }",
        "int f(void) { return 0x; }",
        "int f(void) { return 1e; }",
        "unsigned f(void) { return 4294967295u; }",
        "int \u{FFFD} (void) {}",
        "/* unterminated",
        "// only a comment",
        "int f(void) { return 'a'; }",
        "int f(void) { return \"str\"; }",
        ";;;;;;",
        "int;",
        "int f(int, int);",
        "int f(f f(f f)) f;",
    ] {
        let _ = parse_and_check(src);
    }
}
