//! Property tests for the widened subset (arrays, `switch`, compound
//! assignment, qualifiers):
//!
//! 1. **Round-trip**: a structurally known program rendered to C text
//!    parses back to exactly the planned AST shape — array lengths,
//!    switch arm/label grouping, fallthrough (an arm not ending in
//!    `break`), qualifier flags, and the single-evaluation desugaring of
//!    compound assignment (`lhs op= e` parses as `lhs = lhs op e` with
//!    the *same* lvalue term on both sides).
//! 2. **Span accuracy**: under randomized indentation, every statement
//!    span of the new forms indexes the original source at its own
//!    keyword (`switch`, `break`, `case`/`default`) or declared name.
//!
//! Both properties go through `typecheck` too, so every generated
//! program is inside the accepted subset, not merely grammatical.

use cparser::ast::{Program, Quals, Stmt, SwitchArm};
use cparser::{lex, parse, parse_and_check, CBinOp, CExpr, CType};
use proptest::prelude::*;

/// The compound operators the generator draws from (all defined on
/// `unsigned` without extra guard preconditions).
const OPS: [(&str, CBinOp); 6] = [
    ("+=", CBinOp::Add),
    ("-=", CBinOp::Sub),
    ("*=", CBinOp::Mul),
    ("^=", CBinOp::BitXor),
    ("&=", CBinOp::BitAnd),
    ("|=", CBinOp::BitOr),
];

/// A structurally known test program over the new syntax.
struct Plan {
    len: u64,
    konst: u64,
    ncases: usize,
    fall_mask: u32,
    use_default: bool,
    use_volatile: bool,
    op_idx: usize,
    indent: usize,
}

impl Plan {
    fn falls_through(&self, arm: usize) -> bool {
        // The last arm always breaks so it cannot fall into `default`.
        arm + 1 != self.ncases && (self.fall_mask >> arm) & 1 == 1
    }

    /// Renders the plan to C source with `indent`-space indentation.
    fn render(&self) -> String {
        let i1 = " ".repeat(self.indent);
        let i2 = " ".repeat(self.indent * 2);
        let i3 = " ".repeat(self.indent * 3);
        let op = OPS[self.op_idx].0;
        let mut s = String::new();
        s.push_str("unsigned f(int x) {\n");
        s.push_str(&format!("{i1}const unsigned c = {}u;\n", self.konst));
        if self.use_volatile {
            s.push_str(&format!("{i1}volatile unsigned v = c;\n"));
        }
        s.push_str(&format!("{i1}unsigned a[{}];\n", self.len));
        s.push_str(&format!("{i1}unsigned i = 0u;\n"));
        s.push_str(&format!("{i1}while (i < {}u) {{\n", self.len));
        s.push_str(&format!("{i2}a[i] = c;\n"));
        s.push_str(&format!("{i2}i += 1u;\n"));
        s.push_str(&format!("{i1}}}\n"));
        s.push_str(&format!("{i1}switch (x) {{\n"));
        for k in 0..self.ncases {
            s.push_str(&format!("{i2}case {k}:\n"));
            s.push_str(&format!("{i3}a[{}u] {op} c;\n", k as u64 % self.len));
            if !self.falls_through(k) {
                s.push_str(&format!("{i3}break;\n"));
            }
        }
        if self.use_default {
            s.push_str(&format!("{i2}default:\n"));
            s.push_str(&format!("{i3}i++;\n"));
            s.push_str(&format!("{i3}break;\n"));
        }
        s.push_str(&format!("{i1}}}\n"));
        if self.use_volatile {
            s.push_str(&format!("{i1}return a[0u] + i + v;\n"));
        } else {
            s.push_str(&format!("{i1}return a[0u] + i;\n"));
        }
        s.push_str("}\n");
        s
    }
}

/// Parses without typechecking (the round-trip target is the untyped AST).
fn parse_src(src: &str) -> Program {
    parse(&lex(src).expect("lexes")).expect("parses")
}

/// The statements of `f`'s body.
fn body_of(prog: &Program) -> &[Stmt] {
    &prog.function("f").expect("f is defined").body
}

fn find_switch(body: &[Stmt]) -> &Stmt {
    body.iter()
        .find(|s| matches!(s, Stmt::Switch { .. }))
        .expect("a switch statement")
}

/// Recursively walks statements, asserting each new-syntax span indexes
/// the source at the expected token.
fn check_spans(src: &str, stmts: &[Stmt]) {
    let at = |sp: ir::diag::Span| &src[sp.offset as usize..];
    for s in stmts {
        match s {
            Stmt::Decl { name, span, .. } => {
                assert!(
                    at(*span).starts_with(name.as_str()),
                    "Decl `{name}` span at {:?}",
                    &at(*span)[..8.min(at(*span).len())]
                );
            }
            Stmt::Break(span) => assert!(at(*span).starts_with("break")),
            Stmt::Continue(span) => assert!(at(*span).starts_with("continue")),
            Stmt::Return(_, span) => assert!(at(*span).starts_with("return")),
            Stmt::While { span, body, .. } => {
                assert!(at(*span).starts_with("while") || at(*span).starts_with("for"));
                check_spans(src, body);
            }
            Stmt::DoWhile { span, body, .. } => {
                assert!(at(*span).starts_with("do"));
                check_spans(src, body);
            }
            Stmt::If {
                span,
                then_branch,
                else_branch,
                ..
            } => {
                assert!(at(*span).starts_with("if"));
                check_spans(src, then_branch);
                check_spans(src, else_branch);
            }
            Stmt::Switch { span, arms, .. } => {
                assert!(at(*span).starts_with("switch"));
                for arm in arms {
                    assert!(
                        at(arm.span).starts_with("case") || at(arm.span).starts_with("default"),
                        "arm span at {:?}",
                        &at(arm.span)[..8.min(at(arm.span).len())]
                    );
                    check_spans(src, &arm.body);
                }
            }
            Stmt::Block(b) => check_spans(src, b),
            Stmt::Assign { .. } | Stmt::Expr(..) => {}
        }
    }
}

proptest! {
    #[test]
    fn new_syntax_round_trips(
        len in 1u64..9,
        konst in 1u64..9,
        ncases in 1usize..4,
        fall_mask in 0u32..8,
        use_default in any::<bool>(),
        use_volatile in any::<bool>(),
        op_idx in 0usize..6,
        indent in 1usize..5,
    ) {
        let plan = Plan { len, konst, ncases, fall_mask, use_default, use_volatile, op_idx, indent };
        let src = plan.render();
        // Inside the accepted subset, not merely grammatical.
        parse_and_check(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let prog = parse_src(&src);
        let body = body_of(&prog);

        // Qualifier flags land on the right declarations.
        let decl = |n: &str| {
            body.iter().find_map(|s| match s {
                Stmt::Decl { name, ty, quals, init, .. } if name == n => {
                    Some((ty.clone(), *quals, init.is_some()))
                }
                _ => None,
            })
        };
        let (c_ty, c_quals, c_init) = decl("c").expect("const decl");
        assert_eq!(c_ty, CType::UINT);
        assert_eq!(c_quals, Quals { is_const: true, is_volatile: false });
        assert!(c_init);
        if use_volatile {
            let (_, v_quals, _) = decl("v").expect("volatile decl");
            assert_eq!(v_quals, Quals { is_const: false, is_volatile: true });
        }

        // The array declaration round-trips its element type and length.
        let (a_ty, a_quals, a_init) = decl("a").expect("array decl");
        assert_eq!(a_ty, CType::UINT.arr_of(len));
        assert_eq!(a_quals, Quals::default());
        assert!(!a_init);

        // Switch arm/label grouping and fallthrough structure.
        let Stmt::Switch { scrutinee, arms, .. } = find_switch(body) else {
            unreachable!()
        };
        assert_eq!(*scrutinee, CExpr::Ident("x".into()));
        assert_eq!(arms.len(), ncases + usize::from(use_default));
        for (k, arm) in arms[..ncases].iter().enumerate() {
            assert_eq!(
                arm.labels,
                vec![Some(CExpr::IntLit(k as u64, false))],
                "labels of arm {k}"
            );
            let ends_in_break = matches!(arm.body.last(), Some(Stmt::Break(_)));
            assert_eq!(
                ends_in_break,
                !plan.falls_through(k),
                "fallthrough of arm {k}\n{src}"
            );
            // Compound assignment desugars to a single-evaluation binary
            // with the identical lvalue term on both sides.
            let Some(Stmt::Assign { lhs, rhs, .. }) = arm.body.first() else {
                panic!("arm {k} starts with the compound assignment\n{src}");
            };
            assert!(matches!(lhs, CExpr::Index(..)), "lhs of arm {k}: {lhs:?}");
            let CExpr::Binary(op, b_lhs, _) = rhs else {
                panic!("rhs of arm {k} is a binary op: {rhs:?}");
            };
            assert_eq!(*op, OPS[op_idx].1);
            assert_eq!(**b_lhs, *lhs, "single evaluation of arm {k}'s lvalue");
        }
        if use_default {
            let arm: &SwitchArm = arms.last().unwrap();
            assert_eq!(arm.labels, vec![None]);
            // `i++` desugars like `i += 1`.
            let Some(Stmt::Assign { lhs, rhs, .. }) = arm.body.first() else {
                panic!("default arm starts with i++\n{src}");
            };
            assert_eq!(*lhs, CExpr::Ident("i".into()));
            assert_eq!(
                *rhs,
                CExpr::Binary(
                    CBinOp::Add,
                    Box::new(CExpr::Ident("i".into())),
                    Box::new(CExpr::IntLit(1, false)),
                )
            );
        }

        // Span accuracy under this indentation.
        check_spans(&src, body);
    }
}
