//! The lexer.

use std::fmt;

pub use ir::diag::Span;

/// A token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal with optional unsignedness from a `u`/`U` suffix.
    IntLit(u64, bool),
    /// Character literal (value of the character).
    CharLit(u8),
    /// Punctuation or operator, e.g. `->`, `<<=`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset, 1-based line and column of the token's first byte.
    pub span: Span,
}

impl Token {
    /// 1-based source line (shorthand for `span.line`).
    #[must_use]
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// Position of the offending byte.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at line {}, column {}: {}",
            self.span.line, self.span.col, self.msg
        )
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&",
    "|", "^", "~", "?", ":", ";", ",", ".", "(", ")", "{", "}", "[", "]",
];

/// Lexes a complete source text.
///
/// Handles `//` and `/* */` comments and preprocessor-style lines starting
/// with `#` (skipped — the case-study sources use `#include` headers only
/// for documentation purposes).
///
/// # Errors
///
/// Returns a [`LexError`] on malformed literals or unexpected characters.
#[allow(clippy::too_many_lines, clippy::cast_possible_truncation)]
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    // Byte index just past the most recent newline: columns are 1-based
    // offsets from here.
    let mut line_start = 0usize;
    let mut out = Vec::new();
    let span_at = |at: usize, line: u32, line_start: usize| -> Span {
        Span::new(at as u32, line, (at - line_start + 1) as u32)
    };
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            line_start = i;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments
        if c == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        continue 'outer;
                    }
                    i += 1;
                }
                return Err(LexError {
                    msg: "unterminated block comment".into(),
                    span: span_at(i.min(bytes.len()), line, line_start),
                });
            }
        }
        // Preprocessor lines: skip to end of line.
        if c == b'#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident(src[start..i].to_owned()),
                span: span_at(start, line, line_start),
            });
            continue;
        }
        // Numbers
        if c.is_ascii_digit() {
            let start = i;
            let radix = if c == b'0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                i += 2;
                16
            } else {
                10
            };
            let digits_start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_hexdigit() && (radix == 16 || bytes[i].is_ascii_digit()))
            {
                i += 1;
            }
            let text = if radix == 16 {
                &src[digits_start..i]
            } else {
                &src[start..i]
            };
            let value = u64::from_str_radix(text, radix).map_err(|_| LexError {
                msg: format!("malformed integer literal `{}`", &src[start..i]),
                span: span_at(start, line, line_start),
            })?;
            // Suffixes: u/U marks unsigned; l/L accepted and ignored.
            let mut unsigned = false;
            while i < bytes.len() {
                match bytes[i] | 0x20 {
                    b'u' => {
                        unsigned = true;
                        i += 1;
                    }
                    b'l' => {
                        i += 1;
                    }
                    _ => break,
                }
            }
            out.push(Token {
                kind: TokenKind::IntLit(value, unsigned),
                span: span_at(start, line, line_start),
            });
            continue;
        }
        // Character literals
        if c == b'\'' {
            let (value, consumed) = if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                let esc = match bytes[i + 2] {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'0' => 0,
                    b'\\' => b'\\',
                    b'\'' => b'\'',
                    other => {
                        return Err(LexError {
                            msg: format!("unknown escape `\\{}`", other as char),
                            span: span_at(i, line, line_start),
                        })
                    }
                };
                (esc, 4)
            } else if i + 2 < bytes.len() {
                (bytes[i + 1], 3)
            } else {
                return Err(LexError {
                    msg: "unterminated character literal".into(),
                    span: span_at(i, line, line_start),
                });
            };
            if bytes.get(i + consumed - 1) != Some(&b'\'') {
                return Err(LexError {
                    msg: "unterminated character literal".into(),
                    span: span_at(i, line, line_start),
                });
            }
            out.push(Token {
                kind: TokenKind::CharLit(value),
                span: span_at(i, line, line_start),
            });
            i += consumed;
            continue;
        }
        // Operators / punctuation
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Token {
                    kind: TokenKind::Punct(p),
                    span: span_at(i, line, line_start),
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            msg: format!("unexpected character `{}`", c as char),
            span: span_at(i, line, line_start),
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        span: span_at(bytes.len(), line, line_start),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            kinds("int x_1"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x_1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0x2A 7u 1UL"),
            vec![
                TokenKind::IntLit(42, false),
                TokenKind::IntLit(42, false),
                TokenKind::IntLit(7, true),
                TokenKind::IntLit(1, true),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("a->b <<= c << d <= e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("->"),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<<"),
                TokenKind::Ident("d".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_and_preprocessor() {
        let src = "#include <stdio.h>\nint /* block\ncomment */ x; // line\ny";
        let ks = kinds(src);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct(";"),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line(), 1);
        assert_eq!(toks[1].line(), 2);
        assert_eq!(toks[2].line(), 4);
    }

    #[test]
    fn spans_track_offset_and_column() {
        let toks = lex("ab cd\n  ef").unwrap();
        // `ab` at offset 0, line 1, col 1
        assert_eq!(toks[0].span, Span::new(0, 1, 1));
        // `cd` at offset 3, line 1, col 4
        assert_eq!(toks[1].span, Span::new(3, 1, 4));
        // `ef` at offset 8, line 2, col 3
        assert_eq!(toks[2].span, Span::new(8, 2, 3));
    }

    #[test]
    fn error_spans_point_at_the_offending_byte() {
        let e = lex("x =\n  @").unwrap_err();
        assert_eq!(e.span, Span::new(6, 2, 3));
        assert!(e.to_string().contains("line 2, column 3"));
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds(r"'a' '\n' '\0'"),
            vec![
                TokenKind::CharLit(b'a'),
                TokenKind::CharLit(b'\n'),
                TokenKind::CharLit(0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'x").is_err());
    }
}
