//! Recursive-descent parser for the supported C subset.

use std::fmt;

use ir::ty::{Signedness, Width};

use crate::ast::{
    CBinOp, CExpr, CType, CUnOp, FunDef, GlobalDecl, Program, Quals, Stmt, StructDecl,
    SwitchArm,
};
use crate::lexer::{Span, Token, TokenKind};

/// A syntax error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// Position of the token the parser was looking at.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.span.line, self.span.col, self.msg
        )
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or uses of unsupported
/// syntax (`goto`, `union`, floating point, `&`).
pub fn parse(tokens: &[Token]) -> Result<Program> {
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    p.program()
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "int", "unsigned", "signed", "char", "short", "long", "struct",
];

const UNSUPPORTED_KEYWORDS: &[&str] =
    &["goto", "union", "float", "double", "typedef", "enum"];

/// Declaration qualifiers the subset accepts (in leading position only).
const QUAL_KEYWORDS: &[&str] = &["const", "volatile"];

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    depth: u32,
}

/// Maximum expression/statement nesting depth. The parser is recursive-
/// descent; unbounded nesting would overflow the stack, so beyond this we
/// report a clean error instead.
const MAX_NESTING: u32 = 200;

impl<'a> Parser<'a> {
    fn peek(&self) -> &'a Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &'a Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseError {
            msg: msg.into(),
            span: self.span(),
        })
    }

    fn bump(&mut self) -> &'a Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        self.pos += 1;
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", describe(&self.peek().kind)))
        }
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(n) if n == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_any_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(n) => {
                let n = n.clone();
                self.pos += 1;
                Ok(n)
            }
            k => self.err(format!("expected identifier, found {}", describe(k))),
        }
    }

    fn at_type_start(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(n)
            if TYPE_KEYWORDS.contains(&n.as_str()) || QUAL_KEYWORDS.contains(&n.as_str()))
    }

    fn at_qual(&self) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(n) if QUAL_KEYWORDS.contains(&n.as_str()))
    }

    /// Parses leading declaration qualifiers (`const` / `volatile`).
    fn decl_quals(&mut self) -> Quals {
        let mut q = Quals::default();
        loop {
            if self.eat_ident("const") {
                q.is_const = true;
            } else if self.eat_ident("volatile") {
                q.is_volatile = true;
            } else {
                return q;
            }
        }
    }

    fn check_unsupported(&self) -> Result<()> {
        if let TokenKind::Ident(n) = &self.peek().kind {
            if UNSUPPORTED_KEYWORDS.contains(&n.as_str()) {
                return self.err(format!("`{n}` is not in the supported C subset"));
            }
        }
        Ok(())
    }

    // ---- types -----------------------------------------------------------

    /// Parses a base type (no pointer stars).
    fn base_type(&mut self) -> Result<CType> {
        if self.eat_ident("void") {
            return Ok(CType::Void);
        }
        if self.eat_ident("struct") {
            let name = self.expect_any_ident()?;
            return Ok(CType::Struct(name));
        }
        let mut sign: Option<Signedness> = None;
        if self.eat_ident("unsigned") {
            sign = Some(Signedness::Unsigned);
        } else if self.eat_ident("signed") {
            sign = Some(Signedness::Signed);
        }
        // Width keywords.
        let width = if self.eat_ident("char") {
            Some(Width::W8)
        } else if self.eat_ident("short") {
            self.eat_ident("int");
            Some(Width::W16)
        } else if self.eat_ident("long") {
            if self.eat_ident("long") {
                self.eat_ident("int");
                Some(Width::W64)
            } else {
                // `long` is 32-bit on the modelled architecture.
                self.eat_ident("int");
                Some(Width::W32)
            }
        } else if self.eat_ident("int") {
            Some(Width::W32)
        } else {
            None
        };
        match (sign, width) {
            (None, None) => self.err("expected a type"),
            (s, w) => {
                let w = w.unwrap_or(Width::W32);
                // Plain `char` is unsigned on the modelled architecture
                // (matching ARM, the seL4 verification target).
                let s = s.unwrap_or(if w == Width::W8 {
                    Signedness::Unsigned
                } else {
                    Signedness::Signed
                });
                Ok(CType::Int(w, s))
            }
        }
    }

    /// Parses a full type: base type plus pointer stars.
    fn full_type(&mut self) -> Result<CType> {
        let mut t = self.base_type()?;
        while self.eat_punct("*") {
            t = t.ptr_to();
        }
        Ok(t)
    }

    /// Parses an optional `[N]` array suffix after a declarator name.
    fn array_suffix(&mut self, ty: CType) -> Result<CType> {
        if !self.eat_punct("[") {
            return Ok(ty);
        }
        if ty.is_ptr() {
            return self.err("arrays of pointers are not in the supported subset");
        }
        if ty == CType::Void {
            return self.err("arrays of void are not a C type");
        }
        let n = match &self.peek().kind {
            TokenKind::IntLit(v, _) => *v,
            k => {
                return self.err(format!(
                    "array length must be an integer literal, found {}",
                    describe(k)
                ))
            }
        };
        if n == 0 {
            return self.err("zero-length arrays are not in the supported subset");
        }
        if n > 1 << 16 {
            return self.err("array length too large for the supported subset (max 65536)");
        }
        self.pos += 1;
        self.expect_punct("]")?;
        if self.at_punct("[") {
            return self.err("multi-dimensional arrays are not in the supported subset");
        }
        Ok(ty.arr_of(n))
    }

    // ---- top level -------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut prog = Program::default();
        while !matches!(self.peek().kind, TokenKind::Eof) {
            self.check_unsupported()?;
            if self.at_ident("struct") && matches!(self.peek2().kind, TokenKind::Ident(_)) {
                // Could be `struct S { ... };` (declaration) or the start of
                // a global/function using a struct type. Look ahead for `{`.
                let save = self.pos;
                self.bump();
                let span = self.span();
                let name = self.expect_any_ident()?;
                if self.at_punct("{") {
                    prog.structs.push(self.struct_body(name, span)?);
                    continue;
                }
                self.pos = save;
            }
            let quals = self.decl_quals();
            let ty = self.full_type()?;
            if self.at_qual() {
                return self.err(
                    "`const`/`volatile` must precede the type \
                     (qualified pointers are not in the supported subset)",
                );
            }
            if quals != Quals::default() && ty.is_ptr() {
                return self.err(
                    "qualified pointer declarations (`const T *`) are not in the \
                     supported subset",
                );
            }
            let span = self.span();
            let name = self.expect_any_ident()?;
            if self.at_punct("(") {
                if quals != Quals::default() {
                    return self.err("qualified function return types are not supported");
                }
                prog.functions.push(self.function(ty, name, span)?);
            } else {
                let ty = self.array_suffix(ty)?;
                let init = if self.eat_punct("=") {
                    if ty.is_array() {
                        return self.err(
                            "array initialisers are not supported; \
                             assign elements individually",
                        );
                    }
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                prog.globals.push(GlobalDecl { name, ty, quals, init, span });
            }
        }
        Ok(prog)
    }

    fn struct_body(&mut self, name: String, span: Span) -> Result<StructDecl> {
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let base = self.base_type()?;
            loop {
                let mut ty = base.clone();
                while self.eat_punct("*") {
                    ty = ty.ptr_to();
                }
                let fname = self.expect_any_ident()?;
                if self.at_punct("[") {
                    return self.err("array fields are not in the supported subset");
                }
                if self.at_punct(":") {
                    return self.err("bitfields are not in the supported subset");
                }
                fields.push((fname, ty));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(";")?;
        }
        self.expect_punct(";")?;
        Ok(StructDecl { name, fields, span })
    }

    fn function(&mut self, ret: CType, name: String, span: Span) -> Result<FunDef> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            if self.at_ident("void") && matches!(self.peek2().kind, TokenKind::Punct(")")) {
                self.bump();
                self.expect_punct(")")?;
            } else {
                loop {
                    if self.at_qual() {
                        return self.err(
                            "qualified parameters are not in the supported subset",
                        );
                    }
                    let pty = self.full_type()?;
                    let pname = self.expect_any_ident()?;
                    if self.at_punct("[") {
                        return self.err(
                            "array parameters are not in the supported subset \
                             (use a pointer)",
                        );
                    }
                    params.push((pname, pty));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
        }
        if self.eat_punct(";") {
            // Prototype: represent as a definition with an empty body so the
            // typechecker can register the signature; callers must provide a
            // real definition for translated functions.
            return Ok(FunDef {
                name,
                ret,
                params,
                body: Vec::new(),
                is_definition: false,
                span,
            });
        }
        let body = self.block()?;
        Ok(FunDef {
            name,
            ret,
            params,
            body,
            is_definition: true,
            span,
        })
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek().kind, TokenKind::Eof) {
                return self.err("unexpected end of input in block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        self.depth += 1;
        let r = if self.depth > MAX_NESTING {
            self.err("statement nesting too deep")
        } else {
            self.stmt_inner()
        };
        self.depth -= 1;
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt> {
        self.check_unsupported()?;
        if self.at_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        let span = self.span();
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.branch_body()?;
            let else_branch = if self.eat_ident("else") {
                self.branch_body()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            });
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.branch_body()?;
            return Ok(Stmt::While { cond, body, span });
        }
        if self.eat_ident("do") {
            let body = self.branch_body()?;
            if !self.eat_ident("while") {
                return self.err("expected `while` after `do` body");
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond, span });
        }
        if self.eat_ident("for") {
            return self.for_stmt(span);
        }
        if self.eat_ident("switch") {
            return self.switch_stmt(span);
        }
        if self.at_ident("case") || self.at_ident("default") {
            return self.err(
                "`case`/`default` labels are only allowed at the top level of a \
                 `switch` body",
            );
        }
        if self.eat_ident("return") {
            let value = if self.at_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value, span));
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(span));
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(span));
        }
        if self.at_type_start() {
            let s = self.decl_stmt()?;
            self.expect_punct(";")?;
            return Ok(s);
        }
        let s = self.simple_stmt()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    /// A loop/branch body: a block or a single statement.
    fn branch_body(&mut self) -> Result<Vec<Stmt>> {
        if self.at_punct("{") {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn decl_stmt(&mut self) -> Result<Stmt> {
        let quals = self.decl_quals();
        let ty = self.full_type()?;
        if self.at_qual() {
            return self.err(
                "`const`/`volatile` must precede the type \
                 (qualified pointers are not in the supported subset)",
            );
        }
        if quals != Quals::default() && ty.is_ptr() {
            return self.err(
                "qualified pointer declarations (`const T *`) are not in the \
                 supported subset",
            );
        }
        let span = self.span();
        let name = self.expect_any_ident()?;
        let ty = self.array_suffix(ty)?;
        let init = if self.eat_punct("=") {
            if ty.is_array() {
                return self.err(
                    "array initialisers are not supported; assign elements individually",
                );
            }
            Some(self.expr()?)
        } else {
            None
        };
        if self.at_punct(",") {
            return self.err("multiple declarators per statement are unsupported; split them");
        }
        Ok(Stmt::Decl { name, ty, quals, init, span })
    }

    /// Assignment, compound assignment, increment/decrement, or a call.
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        // Prefix increment/decrement as statements.
        for (op, bin) in [("++", CBinOp::Add), ("--", CBinOp::Sub)] {
            if self.at_punct(op) {
                self.bump();
                let lhs = self.unary()?;
                self.check_single_eval(&lhs)?;
                return Ok(Stmt::Assign {
                    lhs: lhs.clone(),
                    rhs: CExpr::Binary(bin, Box::new(lhs), Box::new(CExpr::IntLit(1, false))),
                    span,
                });
            }
        }
        let lhs = self.expr()?;
        if self.eat_punct("=") {
            let rhs = self.expr()?;
            return Ok(Stmt::Assign { lhs, rhs, span });
        }
        for (op, bin) in [
            ("+=", CBinOp::Add),
            ("-=", CBinOp::Sub),
            ("*=", CBinOp::Mul),
            ("/=", CBinOp::Div),
            ("%=", CBinOp::Mod),
            ("&=", CBinOp::BitAnd),
            ("|=", CBinOp::BitOr),
            ("^=", CBinOp::BitXor),
            ("<<=", CBinOp::Shl),
            (">>=", CBinOp::Shr),
        ] {
            if self.at_punct(op) {
                self.bump();
                self.check_single_eval(&lhs)?;
                let rhs = self.expr()?;
                return Ok(Stmt::Assign {
                    lhs: lhs.clone(),
                    rhs: CExpr::Binary(bin, Box::new(lhs), Box::new(rhs)),
                    span,
                });
            }
        }
        for (op, bin) in [("++", CBinOp::Add), ("--", CBinOp::Sub)] {
            if self.at_punct(op) {
                self.bump();
                self.check_single_eval(&lhs)?;
                return Ok(Stmt::Assign {
                    lhs: lhs.clone(),
                    rhs: CExpr::Binary(bin, Box::new(lhs), Box::new(CExpr::IntLit(1, false))),
                    span,
                });
            }
        }
        Ok(Stmt::Expr(lhs, span))
    }

    /// Compound assignment and `++`/`--` desugar by duplicating the lvalue
    /// expression, which is only sound when re-evaluating it is pure. Calls
    /// are the one effectful expression form in the subset, so reject them.
    fn check_single_eval(&self, lhs: &CExpr) -> Result<()> {
        if expr_contains_call(lhs) {
            return self.err(
                "compound assignment / increment on an lvalue containing a \
                 function call is not supported (the call would be evaluated twice)",
            );
        }
        Ok(())
    }

    /// Parses `switch (e) { case c: ... default: ... }`. Arms are kept in
    /// source order with fallthrough implicit; the typechecker desugars the
    /// whole construct into guarded branches over a match index.
    fn switch_stmt(&mut self, span: Span) -> Result<Stmt> {
        self.expect_punct("(")?;
        let scrutinee = self.expr()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut arms: Vec<SwitchArm> = Vec::new();
        while !self.at_punct("}") {
            let arm_span = self.span();
            let mut labels = Vec::new();
            loop {
                if self.eat_ident("case") {
                    // `binary(0)` rather than `expr()`: a ternary constant
                    // would fight the label's `:` for the same token.
                    let c = self.binary(0)?;
                    self.expect_punct(":")?;
                    labels.push(Some(c));
                } else if self.eat_ident("default") {
                    self.expect_punct(":")?;
                    labels.push(None);
                } else if labels.is_empty() {
                    return self.err("expected `case` or `default` label in `switch` body");
                } else {
                    break;
                }
            }
            let mut body = Vec::new();
            while !self.at_punct("}") && !self.at_ident("case") && !self.at_ident("default") {
                body.push(self.stmt()?);
            }
            // The desugaring may wrap the switch in a run-once loop so that
            // `break` binds via the existing exception dance; a `continue`
            // here would bind to that wrapper instead of the enclosing loop.
            if contains_direct_continue(&body) {
                return self.err(
                    "`continue` inside `switch` is not supported \
                     (it would bind to the enclosing loop)",
                );
            }
            arms.push(SwitchArm {
                labels,
                body,
                span: arm_span,
            });
        }
        self.expect_punct("}")?;
        if arms.is_empty() {
            return self.err("`switch` body must contain at least one `case` or `default` label");
        }
        Ok(Stmt::Switch {
            scrutinee,
            arms,
            span,
        })
    }

    fn for_stmt(&mut self, span: Span) -> Result<Stmt> {
        self.expect_punct("(")?;
        let init = if self.at_punct(";") {
            None
        } else if self.at_type_start() {
            Some(self.decl_stmt()?)
        } else {
            Some(self.simple_stmt()?)
        };
        self.expect_punct(";")?;
        let cond = if self.at_punct(";") {
            CExpr::IntLit(1, false)
        } else {
            self.expr()?
        };
        self.expect_punct(";")?;
        let step = if self.at_punct(")") {
            None
        } else {
            Some(self.simple_stmt()?)
        };
        self.expect_punct(")")?;
        let body = self.branch_body()?;
        // `for` desugars to a while loop with the step appended. `continue`
        // directly inside the body would skip the step, so it is rejected.
        if contains_direct_continue(&body) {
            return self.err("`continue` inside `for` is not supported (use `while`)");
        }
        let mut while_body = body;
        if let Some(s) = step {
            while_body.push(s);
        }
        let w = Stmt::While {
            cond,
            body: while_body,
            span,
        };
        Ok(match init {
            Some(i) => Stmt::Block(vec![i, w]),
            None => w,
        })
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<CExpr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<CExpr> {
        let c = self.binary(0)?;
        if self.eat_punct("?") {
            let t = self.expr()?;
            self.expect_punct(":")?;
            let e = self.ternary()?;
            Ok(CExpr::Cond(Box::new(c), Box::new(t), Box::new(e)))
        } else {
            Ok(c)
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<CExpr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = CExpr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<(CBinOp, u8)> {
        let TokenKind::Punct(p) = &self.peek().kind else {
            return None;
        };
        Some(match *p {
            "||" => (CBinOp::LOr, 1),
            "&&" => (CBinOp::LAnd, 2),
            "|" => (CBinOp::BitOr, 3),
            "^" => (CBinOp::BitXor, 4),
            "&" => (CBinOp::BitAnd, 5),
            "==" => (CBinOp::Eq, 6),
            "!=" => (CBinOp::Ne, 6),
            "<" => (CBinOp::Lt, 7),
            "<=" => (CBinOp::Le, 7),
            ">" => (CBinOp::Gt, 7),
            ">=" => (CBinOp::Ge, 7),
            "<<" => (CBinOp::Shl, 8),
            ">>" => (CBinOp::Shr, 8),
            "+" => (CBinOp::Add, 9),
            "-" => (CBinOp::Sub, 9),
            "*" => (CBinOp::Mul, 10),
            "/" => (CBinOp::Div, 10),
            "%" => (CBinOp::Mod, 10),
            _ => return None,
        })
    }

    fn unary(&mut self) -> Result<CExpr> {
        self.depth += 1;
        let r = if self.depth > MAX_NESTING {
            self.err("expression nesting too deep")
        } else {
            self.unary_inner()
        };
        self.depth -= 1;
        r
    }

    fn unary_inner(&mut self) -> Result<CExpr> {
        if self.eat_punct("-") {
            return Ok(CExpr::Unary(CUnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(CExpr::Unary(CUnOp::Not, Box::new(self.unary()?)));
        }
        if self.eat_punct("~") {
            return Ok(CExpr::Unary(CUnOp::BitNot, Box::new(self.unary()?)));
        }
        if self.eat_punct("*") {
            return Ok(CExpr::Unary(CUnOp::Deref, Box::new(self.unary()?)));
        }
        if self.at_punct("&") {
            return self.err(
                "`&` (address-of) is not in the supported subset \
                 (no references to local variables)",
            );
        }
        if self.at_ident("sizeof") {
            self.bump();
            self.expect_punct("(")?;
            let t = self.full_type()?;
            self.expect_punct(")")?;
            return Ok(CExpr::SizeOf(t));
        }
        // Cast: `(` followed by a type keyword.
        if self.at_punct("(")
            && matches!(&self.peek2().kind,
                TokenKind::Ident(n) if TYPE_KEYWORDS.contains(&n.as_str()))
        {
            self.bump();
            let t = self.full_type()?;
            self.expect_punct(")")?;
            return Ok(CExpr::Cast(t, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<CExpr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("->") {
                let f = self.expect_any_ident()?;
                e = CExpr::Arrow(Box::new(e), f);
            } else if self.eat_punct(".") {
                let f = self.expect_any_ident()?;
                e = CExpr::Member(Box::new(e), f);
            } else if self.eat_punct("[") {
                let i = self.expr()?;
                self.expect_punct("]")?;
                e = CExpr::Index(Box::new(e), Box::new(i));
            } else if self.at_punct("(") {
                let CExpr::Ident(name) = e else {
                    return self.err("calls through function pointers are unsupported");
                };
                self.bump();
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = CExpr::Call(name, args);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<CExpr> {
        self.check_unsupported()?;
        match &self.peek().kind {
            TokenKind::IntLit(v, u) => {
                let e = CExpr::IntLit(*v, *u);
                self.pos += 1;
                Ok(e)
            }
            TokenKind::CharLit(c) => {
                let e = CExpr::IntLit(u64::from(*c), false);
                self.pos += 1;
                Ok(e)
            }
            TokenKind::Ident(n) if n == "NULL" => {
                self.pos += 1;
                Ok(CExpr::Null)
            }
            TokenKind::Ident(n) => {
                let e = CExpr::Ident(n.clone());
                self.pos += 1;
                Ok(e)
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            k => self.err(format!("expected expression, found {}", describe(k))),
        }
    }
}

/// Does this expression contain a function call anywhere?
fn expr_contains_call(e: &CExpr) -> bool {
    match e {
        CExpr::IntLit(..) | CExpr::Null | CExpr::Ident(_) | CExpr::SizeOf(_) => false,
        CExpr::Call(..) => true,
        CExpr::Unary(_, a) | CExpr::Member(a, _) | CExpr::Arrow(a, _) | CExpr::Cast(_, a) => {
            expr_contains_call(a)
        }
        CExpr::Binary(_, a, b) | CExpr::Index(a, b) => {
            expr_contains_call(a) || expr_contains_call(b)
        }
        CExpr::Cond(a, b, c) => {
            expr_contains_call(a) || expr_contains_call(b) || expr_contains_call(c)
        }
    }
}

/// Does this statement list contain a `continue` that would bind to the
/// enclosing loop (i.e. not nested inside another loop)?
fn contains_direct_continue(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Continue(_) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_direct_continue(then_branch) || contains_direct_continue(else_branch),
        Stmt::Block(b) => contains_direct_continue(b),
        _ => false,
    })
}

fn describe(k: &TokenKind) -> String {
    match k {
        TokenKind::Ident(n) => format!("`{n}`"),
        TokenKind::IntLit(v, _) => format!("`{v}`"),
        TokenKind::CharLit(c) => format!("character literal `{}`", *c as char),
        TokenKind::Punct(p) => format!("`{p}`"),
        TokenKind::Eof => "end of input".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn p(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    fn perr(src: &str) -> ParseError {
        parse(&lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn max_function() {
        let prog = p("int max(int a, int b) { if (a < b) return b; return a; }");
        let f = &prog.functions[0];
        assert_eq!(f.name, "max");
        assert_eq!(f.ret, CType::INT);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 2);
        assert!(matches!(&f.body[0], Stmt::If { .. }));
    }

    #[test]
    fn struct_and_pointers() {
        let prog = p("struct node { struct node *next; unsigned data; };\n\
                      struct node *head;");
        assert_eq!(prog.structs[0].name, "node");
        assert_eq!(prog.structs[0].fields.len(), 2);
        assert_eq!(
            prog.structs[0].fields[0].1,
            CType::Struct("node".into()).ptr_to()
        );
        assert_eq!(prog.globals[0].ty, CType::Struct("node".into()).ptr_to());
    }

    #[test]
    fn types() {
        let prog = p("unsigned char a; short b; unsigned long long c; long d; char e;");
        let tys: Vec<&CType> = prog.globals.iter().map(|g| &g.ty).collect();
        assert_eq!(*tys[0], CType::Int(Width::W8, Signedness::Unsigned));
        assert_eq!(*tys[1], CType::Int(Width::W16, Signedness::Signed));
        assert_eq!(*tys[2], CType::Int(Width::W64, Signedness::Unsigned));
        assert_eq!(*tys[3], CType::Int(Width::W32, Signedness::Signed));
        assert_eq!(*tys[4], CType::Int(Width::W8, Signedness::Unsigned));
    }

    #[test]
    fn loops_and_control() {
        let prog = p("void f(void) { while (1) { break; } do { continue; } while (0); }");
        assert!(matches!(&prog.functions[0].body[0], Stmt::While { .. }));
        assert!(matches!(&prog.functions[0].body[1], Stmt::DoWhile { .. }));
    }

    #[test]
    fn for_desugars() {
        let prog = p("void f(void) { for (int i = 0; i < 10; i++) { } }");
        let Stmt::Block(b) = &prog.functions[0].body[0] else {
            panic!("expected block");
        };
        assert!(matches!(&b[0], Stmt::Decl { name, .. } if name == "i"));
        let Stmt::While { body, .. } = &b[1] else {
            panic!("expected while");
        };
        assert!(matches!(&body[0], Stmt::Assign { .. }), "step appended");
    }

    #[test]
    fn for_with_continue_rejected() {
        let e = perr("void f(void) { for (;;) { continue; } }");
        assert!(e.msg.contains("continue"));
        // ... but a nested while's continue is fine.
        p("void f(void) { for (;;) { while (1) { continue; } } }");
    }

    #[test]
    fn expressions() {
        let prog = p("unsigned f(unsigned l, unsigned r) { unsigned m = (l + r) / 2; return m; }");
        let Stmt::Decl { init: Some(e), .. } = &prog.functions[0].body[0] else {
            panic!("expected decl");
        };
        assert_eq!(
            *e,
            CExpr::Binary(
                CBinOp::Div,
                Box::new(CExpr::Binary(
                    CBinOp::Add,
                    Box::new(CExpr::Ident("l".into())),
                    Box::new(CExpr::Ident("r".into()))
                )),
                Box::new(CExpr::IntLit(2, false))
            )
        );
    }

    #[test]
    fn precedence() {
        let prog = p("int g; void f(void) { g = 1 + 2 * 3 == 7 && 1 < 2; }");
        let Stmt::Assign { rhs, .. } = &prog.functions[0].body[0] else {
            panic!()
        };
        // (((1 + (2*3)) == 7) && (1 < 2))
        let CExpr::Binary(CBinOp::LAnd, l, _) = rhs else {
            panic!("top is &&: {rhs:?}")
        };
        assert!(matches!(**l, CExpr::Binary(CBinOp::Eq, _, _)));
    }

    #[test]
    fn pointer_ops_and_arrow() {
        let prog = p("struct node { struct node *next; };\n\
                      void f(struct node *p) { p->next = NULL; *p = *p; }");
        assert!(matches!(
            &prog.functions[0].body[0],
            Stmt::Assign {
                lhs: CExpr::Arrow(..),
                rhs: CExpr::Null,
                ..
            }
        ));
    }

    #[test]
    fn casts_and_sizeof() {
        let prog = p("void f(void) { unsigned x = (unsigned)(-1); unsigned s = sizeof(int); }");
        let Stmt::Decl { init: Some(e), .. } = &prog.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, CExpr::Cast(CType::UINT, _)));
    }

    #[test]
    fn compound_assignment_desugars() {
        let prog = p("void f(int x) { x += 2; x++; --x; }");
        for s in &prog.functions[0].body {
            let Stmt::Assign { rhs, .. } = s else {
                panic!("expected assign")
            };
            assert!(matches!(rhs, CExpr::Binary(..)));
        }
    }

    #[test]
    fn unsupported_features_rejected() {
        assert!(perr("void f(void) { goto end; }").msg.contains("goto"));
        assert!(perr("union u { int a; };").msg.contains("union"));
        assert!(perr("float x;").msg.contains("float"));
        assert!(perr("void f(int x) { int *p = &x; }").msg.contains("address-of"));
    }

    #[test]
    fn arrays_parse() {
        let prog = p("int tab[16]; void f(void) { unsigned a[4]; a[0] = 1u; a[1] = a[0]; }");
        assert_eq!(prog.globals[0].ty, CType::INT.arr_of(16));
        let Stmt::Decl { ty, .. } = &prog.functions[0].body[0] else {
            panic!("expected decl")
        };
        assert_eq!(*ty, CType::UINT.arr_of(4));
        assert!(matches!(
            &prog.functions[0].body[1],
            Stmt::Assign {
                lhs: CExpr::Index(..),
                ..
            }
        ));
    }

    #[test]
    fn array_restrictions_rejected() {
        assert!(perr("void f(void) { int a[4][4]; }")
            .msg
            .contains("multi-dimensional"));
        assert!(perr("void f(void) { int a[0]; }")
            .msg
            .contains("zero-length"));
        assert!(perr("void f(void) { int a[99999999]; }").msg.contains("65536"));
        assert!(perr("void f(void) { int n = 4; int a[n]; }")
            .msg
            .contains("literal"));
        assert!(perr("void f(void) { int *a[4]; }").msg.contains("pointers"));
        assert!(perr("void f(int a[4]) { }").msg.contains("array parameters"));
        assert!(perr("int a[2] = 0;").msg.contains("initialisers"));
    }

    #[test]
    fn switch_parses() {
        let prog = p("void f(int x) { switch (x) { case 0: case 1: x = 1; break; \
                      case 2: x = 2; default: x = 3; } }");
        let Stmt::Switch { arms, .. } = &prog.functions[0].body[0] else {
            panic!("expected switch")
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].labels.len(), 2, "adjacent labels share an arm");
        assert_eq!(arms[2].labels, vec![None], "default arm");
        assert!(
            matches!(arms[0].body.last(), Some(Stmt::Break(_))),
            "trailing break kept for the typechecker to strip"
        );
    }

    #[test]
    fn switch_restrictions_rejected() {
        assert!(perr("void f(int x) { case 1: x = 0; }").msg.contains("case"));
        assert!(
            perr("void f(int x) { while (x) { switch (x) { case 0: continue; } } }")
                .msg
                .contains("continue"),
            "continue would bind to the desugaring wrapper"
        );
        assert!(perr("void f(int x) { switch (x) { x = 1; } }")
            .msg
            .contains("label"));
    }

    #[test]
    fn qualifiers_parse() {
        let prog = p("const unsigned limit = 10u;\n\
                      void f(void) { volatile int v = 0; const int c = 1; v = c; }");
        assert!(prog.globals[0].quals.is_const);
        let Stmt::Decl { quals, .. } = &prog.functions[0].body[0] else {
            panic!()
        };
        assert!(quals.is_volatile && !quals.is_const);
    }

    #[test]
    fn qualifier_restrictions_rejected() {
        assert!(perr("void f(void) { const int *p; }")
            .msg
            .contains("qualified pointer"));
        assert!(perr("void f(void) { int const x = 1; }")
            .msg
            .contains("precede the type"));
        assert!(perr("void f(const int x) { }").msg.contains("parameters"));
        assert!(perr("const int f(void) { return 0; }")
            .msg
            .contains("return"));
    }

    #[test]
    fn compound_assignment_with_call_lvalue_rejected() {
        assert!(
            perr("int *g(void); void f(void) { *g() += 1; }")
                .msg
                .contains("evaluated twice"),
            "the desugar duplicates the lvalue"
        );
        // Calls on the right-hand side are fine.
        p("int g(void); void f(int x) { x += g(); }");
    }

    #[test]
    fn parse_errors_carry_spans() {
        let e = perr("void f(void) {\n    goto end;\n}");
        assert_eq!(e.span, Span::new(19, 2, 5));
        assert!(e.to_string().contains("line 2, column 5"));
    }

    #[test]
    fn prototypes() {
        let prog = p("int g(int x); int f(int x) { return g(x); }");
        assert_eq!(prog.functions.len(), 2);
        assert!(prog.functions[0].body.is_empty());
    }

    #[test]
    fn ternary_and_index() {
        let prog = p("int f(int *a, int i) { return a[i] > 0 ? a[i] : 0; }");
        let Stmt::Return(Some(CExpr::Cond(..)), _) = &prog.functions[0].body[0] else {
            panic!()
        };
    }
}
