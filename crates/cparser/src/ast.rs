//! The untyped C abstract syntax tree produced by the parser.

use std::fmt;

use ir::diag::Span;
use ir::ty::{Signedness, Width};

/// A C type, as written in the source.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void` (only as a return type or pointer target).
    Void,
    /// An integer type of some width and signedness.
    Int(Width, Signedness),
    /// A pointer type.
    Ptr(Box<CType>),
    /// `struct name`.
    Struct(String),
    /// A fixed-size array `T name[N]` (single dimension; local and global
    /// declarations only — arrays never decay to pointers in the subset).
    Arr(Box<CType>, u64),
}

impl CType {
    /// `int`.
    pub const INT: CType = CType::Int(Width::W32, Signedness::Signed);
    /// `unsigned int`.
    pub const UINT: CType = CType::Int(Width::W32, Signedness::Unsigned);

    /// Is this any integer type?
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, CType::Int(..))
    }

    /// Is this a pointer type?
    #[must_use]
    pub fn is_ptr(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }

    /// Builds a pointer to this type.
    #[must_use]
    pub fn ptr_to(self) -> CType {
        CType::Ptr(Box::new(self))
    }

    /// Builds an array of `n` elements of this type.
    #[must_use]
    pub fn arr_of(self, n: u64) -> CType {
        CType::Arr(Box::new(self), n)
    }

    /// Is this an array type?
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, CType::Arr(..))
    }
}

/// Declaration qualifiers. The subset allows them on whole declarations of
/// non-pointer type only: `const` makes the typechecker reject writes
/// through the declared name, `volatile` pins the variable out of L2
/// flow-optimisation (its reads are never inlined or reordered away).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Quals {
    /// Declared `const`.
    pub is_const: bool,
    /// Declared `volatile`.
    pub is_volatile: bool,
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Int(w, s) => {
                let name = match (w, s) {
                    (Width::W8, Signedness::Signed) => "signed char",
                    (Width::W8, Signedness::Unsigned) => "unsigned char",
                    (Width::W16, Signedness::Signed) => "short",
                    (Width::W16, Signedness::Unsigned) => "unsigned short",
                    (Width::W32, Signedness::Signed) => "int",
                    (Width::W32, Signedness::Unsigned) => "unsigned int",
                    (Width::W64, Signedness::Signed) => "long long",
                    (Width::W64, Signedness::Unsigned) => "unsigned long long",
                };
                write!(f, "{name}")
            }
            CType::Ptr(t) => write!(f, "{t} *"),
            CType::Struct(n) => write!(f, "struct {n}"),
            CType::Arr(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CUnOp {
    /// `-e`.
    Neg,
    /// `!e`.
    Not,
    /// `~e`.
    BitNot,
    /// `*e`.
    Deref,
}

/// Binary operators (assignment is statement-level, not an operator).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

/// A C expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CExpr {
    /// Integer literal; the `bool` records a `u` suffix.
    IntLit(u64, bool),
    /// `NULL` (recognised by name).
    Null,
    /// A variable reference (local, parameter or global).
    Ident(String),
    /// Unary operation.
    Unary(CUnOp, Box<CExpr>),
    /// Binary operation.
    Binary(CBinOp, Box<CExpr>, Box<CExpr>),
    /// Function call.
    Call(String, Vec<CExpr>),
    /// `e.f` (struct value field).
    Member(Box<CExpr>, String),
    /// `e->f` (field through pointer).
    Arrow(Box<CExpr>, String),
    /// `e[i]` (sugar for `*(e + i)`).
    Index(Box<CExpr>, Box<CExpr>),
    /// `(ty)e`.
    Cast(CType, Box<CExpr>),
    /// `sizeof(ty)`.
    SizeOf(CType),
    /// `c ? t : e`.
    Cond(Box<CExpr>, Box<CExpr>, Box<CExpr>),
}

/// A C statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration with optional initialiser.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Declaration qualifiers (`const` / `volatile`).
        quals: Quals,
        /// Optional initialiser.
        init: Option<CExpr>,
        /// Position of the declared name in the source.
        span: Span,
    },
    /// Assignment `lhs = rhs;` (lhs must be an lvalue).
    Assign {
        /// Assigned-to lvalue.
        lhs: CExpr,
        /// Value.
        rhs: CExpr,
        /// Position of the statement start in the source.
        span: Span,
    },
    /// Expression statement (must be a call — other expressions have no
    /// effect and are rejected by the typechecker); the span is the
    /// statement start.
    Expr(CExpr, Span),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: CExpr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (empty when absent).
        else_branch: Vec<Stmt>,
        /// Position of the `if` keyword in the source.
        span: Span,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: CExpr,
        /// Body.
        body: Vec<Stmt>,
        /// Position of the `while` keyword (`for` keyword for desugared
        /// `for` loops).
        span: Span,
    },
    /// `do { body } while (cond);`.
    DoWhile {
        /// Body.
        body: Vec<Stmt>,
        /// Condition.
        cond: CExpr,
        /// Position of the `do` keyword.
        span: Span,
    },
    /// `return e;` / `return;`; the span is the `return` keyword.
    Return(Option<CExpr>, Span),
    /// `break;`; the span is the `break` keyword.
    Break(Span),
    /// `continue;`; the span is the `continue` keyword.
    Continue(Span),
    /// A braced block.
    Block(Vec<Stmt>),
    /// `switch (scrutinee) { arms }` — desugared by the typechecker into
    /// guarded branches, so no layer below the AST sees a new statement
    /// form.
    Switch {
        /// The switched-on expression (evaluated once).
        scrutinee: CExpr,
        /// The arms, in source order.
        arms: Vec<SwitchArm>,
        /// Position of the `switch` keyword.
        span: Span,
    },
}

/// One arm of a `switch`: a run of labels followed by the statements up to
/// the next label (or the closing brace). Fallthrough between arms is
/// represented by the arm simply not ending in `break`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchArm {
    /// Labels naming this arm: `Some(expr)` for `case expr:` (an integer
    /// constant), `None` for `default:`. Adjacent labels share one arm.
    pub labels: Vec<Option<CExpr>>,
    /// The arm body (possibly empty, possibly falling through).
    pub body: Vec<Stmt>,
    /// Position of the arm's first label.
    pub span: Span,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in order.
    pub params: Vec<(String, CType)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// `false` for prototypes (declarations without a body).
    pub is_definition: bool,
    /// Position of the function name in the source.
    pub span: Span,
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: CType,
    /// Declaration qualifiers (`const` / `volatile`).
    pub quals: Quals,
    /// Optional constant initialiser.
    pub init: Option<CExpr>,
    /// Position of the variable name in the source.
    pub span: Span,
}

/// A struct declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct tag.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<(String, CType)>,
    /// Position of the struct tag in the source.
    pub span: Span,
}

/// A complete translation unit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Struct declarations.
    pub structs: Vec<StructDecl>,
    /// Global variables.
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<FunDef>,
}

impl Program {
    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&FunDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}
