//! The typechecker: untyped AST → typed AST.
//!
//! Responsibilities:
//!
//! * compute struct layouts into an [`ir::TypeEnv`],
//! * annotate every expression with its C type, inserting implicit
//!   conversions (integer promotions and the usual arithmetic conversions)
//!   as explicit [`TExprKind::Cast`] nodes so the Simpl translation never
//!   has to re-derive them,
//! * normalise syntax: `e->f` becomes `(*e).f`, `e[i]` becomes `*(e + i)`,
//!   `sizeof` becomes a literal,
//! * alpha-rename shadowed locals (Simpl's local frame is flat),
//! * reject the remaining unsupported constructs (dereferencing `void *`,
//!   struct-valued parameters, calls to undeclared functions, …).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use ir::diag::Span;
use ir::ty::{Signedness, Ty, TypeEnv, Width};

use crate::ast::{CBinOp, CExpr, CType, CUnOp, FunDef, Program, Quals, Stmt, SwitchArm};

/// A type error (or use of an unsupported feature detected at this level).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// Explanation.
    pub msg: String,
    /// Position of the enclosing declaration, when known.
    pub span: Option<Span>,
}

impl TypeError {
    fn new(msg: impl Into<String>) -> TypeError {
        TypeError {
            msg: msg.into(),
            span: None,
        }
    }

    /// Attaches a declaration span, keeping an already-recorded (more
    /// precise) one.
    fn with_span(mut self, span: Span) -> TypeError {
        if self.span.is_none() {
            self.span = Some(span);
        }
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(
                f,
                "type error at line {}, column {}: {}",
                s.line, s.col, self.msg
            ),
            None => write!(f, "type error: {}", self.msg),
        }
    }
}

impl std::error::Error for TypeError {}

type Result<T> = std::result::Result<T, TypeError>;

/// A typed expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TExpr {
    /// The expression.
    pub kind: TExprKind,
    /// Its C type.
    pub ty: CType,
}

/// Typed expression kinds (post-normalisation).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TExprKind {
    /// Integer literal (bit pattern; interpretation given by `ty`).
    IntLit(u64),
    /// Null pointer constant.
    Null,
    /// Local variable or parameter (after alpha-renaming).
    Local(String),
    /// Global variable.
    Global(String),
    /// Unary operation (`Deref` reads the heap).
    Unary(CUnOp, Box<TExpr>),
    /// Binary operation on converted operands. For pointer arithmetic the
    /// left operand is the pointer and the right the (unscaled) index.
    Binary(CBinOp, Box<TExpr>, Box<TExpr>),
    /// Function call.
    Call(String, Vec<TExpr>),
    /// Field of a struct value.
    Member(Box<TExpr>, String),
    /// Conversion to `ty`.
    Cast(CType, Box<TExpr>),
    /// Conditional expression on a boolean-valued condition.
    Cond(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// `a[i]` where `a` has a true array type (never a pointer — pointer
    /// indexing is normalised to `*(a + i)` instead). The Simpl translation
    /// inserts the in-bounds guard.
    Index(Box<TExpr>, Box<TExpr>),
}

impl TExpr {
    /// Does this expression (transitively) contain a function call?
    #[must_use]
    pub fn has_call(&self) -> bool {
        match &self.kind {
            TExprKind::Call(..) => true,
            TExprKind::IntLit(_) | TExprKind::Null | TExprKind::Local(_) | TExprKind::Global(_) => {
                false
            }
            TExprKind::Unary(_, a) | TExprKind::Member(a, _) | TExprKind::Cast(_, a) => {
                a.has_call()
            }
            TExprKind::Binary(_, a, b) | TExprKind::Index(a, b) => a.has_call() || b.has_call(),
            TExprKind::Cond(a, b, c) => a.has_call() || b.has_call() || c.has_call(),
        }
    }
}

/// A typed statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TStmt {
    /// Local declaration (name already unique within the function).
    Decl {
        /// Unique local name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Initialiser, already converted to `ty`.
        init: Option<TExpr>,
        /// Position of the declared name in the source.
        span: Span,
    },
    /// Assignment; `lhs` is an lvalue (Local, Global, Deref, or Member
    /// chains over those).
    Assign {
        /// Target.
        lhs: TExpr,
        /// Value, already converted to the target type.
        rhs: TExpr,
        /// Position of the statement start in the source.
        span: Span,
    },
    /// A call evaluated for effect only; the span is the statement start.
    ExprCall(TExpr, Span),
    /// `if`/`else` on a boolean-valued condition.
    If {
        /// Condition (boolean-valued).
        cond: TExpr,
        /// Then branch.
        then_branch: Vec<TStmt>,
        /// Else branch.
        else_branch: Vec<TStmt>,
        /// Position of the `if` keyword in the source.
        span: Span,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: TExpr,
        /// Body.
        body: Vec<TStmt>,
        /// Position of the loop keyword in the source.
        span: Span,
    },
    /// `do`/`while` loop.
    DoWhile {
        /// Body.
        body: Vec<TStmt>,
        /// Condition.
        cond: TExpr,
        /// Position of the `do` keyword in the source.
        span: Span,
    },
    /// `return`, with the value converted to the return type; the span is
    /// the `return` keyword.
    Return(Option<TExpr>, Span),
    /// `break`; the span is the `break` keyword.
    Break(Span),
    /// `continue`; the span is the `continue` keyword.
    Continue(Span),
    /// Block (scoping already resolved; kept for shape preservation).
    Block(Vec<TStmt>),
}

/// A typechecked function.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TFunDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters (names are unique).
    pub params: Vec<(String, CType)>,
    /// All local declarations (including parameters), for frame setup.
    pub locals: Vec<(String, CType)>,
    /// Locals declared `volatile` (unique names): L2 flow-optimisation must
    /// not inline or eliminate their reads.
    pub volatile_locals: BTreeSet<String>,
    /// The body.
    pub body: Vec<TStmt>,
    /// Position of the function name in the source (the header span).
    pub span: Span,
}

/// A typechecked global.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TGlobal {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: CType,
    /// Declaration qualifiers (`const` writes were rejected here).
    pub quals: Quals,
    /// Initialiser (converted), if any.
    pub init: Option<TExpr>,
}

/// A typechecked translation unit.
#[derive(Clone, Debug, Default)]
pub struct TProgram {
    /// Struct layouts.
    pub tenv: TypeEnv,
    /// Globals.
    pub globals: Vec<TGlobal>,
    /// Functions with non-empty bodies (prototypes resolved away).
    pub functions: Vec<TFunDef>,
}

impl TProgram {
    /// Looks up a function by name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&TFunDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Converts a C type to the semantic type language.
///
/// `void` becomes `unit`; `void *` becomes `unit ptr`.
#[must_use]
pub fn ctype_to_ty(t: &CType) -> Ty {
    match t {
        CType::Void => Ty::Unit,
        CType::Int(w, s) => Ty::Word(*w, *s),
        CType::Ptr(p) => ctype_to_ty(p).ptr_to(),
        CType::Struct(n) => Ty::Struct(n.clone()),
        CType::Arr(t, n) => ctype_to_ty(t).arr_of(*n),
    }
}

/// Typechecks a parsed program.
///
/// # Errors
///
/// Returns a [`TypeError`] on any ill-typed construct.
pub fn typecheck(prog: &Program) -> Result<TProgram> {
    let mut tenv = TypeEnv::new();
    for s in &prog.structs {
        let fields: Vec<(String, Ty)> = s
            .fields
            .iter()
            .map(|(n, t)| (n.clone(), ctype_to_ty(t)))
            .collect();
        tenv.define_struct(&s.name, fields)
            .map_err(|e| TypeError::new(e.to_string()).with_span(s.span))?;
    }

    // Signature table: later definitions override earlier prototypes.
    let mut sigs: HashMap<String, (CType, Vec<CType>)> = HashMap::new();
    for f in &prog.functions {
        sigs.insert(
            f.name.clone(),
            (
                f.ret.clone(),
                f.params.iter().map(|(_, t)| t.clone()).collect(),
            ),
        );
    }

    let mut globals_map: HashMap<String, (CType, Quals)> = HashMap::new();
    let mut globals = Vec::new();
    for g in &prog.globals {
        if globals_map.contains_key(&g.name) {
            return Err(
                TypeError::new(format!("duplicate global `{}`", g.name)).with_span(g.span)
            );
        }
        if g.quals.is_const && g.init.is_none() {
            return Err(TypeError::new(format!(
                "`const` global `{}` must have an initialiser",
                g.name
            ))
            .with_span(g.span));
        }
        globals_map.insert(g.name.clone(), (g.ty.clone(), g.quals));
        let cx = Ctx {
            tenv: &tenv,
            sigs: &sigs,
            globals: &globals_map,
        };
        let init = match &g.init {
            None => None,
            Some(e) => {
                let te = cx.expr_no_scope(e).map_err(|e| e.with_span(g.span))?;
                if te.has_call() {
                    return Err(TypeError::new(format!(
                        "global `{}` initialiser may not call functions",
                        g.name
                    ))
                    .with_span(g.span));
                }
                Some(cx.convert(te, &g.ty).map_err(|e| e.with_span(g.span))?)
            }
        };
        globals.push(TGlobal {
            name: g.name.clone(),
            ty: g.ty.clone(),
            quals: g.quals,
            init,
        });
    }

    let mut functions = Vec::new();
    for f in &prog.functions {
        if !f.is_definition {
            continue; // prototype
        }
        let cx = Ctx {
            tenv: &tenv,
            sigs: &sigs,
            globals: &globals_map,
        };
        functions.push(cx.function(f).map_err(|e| e.with_span(f.span))?);
    }

    // Every called function must have a definition (we translate whole
    // programs; externs would need axiomatisation).
    let decl_spans: HashMap<&str, Span> = prog
        .functions
        .iter()
        .map(|f| (f.name.as_str(), f.span))
        .collect();
    let defined: std::collections::HashSet<&str> =
        functions.iter().map(|f| f.name.as_str()).collect();
    for f in &functions {
        let span = decl_spans.get(f.name.as_str()).copied();
        each_call(&f.body, &mut |name| {
            if defined.contains(name) {
                Ok(())
            } else {
                let e = TypeError::new(format!(
                    "function `{name}` is declared but never defined"
                ));
                Err(match span {
                    Some(s) => e.with_span(s),
                    None => e,
                })
            }
        })?;
    }

    Ok(TProgram {
        tenv,
        globals,
        functions,
    })
}

fn each_call(stmts: &[TStmt], f: &mut impl FnMut(&str) -> Result<()>) -> Result<()> {
    fn in_expr(e: &TExpr, f: &mut impl FnMut(&str) -> Result<()>) -> Result<()> {
        if let TExprKind::Call(n, _) = &e.kind {
            f(n)?;
        }
        match &e.kind {
            TExprKind::Unary(_, a) | TExprKind::Member(a, _) | TExprKind::Cast(_, a) => {
                in_expr(a, f)?;
            }
            TExprKind::Binary(_, a, b) | TExprKind::Index(a, b) => {
                in_expr(a, f)?;
                in_expr(b, f)?;
            }
            TExprKind::Cond(a, b, c) => {
                in_expr(a, f)?;
                in_expr(b, f)?;
                in_expr(c, f)?;
            }
            TExprKind::Call(_, args) => {
                for a in args {
                    in_expr(a, f)?;
                }
            }
            _ => {}
        }
        Ok(())
    }
    for s in stmts {
        match s {
            TStmt::Decl { init: Some(e), .. }
            | TStmt::ExprCall(e, _)
            | TStmt::Return(Some(e), _) => {
                in_expr(e, f)?;
            }
            TStmt::Assign { lhs, rhs, .. } => {
                in_expr(lhs, f)?;
                in_expr(rhs, f)?;
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                in_expr(cond, f)?;
                each_call(then_branch, f)?;
                each_call(else_branch, f)?;
            }
            TStmt::While { cond, body, .. } | TStmt::DoWhile { body, cond, .. } => {
                in_expr(cond, f)?;
                each_call(body, f)?;
            }
            TStmt::Block(b) => each_call(b, f)?,
            _ => {}
        }
    }
    Ok(())
}

/// Shared checking context.
struct Ctx<'a> {
    tenv: &'a TypeEnv,
    sigs: &'a HashMap<String, (CType, Vec<CType>)>,
    globals: &'a HashMap<String, (CType, Quals)>,
}

/// Scope stack for locals with alpha-renaming of shadowed names.
#[derive(Default)]
struct Scope {
    /// Stack of (source name → unique name) maps.
    frames: Vec<HashMap<String, String>>,
    /// unique name → type.
    types: HashMap<String, CType>,
    /// unique name → declaration qualifiers.
    quals: HashMap<String, Quals>,
    /// All declarations in order.
    all: Vec<(String, CType)>,
}

impl Scope {
    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: CType, quals: Quals) -> String {
        let mut unique = name.to_owned();
        let mut i = 1;
        while self.types.contains_key(&unique) {
            i += 1;
            unique = format!("{name}__{i}");
        }
        self.frames
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.to_owned(), unique.clone());
        self.types.insert(unique.clone(), ty.clone());
        self.quals.insert(unique.clone(), quals);
        self.all.push((unique.clone(), ty));
        unique
    }

    fn lookup(&self, name: &str) -> Option<(&str, &CType)> {
        for frame in self.frames.iter().rev() {
            if let Some(u) = frame.get(name) {
                return Some((u, &self.types[u]));
            }
        }
        None
    }
}

impl<'a> Ctx<'a> {
    fn function(&self, f: &FunDef) -> Result<TFunDef> {
        let mut scope = Scope::default();
        scope.push();
        let mut params = Vec::new();
        for (n, t) in &f.params {
            if matches!(t, CType::Struct(_)) {
                return Err(TypeError::new(format!(
                    "struct-valued parameter `{n}` of `{}` unsupported (pass a pointer)",
                    f.name
                )));
            }
            let unique = scope.declare(n, t.clone(), Quals::default());
            params.push((unique, t.clone()));
        }
        let body = self.stmts(&f.body, &mut scope, &f.ret)?;
        let volatile_locals = scope
            .quals
            .iter()
            .filter(|(_, q)| q.is_volatile)
            .map(|(n, _)| n.clone())
            .collect();
        Ok(TFunDef {
            name: f.name.clone(),
            ret: f.ret.clone(),
            params,
            locals: scope.all,
            volatile_locals,
            body,
            span: f.span,
        })
    }

    fn stmts(&self, stmts: &[Stmt], scope: &mut Scope, ret: &CType) -> Result<Vec<TStmt>> {
        let mut out = Vec::new();
        for s in stmts {
            out.push(self.stmt(s, scope, ret)?);
        }
        Ok(out)
    }

    fn stmt(&self, s: &Stmt, scope: &mut Scope, ret: &CType) -> Result<TStmt> {
        match s {
            Stmt::Decl {
                name,
                ty,
                quals,
                init,
                span,
            } => {
                if *ty == CType::Void {
                    return Err(TypeError::new(format!("variable `{name}` of type void")));
                }
                if quals.is_const && init.is_none() {
                    return Err(TypeError::new(format!(
                        "`const` variable `{name}` must have an initialiser"
                    )));
                }
                let init = match init {
                    None => None,
                    Some(e) => {
                        let te = self.expr(e, scope)?;
                        Some(self.convert(te, ty)?)
                    }
                };
                let unique = scope.declare(name, ty.clone(), *quals);
                Ok(TStmt::Decl {
                    name: unique,
                    ty: ty.clone(),
                    init,
                    span: *span,
                })
            }
            Stmt::Assign { lhs, rhs, span } => {
                // Attach the statement span so e.g. a rejected `const`
                // write points at the assignment, not the function.
                let at = |e: TypeError| e.with_span(*span);
                let tl = self.expr(lhs, scope).map_err(at)?;
                if !is_lvalue(&tl) {
                    return Err(at(TypeError::new(format!("not an lvalue: {lhs:?}"))));
                }
                if tl.ty.is_array() {
                    return Err(at(TypeError::new(
                        "whole-array assignment is not supported; assign elements individually",
                    )));
                }
                self.check_writable(&tl, scope).map_err(at)?;
                let tr = self.expr(rhs, scope).map_err(at)?;
                let tr = self.convert(tr, &tl.ty.clone()).map_err(at)?;
                Ok(TStmt::Assign {
                    lhs: tl,
                    rhs: tr,
                    span: *span,
                })
            }
            Stmt::Expr(e, span) => {
                let te = self.expr(e, scope)?;
                if !matches!(te.kind, TExprKind::Call(..)) {
                    return Err(TypeError::new(
                        "expression statements must be function calls (no side effects otherwise)",
                    ));
                }
                Ok(TStmt::ExprCall(te, *span))
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = self.condition(cond, scope)?;
                scope.push();
                let t = self.stmts(then_branch, scope, ret)?;
                scope.pop();
                scope.push();
                let e = self.stmts(else_branch, scope, ret)?;
                scope.pop();
                Ok(TStmt::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e,
                    span: *span,
                })
            }
            Stmt::While { cond, body, span } => {
                let c = self.condition(cond, scope)?;
                scope.push();
                let b = self.stmts(body, scope, ret)?;
                scope.pop();
                Ok(TStmt::While {
                    cond: c,
                    body: b,
                    span: *span,
                })
            }
            Stmt::DoWhile { body, cond, span } => {
                scope.push();
                let b = self.stmts(body, scope, ret)?;
                scope.pop();
                let c = self.condition(cond, scope)?;
                Ok(TStmt::DoWhile {
                    body: b,
                    cond: c,
                    span: *span,
                })
            }
            Stmt::Return(None, span) => {
                if *ret != CType::Void {
                    return Err(TypeError::new("return without value in non-void function"));
                }
                Ok(TStmt::Return(None, *span))
            }
            Stmt::Return(Some(e), span) => {
                if *ret == CType::Void {
                    return Err(TypeError::new("return with value in void function"));
                }
                let te = self.expr(e, scope)?;
                Ok(TStmt::Return(Some(self.convert(te, ret)?), *span))
            }
            Stmt::Break(span) => Ok(TStmt::Break(*span)),
            Stmt::Continue(span) => Ok(TStmt::Continue(*span)),
            Stmt::Block(b) => {
                scope.push();
                let out = self.stmts(b, scope, ret)?;
                scope.pop();
                Ok(TStmt::Block(out))
            }
            Stmt::Switch {
                scrutinee,
                arms,
                span,
            } => self.switch(scrutinee, arms, *span, scope, ret),
        }
    }

    /// Desugars `switch` into guarded branches over a *match index* so that
    /// no layer below the typed AST sees a new statement form:
    ///
    /// 1. the scrutinee is evaluated once into a fresh temporary `t` at its
    ///    promoted type;
    /// 2. a match index `m` (an `int`) is computed as a pure conditional
    ///    chain: the 1-based source index of the first arm with a matching
    ///    `case` label, the default arm's index when nothing matches, or 0
    ///    when there is no `default`;
    /// 3. arm `j` runs iff `lower(j) ≤ m && m ≤ j`, where `lower(j)` is one
    ///    past the last arm before `j` whose body ended in a (stripped)
    ///    top-level `break` — this encodes fallthrough statically;
    /// 4. only when a conditional (non-trailing) `break` remains does the
    ///    chain get wrapped in a run-once `do … while (0)`, so `break`
    ///    binds through the existing loop exception dance.
    fn switch(
        &self,
        scrutinee: &CExpr,
        arms: &[SwitchArm],
        span: Span,
        scope: &mut Scope,
        ret: &CType,
    ) -> Result<TStmt> {
        let scrut = self.expr(scrutinee, scope)?;
        if !scrut.ty.is_integer() {
            return Err(TypeError::new(format!(
                "`switch` on non-integer type `{}`",
                scrut.ty
            )));
        }
        let sty = promote(&scrut.ty);
        let scrut = self.convert(scrut, &sty)?;
        let CType::Int(width, _) = sty else {
            unreachable!("promoted integer type")
        };
        let mask = width.mask();

        // Collect `case` constants (bit patterns at the promoted type) and
        // the default arm's 1-based index.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut default_idx: Option<usize> = None;
        let mut cases: Vec<(u64, usize)> = Vec::new();
        for (j, arm) in arms.iter().enumerate() {
            for label in &arm.labels {
                match label {
                    None => {
                        if default_idx.replace(j + 1).is_some() {
                            return Err(TypeError::new("duplicate `default` label"));
                        }
                    }
                    Some(e) => {
                        let bits = case_constant(e)? & mask;
                        if !seen.insert(bits) {
                            return Err(TypeError::new(format!(
                                "duplicate `case` label (value {bits} at type `{sty}`)"
                            )));
                        }
                        cases.push((bits, j + 1));
                    }
                }
            }
        }

        scope.push();
        let tmp = scope.declare("switch__scrut", sty.clone(), Quals::default());
        let tmp_ref = TExpr {
            kind: TExprKind::Local(tmp.clone()),
            ty: sty.clone(),
        };
        let int_lit = |v: u64| TExpr {
            kind: TExprKind::IntLit(v),
            ty: CType::INT,
        };
        let mut stmts = vec![TStmt::Decl {
            name: tmp,
            ty: sty.clone(),
            init: Some(scrut),
            span,
        }];

        // m = if t == c1 then j1 else if t == c2 then j2 … else default/0
        let mut m_expr = int_lit(default_idx.unwrap_or(0) as u64);
        for (bits, j1) in cases.iter().rev() {
            let cmp = TExpr {
                kind: TExprKind::Binary(
                    CBinOp::Eq,
                    Box::new(tmp_ref.clone()),
                    Box::new(TExpr {
                        kind: TExprKind::IntLit(*bits),
                        ty: sty.clone(),
                    }),
                ),
                ty: CType::INT,
            };
            m_expr = TExpr {
                kind: TExprKind::Cond(
                    Box::new(cmp),
                    Box::new(int_lit(*j1 as u64)),
                    Box::new(m_expr),
                ),
                ty: CType::INT,
            };
        }
        let m = scope.declare("switch__m", CType::INT, Quals::default());
        let m_ref = TExpr {
            kind: TExprKind::Local(m.clone()),
            ty: CType::INT,
        };
        stmts.push(TStmt::Decl {
            name: m,
            ty: CType::INT,
            init: Some(m_expr),
            span,
        });

        // One guarded If per arm; fallthrough is the static window
        // lower(j) ≤ m ≤ j.
        let mut lower = 1usize;
        let mut residual_break = false;
        let mut ifs: Vec<TStmt> = Vec::new();
        for (j, arm) in arms.iter().enumerate() {
            let j1 = j + 1;
            let (body, terminated) = match arm.body.split_last() {
                Some((Stmt::Break(_), rest)) => (rest, true),
                _ => (&arm.body[..], false),
            };
            if contains_direct_break(body) {
                residual_break = true;
            }
            scope.push();
            let tbody = self.stmts(body, scope, ret)?;
            scope.pop();
            if !tbody.is_empty() {
                let le = |a: TExpr, b: TExpr| TExpr {
                    kind: TExprKind::Binary(CBinOp::Le, Box::new(a), Box::new(b)),
                    ty: CType::INT,
                };
                let cond = if lower == j1 {
                    TExpr {
                        kind: TExprKind::Binary(
                            CBinOp::Eq,
                            Box::new(m_ref.clone()),
                            Box::new(int_lit(j1 as u64)),
                        ),
                        ty: CType::INT,
                    }
                } else {
                    TExpr {
                        kind: TExprKind::Binary(
                            CBinOp::LAnd,
                            Box::new(le(int_lit(lower as u64), m_ref.clone())),
                            Box::new(le(m_ref.clone(), int_lit(j1 as u64))),
                        ),
                        ty: CType::INT,
                    }
                };
                ifs.push(TStmt::If {
                    cond,
                    then_branch: tbody,
                    else_branch: Vec::new(),
                    span: arm.span,
                });
            }
            if terminated {
                lower = j1 + 1;
            }
        }
        scope.pop();

        if residual_break {
            // A conditional break remains inside an arm: wrap in a run-once
            // loop so it binds via the loop exception dance.
            stmts.push(TStmt::DoWhile {
                body: ifs,
                cond: int_lit(0),
                span,
            });
        } else {
            stmts.extend(ifs);
        }
        Ok(TStmt::Block(stmts))
    }

    /// Typechecks an expression appearing in global-initialiser position.
    fn expr_no_scope(&self, e: &CExpr) -> Result<TExpr> {
        let mut empty = Scope::default();
        empty.push();
        self.expr(e, &empty)
    }

    /// A condition: any scalar; produces a boolean-valued `TExpr` (we mark
    /// it by comparing against zero when necessary at translation time, so
    /// here we only check scalar-ness and keep the C type).
    fn condition(&self, e: &CExpr, scope: &Scope) -> Result<TExpr> {
        let te = self.expr(e, scope)?;
        if !te.ty.is_integer() && !te.ty.is_ptr() {
            return Err(TypeError::new(format!(
                "condition has non-scalar type `{}`",
                te.ty
            )));
        }
        Ok(te)
    }

    fn expr(&self, e: &CExpr, scope: &Scope) -> Result<TExpr> {
        match e {
            CExpr::IntLit(v, unsigned) => {
                let ty = literal_type(*v, *unsigned);
                Ok(TExpr {
                    kind: TExprKind::IntLit(*v),
                    ty,
                })
            }
            CExpr::Null => Ok(TExpr {
                kind: TExprKind::Null,
                ty: CType::Void.ptr_to(),
            }),
            CExpr::Ident(n) => {
                if let Some((unique, ty)) = scope.lookup(n) {
                    Ok(TExpr {
                        kind: TExprKind::Local(unique.to_owned()),
                        ty: ty.clone(),
                    })
                } else if let Some((ty, _)) = self.globals.get(n) {
                    Ok(TExpr {
                        kind: TExprKind::Global(n.clone()),
                        ty: ty.clone(),
                    })
                } else {
                    Err(TypeError::new(format!("undeclared identifier `{n}`")))
                }
            }
            CExpr::Unary(CUnOp::Deref, inner) => {
                let ti = self.expr(inner, scope)?;
                match &ti.ty {
                    CType::Ptr(p) if **p == CType::Void => {
                        Err(TypeError::new("cannot dereference `void *`"))
                    }
                    CType::Ptr(p) => {
                        let ty = (**p).clone();
                        Ok(TExpr {
                            kind: TExprKind::Unary(CUnOp::Deref, Box::new(ti)),
                            ty,
                        })
                    }
                    t => Err(TypeError::new(format!("cannot dereference `{t}`"))),
                }
            }
            CExpr::Unary(op, inner) => {
                let ti = self.expr(inner, scope)?;
                match op {
                    CUnOp::Not => {
                        if !ti.ty.is_integer() && !ti.ty.is_ptr() {
                            return Err(TypeError::new(format!("`!` on `{}`", ti.ty)));
                        }
                        Ok(TExpr {
                            kind: TExprKind::Unary(CUnOp::Not, Box::new(ti)),
                            ty: CType::INT,
                        })
                    }
                    CUnOp::Neg | CUnOp::BitNot => {
                        if !ti.ty.is_integer() {
                            return Err(TypeError::new(format!("arithmetic on `{}`", ti.ty)));
                        }
                        let pty = promote(&ti.ty);
                        let ti = self.convert(ti, &pty)?;
                        Ok(TExpr {
                            kind: TExprKind::Unary(*op, Box::new(ti)),
                            ty: pty,
                        })
                    }
                    CUnOp::Deref => unreachable!("handled above"),
                }
            }
            CExpr::Binary(op, l, r) => self.binary(*op, l, r, scope),
            CExpr::Call(name, args) => {
                let (ret, ptys) = self
                    .sigs
                    .get(name)
                    .ok_or_else(|| TypeError::new(format!("call to undeclared `{name}`")))?
                    .clone();
                if ptys.len() != args.len() {
                    return Err(TypeError::new(format!(
                        "`{name}` expects {} arguments, got {}",
                        ptys.len(),
                        args.len()
                    )));
                }
                let mut targs = Vec::with_capacity(args.len());
                for (a, pt) in args.iter().zip(&ptys) {
                    let ta = self.expr(a, scope)?;
                    targs.push(self.convert(ta, pt)?);
                }
                Ok(TExpr {
                    kind: TExprKind::Call(name.clone(), targs),
                    ty: ret,
                })
            }
            CExpr::Member(inner, f) => {
                let ti = self.expr(inner, scope)?;
                let CType::Struct(sname) = &ti.ty else {
                    return Err(TypeError::new(format!("`.{f}` on non-struct `{}`", ti.ty)));
                };
                let fty = self.field_type(sname, f)?;
                Ok(TExpr {
                    kind: TExprKind::Member(Box::new(ti), f.clone()),
                    ty: fty,
                })
            }
            CExpr::Arrow(inner, f) => {
                // e->f  ≡  (*e).f
                let deref = CExpr::Unary(CUnOp::Deref, inner.clone());
                self.expr(&CExpr::Member(Box::new(deref), f.clone()), scope)
            }
            CExpr::Index(base, idx) => {
                let tb = self.expr(base, scope)?;
                if let CType::Arr(elem, _) = &tb.ty {
                    // True array indexing: a first-class lvalue with an
                    // in-bounds guard inserted by the Simpl translation.
                    let elem = (**elem).clone();
                    let ti = self.expr(idx, scope)?;
                    if !ti.ty.is_integer() {
                        return Err(TypeError::new(format!(
                            "array index has non-integer type `{}`",
                            ti.ty
                        )));
                    }
                    let ity = promote(&ti.ty);
                    let ti = self.convert(ti, &ity)?;
                    return Ok(TExpr {
                        kind: TExprKind::Index(Box::new(tb), Box::new(ti)),
                        ty: elem,
                    });
                }
                // Pointer indexing: e[i]  ≡  *(e + i)
                let sum = CExpr::Binary(CBinOp::Add, base.clone(), idx.clone());
                self.expr(&CExpr::Unary(CUnOp::Deref, Box::new(sum)), scope)
            }
            CExpr::Cast(to, inner) => {
                let ti = self.expr(inner, scope)?;
                // Explicit casts: integer↔integer, pointer↔pointer,
                // integer→pointer and pointer→integer (32-bit).
                let ok = match (&ti.ty, to) {
                    (CType::Int(..), CType::Int(..)) => true,
                    (CType::Ptr(_), CType::Ptr(_)) => true,
                    (CType::Int(..), CType::Ptr(_)) => true,
                    (CType::Ptr(_), CType::Int(Width::W32, _)) => true,
                    (t, CType::Void) => {
                        return Err(TypeError::new(format!("cast of `{t}` to void")))
                    }
                    _ => false,
                };
                if !ok {
                    return Err(TypeError::new(format!(
                        "unsupported cast from `{}` to `{to}`",
                        ti.ty
                    )));
                }
                Ok(TExpr {
                    kind: TExprKind::Cast(to.clone(), Box::new(ti)),
                    ty: to.clone(),
                })
            }
            CExpr::SizeOf(t) => {
                let size = self
                    .tenv
                    .size_of(&ctype_to_ty(t))
                    .map_err(|e| TypeError::new(e.to_string()))?;
                Ok(TExpr {
                    kind: TExprKind::IntLit(size),
                    ty: CType::UINT,
                })
            }
            CExpr::Cond(c, t, e2) => {
                let tc = self.condition(c, scope)?;
                let tt = self.expr(t, scope)?;
                let te = self.expr(e2, scope)?;
                let (tt, te, ty) = if tt.ty.is_integer() && te.ty.is_integer() {
                    let common = usual_arith(&tt.ty, &te.ty);
                    (
                        self.convert(tt, &common)?,
                        self.convert(te, &common)?,
                        common,
                    )
                } else if tt.ty == te.ty {
                    let ty = tt.ty.clone();
                    (tt, te, ty)
                } else if tt.ty.is_ptr() && matches!(te.kind, TExprKind::Null) {
                    let ty = tt.ty.clone();
                    let te = self.convert(te, &ty)?;
                    (tt, te, ty)
                } else if te.ty.is_ptr() && matches!(tt.kind, TExprKind::Null) {
                    let ty = te.ty.clone();
                    let tt = self.convert(tt, &ty)?;
                    (tt, te, ty)
                } else {
                    return Err(TypeError::new(format!(
                        "incompatible branches of `?:`: `{}` vs `{}`",
                        tt.ty, te.ty
                    )));
                };
                Ok(TExpr {
                    kind: TExprKind::Cond(Box::new(tc), Box::new(tt), Box::new(te)),
                    ty,
                })
            }
        }
    }

    fn binary(&self, op: CBinOp, l: &CExpr, r: &CExpr, scope: &Scope) -> Result<TExpr> {
        let tl = self.expr(l, scope)?;
        let tr = self.expr(r, scope)?;
        use CBinOp::*;
        match op {
            LAnd | LOr => {
                for t in [&tl, &tr] {
                    if !t.ty.is_integer() && !t.ty.is_ptr() {
                        return Err(TypeError::new(format!("`&&`/`||` on `{}`", t.ty)));
                    }
                }
                Ok(TExpr {
                    kind: TExprKind::Binary(op, Box::new(tl), Box::new(tr)),
                    ty: CType::INT,
                })
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let (tl, tr) = self.comparable(tl, tr)?;
                Ok(TExpr {
                    kind: TExprKind::Binary(op, Box::new(tl), Box::new(tr)),
                    ty: CType::INT,
                })
            }
            Add | Sub if tl.ty.is_ptr() && tr.ty.is_integer() => {
                // Pointer arithmetic: keep the unscaled index; Simpl
                // translation multiplies by the element size.
                if tl.ty == CType::Void.ptr_to() {
                    return Err(TypeError::new("arithmetic on `void *`"));
                }
                let ty = tl.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::Binary(op, Box::new(tl), Box::new(tr)),
                    ty,
                })
            }
            Shl | Shr => {
                if !tl.ty.is_integer() || !tr.ty.is_integer() {
                    return Err(TypeError::new("shift on non-integers"));
                }
                let pty = promote(&tl.ty);
                let tl = self.convert(tl, &pty)?;
                let tr_p = promote(&tr.ty);
                let tr = self.convert(tr, &tr_p)?;
                Ok(TExpr {
                    kind: TExprKind::Binary(op, Box::new(tl), Box::new(tr)),
                    ty: pty,
                })
            }
            _ => {
                if !tl.ty.is_integer() || !tr.ty.is_integer() {
                    return Err(TypeError::new(format!(
                        "`{op:?}` on `{}` and `{}`",
                        tl.ty, tr.ty
                    )));
                }
                let common = usual_arith(&tl.ty, &tr.ty);
                let tl = self.convert(tl, &common)?;
                let tr = self.convert(tr, &common)?;
                Ok(TExpr {
                    kind: TExprKind::Binary(op, Box::new(tl), Box::new(tr)),
                    ty: common,
                })
            }
        }
    }

    /// Makes two operands comparable, inserting conversions.
    fn comparable(&self, tl: TExpr, tr: TExpr) -> Result<(TExpr, TExpr)> {
        if tl.ty.is_integer() && tr.ty.is_integer() {
            let common = usual_arith(&tl.ty, &tr.ty);
            return Ok((self.convert(tl, &common)?, self.convert(tr, &common)?));
        }
        if tl.ty.is_ptr() && tr.ty.is_ptr() {
            if tl.ty == tr.ty
                || tl.ty == CType::Void.ptr_to()
                || tr.ty == CType::Void.ptr_to()
            {
                return Ok((tl, tr));
            }
            return Err(TypeError::new(format!(
                "comparison of distinct pointer types `{}` and `{}`",
                tl.ty, tr.ty
            )));
        }
        if tl.ty.is_ptr() && is_null_constant(&tr) {
            let ty = tl.ty.clone();
            let tr = self.convert(tr, &ty)?;
            return Ok((tl, tr));
        }
        if tr.ty.is_ptr() && is_null_constant(&tl) {
            let ty = tr.ty.clone();
            let tl = self.convert(tl, &ty)?;
            return Ok((tl, tr));
        }
        Err(TypeError::new(format!(
            "cannot compare `{}` and `{}`",
            tl.ty, tr.ty
        )))
    }

    /// Implicit conversion of `e` to `to`, inserting a cast when needed.
    fn convert(&self, e: TExpr, to: &CType) -> Result<TExpr> {
        if e.ty == *to {
            return Ok(e);
        }
        let ok = match (&e.ty, to) {
            (CType::Int(..), CType::Int(..)) => true,
            // NULL (or literal 0) to any pointer.
            (_, CType::Ptr(_)) if is_null_constant(&e) => true,
            // void* converts implicitly to/from any object pointer.
            (CType::Ptr(p), CType::Ptr(_)) if **p == CType::Void => true,
            (CType::Ptr(_), CType::Ptr(q)) if **q == CType::Void => true,
            _ => false,
        };
        if !ok {
            return Err(TypeError::new(format!(
                "cannot implicitly convert `{}` to `{to}`",
                e.ty
            )));
        }
        Ok(TExpr {
            kind: TExprKind::Cast(to.clone(), Box::new(e)),
            ty: to.clone(),
        })
    }

    /// Rejects writes whose lvalue root was declared `const`. Heap writes
    /// (through `Deref`) are always allowed: qualified pointer types are
    /// rejected at parse, so no pointee is ever const.
    fn check_writable(&self, lhs: &TExpr, scope: &Scope) -> Result<()> {
        match lvalue_root(lhs) {
            LvalueRoot::Local(n) => {
                if scope.quals.get(n).is_some_and(|q| q.is_const) {
                    return Err(TypeError::new(format!(
                        "cannot assign to `const` variable `{n}`"
                    )));
                }
            }
            LvalueRoot::Global(n) => {
                if self.globals.get(n).is_some_and(|(_, q)| q.is_const) {
                    return Err(TypeError::new(format!(
                        "cannot assign to `const` global `{n}`"
                    )));
                }
            }
            LvalueRoot::Heap => {}
        }
        Ok(())
    }

    fn field_type(&self, sname: &str, f: &str) -> Result<CType> {
        let def = self
            .tenv
            .struct_def(sname)
            .ok_or_else(|| TypeError::new(format!("unknown struct `{sname}`")))?;
        let field = def
            .field(f)
            .ok_or_else(|| TypeError::new(format!("no field `{f}` in struct `{sname}`")))?;
        ty_to_ctype(&field.ty)
    }
}

/// Best-effort inverse of [`ctype_to_ty`] for field types.
fn ty_to_ctype(t: &Ty) -> Result<CType> {
    Ok(match t {
        Ty::Unit => CType::Void,
        Ty::Word(w, s) => CType::Int(*w, *s),
        Ty::Ptr(p) => ty_to_ctype(p)?.ptr_to(),
        Ty::Struct(n) => CType::Struct(n.clone()),
        other => {
            return Err(TypeError::new(format!(
                "type `{other}` cannot appear in C code"
            )))
        }
    })
}

fn is_lvalue(e: &TExpr) -> bool {
    match &e.kind {
        TExprKind::Local(_) | TExprKind::Global(_) => true,
        TExprKind::Unary(CUnOp::Deref, _) => true,
        TExprKind::Member(inner, _) | TExprKind::Index(inner, _) => is_lvalue(inner),
        _ => false,
    }
}

/// Where a write through this lvalue ultimately lands.
enum LvalueRoot<'a> {
    /// A local variable (unique name).
    Local(&'a str),
    /// A global variable.
    Global(&'a str),
    /// The heap (through a pointer dereference).
    Heap,
}

fn lvalue_root(e: &TExpr) -> LvalueRoot<'_> {
    match &e.kind {
        TExprKind::Local(n) => LvalueRoot::Local(n),
        TExprKind::Global(n) => LvalueRoot::Global(n),
        TExprKind::Member(inner, _) | TExprKind::Index(inner, _) => lvalue_root(inner),
        _ => LvalueRoot::Heap,
    }
}

/// Evaluates a `case` label: an integer literal, possibly negated. The
/// value is the label's bit pattern before masking to the promoted type.
fn case_constant(e: &CExpr) -> Result<u64> {
    match e {
        CExpr::IntLit(v, _) => Ok(*v),
        CExpr::Unary(CUnOp::Neg, inner) => match **inner {
            CExpr::IntLit(v, _) => Ok(v.wrapping_neg()),
            _ => Err(TypeError::new(
                "`case` labels must be integer literals (possibly negated)",
            )),
        },
        _ => Err(TypeError::new(
            "`case` labels must be integer literals (possibly negated)",
        )),
    }
}

/// Does this statement list contain a `break` that would bind to the
/// enclosing `switch` (i.e. not nested inside a loop or inner switch)?
fn contains_direct_break(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Break(_) => true,
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => contains_direct_break(then_branch) || contains_direct_break(else_branch),
        Stmt::Block(b) => contains_direct_break(b),
        _ => false,
    })
}

fn is_null_constant(e: &TExpr) -> bool {
    matches!(e.kind, TExprKind::Null) || matches!(e.kind, TExprKind::IntLit(0))
}

/// C89-style literal typing restricted to our widths.
fn literal_type(v: u64, unsigned: bool) -> CType {
    if unsigned {
        if v <= u64::from(u32::MAX) {
            CType::UINT
        } else {
            CType::Int(Width::W64, Signedness::Unsigned)
        }
    } else if v <= i32::MAX as u64 {
        CType::INT
    } else if v <= u64::from(u32::MAX) {
        CType::UINT
    } else if v <= i64::MAX as u64 {
        CType::Int(Width::W64, Signedness::Signed)
    } else {
        CType::Int(Width::W64, Signedness::Unsigned)
    }
}

/// Integer promotion: anything narrower than `int` promotes to `int`.
fn promote(t: &CType) -> CType {
    match t {
        CType::Int(Width::W8 | Width::W16, _) => CType::INT,
        other => other.clone(),
    }
}

/// The usual arithmetic conversions (on promoted operands).
fn usual_arith(a: &CType, b: &CType) -> CType {
    let a = promote(a);
    let b = promote(b);
    let (CType::Int(wa, sa), CType::Int(wb, sb)) = (&a, &b) else {
        return a;
    };
    let w = (*wa).max(*wb);
    let s = if wa == wb {
        if *sa == Signedness::Unsigned || *sb == Signedness::Unsigned {
            Signedness::Unsigned
        } else {
            Signedness::Signed
        }
    } else if wa > wb {
        *sa
    } else {
        *sb
    };
    CType::Int(w, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lexer::lex, parser::parse};

    fn check(src: &str) -> TProgram {
        typecheck(&parse(&lex(src).unwrap()).unwrap()).unwrap()
    }

    fn check_err(src: &str) -> TypeError {
        typecheck(&parse(&lex(src).unwrap()).unwrap()).unwrap_err()
    }

    #[test]
    fn simple_function() {
        let p = check("int max(int a, int b) { if (a < b) return b; return a; }");
        let f = p.function("max").unwrap();
        assert_eq!(f.params.len(), 2);
        let TStmt::If { cond, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(cond.ty, CType::INT);
    }

    #[test]
    fn promotions_inserted() {
        let p = check("int f(char c) { return c + 1; }");
        let f = p.function("f").unwrap();
        let TStmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        // c promoted to int via a cast node
        let TExprKind::Binary(CBinOp::Add, l, _) = &e.kind else {
            panic!()
        };
        assert!(matches!(&l.kind, TExprKind::Cast(CType::INT, _)));
        assert_eq!(e.ty, CType::INT);
    }

    #[test]
    fn usual_arith_conversions() {
        assert_eq!(usual_arith(&CType::INT, &CType::UINT), CType::UINT);
        assert_eq!(
            usual_arith(
                &CType::Int(Width::W64, Signedness::Signed),
                &CType::UINT
            ),
            CType::Int(Width::W64, Signedness::Signed)
        );
        assert_eq!(
            usual_arith(
                &CType::Int(Width::W8, Signedness::Unsigned),
                &CType::Int(Width::W16, Signedness::Signed)
            ),
            CType::INT,
            "both promote to int first"
        );
    }

    #[test]
    fn arrow_normalised() {
        let p = check(
            "struct node { struct node *next; unsigned data; };\n\
             unsigned f(struct node *p) { return p->data; }",
        );
        let f = p.function("f").unwrap();
        let TStmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        let TExprKind::Member(inner, field) = &e.kind else {
            panic!("expected member, got {e:?}")
        };
        assert_eq!(field, "data");
        assert!(matches!(&inner.kind, TExprKind::Unary(CUnOp::Deref, _)));
        assert_eq!(e.ty, CType::UINT);
    }

    #[test]
    fn index_normalised() {
        let p = check("int f(int *a) { return a[3]; }");
        let f = p.function("f").unwrap();
        let TStmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(&e.kind, TExprKind::Unary(CUnOp::Deref, _)));
    }

    #[test]
    fn sizeof_resolved() {
        let p = check(
            "struct pair { int a; int b; };\n\
             unsigned f(void) { return sizeof(struct pair); }",
        );
        let f = p.function("f").unwrap();
        let TStmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        // sizeof → literal 8, converted to unsigned (already UINT).
        assert!(matches!(e.kind, TExprKind::IntLit(8)));
    }

    #[test]
    fn shadowing_renamed() {
        let p = check("int f(int x) { { int x = 2; x = 3; } return x; }");
        let f = p.function("f").unwrap();
        assert_eq!(f.locals.len(), 2);
        assert_eq!(f.locals[1].0, "x__2");
        let TStmt::Return(Some(e), _) = &f.body[1] else {
            panic!()
        };
        assert!(matches!(&e.kind, TExprKind::Local(n) if n == "x"));
    }

    #[test]
    fn null_conversions() {
        check(
            "struct node { struct node *next; };\n\
             void f(struct node *p) { p->next = NULL; if (p != NULL) { } if (p == 0) { } }",
        );
    }

    #[test]
    fn pointer_arith_keeps_index() {
        let p = check("int f(int *a) { return *(a + 2); }");
        let f = p.function("f").unwrap();
        let TStmt::Return(Some(e), _) = &f.body[0] else {
            panic!()
        };
        let TExprKind::Unary(CUnOp::Deref, inner) = &e.kind else {
            panic!()
        };
        let TExprKind::Binary(CBinOp::Add, l, r) = &inner.kind else {
            panic!()
        };
        assert!(l.ty.is_ptr());
        assert!(r.ty.is_integer(), "index unscaled at this level");
    }

    #[test]
    fn errors() {
        assert!(check_err("int f(void) { return g(); }").msg.contains("undeclared"));
        assert!(check_err("int f(int x) { y = 1; return 0; }")
            .msg
            .contains("undeclared identifier"));
        assert!(check_err("void f(int *p) { *p; }").msg.contains("function calls"));
        assert!(check_err("void f(void *p) { *p = 0; }").msg.contains("void"));
        assert!(check_err("int f(int x) { return; }").msg.contains("without value"));
        assert!(check_err("struct s { int a; }; void f(struct s v) { }")
            .msg
            .contains("struct-valued parameter"));
        assert!(check_err("int g(int x); int f(void) { return g(1); }")
            .msg
            .contains("never defined"));
        assert!(check_err("void f(int x) { 1 = x; }").msg.contains("lvalue"));
    }

    #[test]
    fn type_errors_carry_declaration_spans() {
        let e = check_err("int ok(void) { return 0; }\nint bad(void) { return g(); }");
        // The span points at `bad` on line 2 (column after "int ").
        let s = e.span.expect("function-level span");
        assert_eq!((s.line, s.col), (2, 5));
        assert!(e.to_string().contains("line 2, column 5"));
    }

    #[test]
    fn globals() {
        let p = check("unsigned counter = 5; void f(void) { counter = counter + 1; }");
        assert_eq!(p.globals.len(), 1);
        assert!(p.globals[0].init.is_some());
    }

    #[test]
    fn literal_types() {
        assert_eq!(literal_type(5, false), CType::INT);
        assert_eq!(literal_type(5, true), CType::UINT);
        assert_eq!(literal_type(3_000_000_000, false), CType::UINT);
        assert_eq!(
            literal_type(10_000_000_000, false),
            CType::Int(Width::W64, Signedness::Signed)
        );
    }
}
