//! Parser and typechecker for the C99 subset supported by AutoCorres-rs.
//!
//! This crate plays the role of Norrish's C-to-Isabelle parser front half:
//! it turns C source text into a typed AST which the `simpl` crate then
//! translates, conservatively and literally, into the Simpl intermediate
//! language.
//!
//! # Supported subset (paper Sec 2, widened by ISSUE 9)
//!
//! Loops (`while`, `do`/`while`, `for`), `if`/`else`, `switch`/`case`/
//! `default` with fallthrough (the typechecker desugars it into guarded
//! branches over a one-shot scrutinee binding), function calls and
//! recursion, integer types of all widths and signednesses, type casts,
//! pointers and pointer arithmetic, structures (including pointers to
//! struct and `->`/`.` access), fixed-size arrays (`T a[N]`; every access
//! carries an in-bounds guard), compound assignment and `++`/`--`
//! (parser-level sugar with single evaluation of the lvalue),
//! `const`/`volatile` qualifiers on locals and globals,
//! `break`/`continue`/`return`.
//!
//! # Unsupported (rejected with an error)
//!
//! References to local variables (`&x`), `goto`, unions, floating point,
//! function pointers, expressions with side effects other than hoistable
//! function calls, variadic functions, array-to-pointer decay, array
//! initialisers, multi-dimensional arrays, qualified pointer declarations,
//! writes to `const` objects.
//!
//! # Example
//!
//! ```
//! let src = "int max(int a, int b) { if (a < b) return b; return a; }";
//! let program = cparser::parse_and_check(src).unwrap();
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "max");
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod typecheck;

use ir::diag::{Diag, DiagKind, Phase};

pub use ast::{CBinOp, CExpr, CType, CUnOp, FunDef, Program, Stmt};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use typecheck::{typecheck, TExpr, TExprKind, TFunDef, TProgram, TStmt, TypeError};

/// Parses and typechecks a complete C translation unit.
///
/// # Errors
///
/// Returns a frontend [`Diag`] describing the first lexical, syntactic, or
/// type error encountered; the message carries the full rendered error and
/// the span points at the offending token or declaration.
pub fn parse_and_check(src: &str) -> Result<TProgram, Diag> {
    let tokens = lex(src).map_err(Diag::from)?;
    let prog = parse(&tokens).map_err(Diag::from)?;
    typecheck(&prog).map_err(Diag::from)
}

impl From<LexError> for Diag {
    fn from(e: LexError) -> Self {
        Diag::new(Phase::Frontend, DiagKind::Lex, e.to_string()).with_span(e.span)
    }
}
impl From<ParseError> for Diag {
    fn from(e: ParseError) -> Self {
        Diag::new(Phase::Frontend, DiagKind::Parse, e.to_string()).with_span(e.span)
    }
}
impl From<TypeError> for Diag {
    fn from(e: TypeError) -> Self {
        let d = Diag::new(Phase::Frontend, DiagKind::Type, e.to_string());
        match e.span {
            Some(s) => d.with_span(s),
            None => d,
        }
    }
}
