//! Parser and typechecker for the C99 subset supported by AutoCorres-rs.
//!
//! This crate plays the role of Norrish's C-to-Isabelle parser front half:
//! it turns C source text into a typed AST which the `simpl` crate then
//! translates, conservatively and literally, into the Simpl intermediate
//! language.
//!
//! # Supported subset (paper Sec 2)
//!
//! Loops (`while`, `do`/`while`, `for`), `if`/`else`, function calls and
//! recursion, integer types of all widths and signednesses, type casts,
//! pointers and pointer arithmetic, structures (including pointers to
//! struct and `->`/`.` access), `break`/`continue`/`return`.
//!
//! # Unsupported (rejected with an error)
//!
//! References to local variables (`&x`), `goto`, `switch`, unions, floating
//! point, function pointers, expressions with side effects other than
//! hoistable function calls, variadic functions, arrays (use pointers).
//!
//! # Example
//!
//! ```
//! let src = "int max(int a, int b) { if (a < b) return b; return a; }";
//! let program = cparser::parse_and_check(src).unwrap();
//! assert_eq!(program.functions.len(), 1);
//! assert_eq!(program.functions[0].name, "max");
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod typecheck;

pub use ast::{CBinOp, CExpr, CType, CUnOp, FunDef, Program, Stmt};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
pub use typecheck::{typecheck, TExpr, TExprKind, TFunDef, TProgram, TStmt, TypeError};

/// Parses and typechecks a complete C translation unit.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical, syntactic, or
/// type error encountered.
pub fn parse_and_check(src: &str) -> Result<TProgram, FrontendError> {
    let tokens = lex(src)?;
    let prog = parse(&tokens)?;
    Ok(typecheck(&prog)?)
}

/// Any error produced by the C frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrontendError {
    /// Lexical error.
    Lex(LexError),
    /// Syntax error.
    Parse(ParseError),
    /// Type error (including uses of unsupported features).
    Type(TypeError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Lex(e) => write!(f, "{e}"),
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<LexError> for FrontendError {
    fn from(e: LexError) -> Self {
        FrontendError::Lex(e)
    }
}
impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}
impl From<TypeError> for FrontendError {
    fn from(e: TypeError) -> Self {
        FrontendError::Type(e)
    }
}
