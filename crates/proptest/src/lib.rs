//! Vendored offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of proptest its property tests use (DESIGN.md §6): the
//! `proptest!`/`prop_assert*`/`prop_assume!`/`prop_oneof!` macros, `Just`,
//! `any`, range and tuple strategies, `prop_map`, `prop_recursive`,
//! `collection::vec`, `sample::select`, and the
//! `TestRunner`/`ValueTree::current` sampling entry point.
//!
//! Semantics: each `proptest!` test runs a fixed number of deterministic
//! cases ([`NUM_CASES`]) from a seed derived from the test name. There is
//! no shrinking — a failing case panics with the values formatted by the
//! assertion itself, which is what this workspace's tests rely on.

/// Cases run per `proptest!` test.
pub const NUM_CASES: u32 = 64;

pub mod strategy;

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        let lo = len.start;
        let hi = len.end.max(lo + 1);
        crate::strategy::from_fn(move |rng| {
            let n = lo + (rng.next_u64() as usize) % (hi - lo);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::BoxedStrategy;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select: empty options");
        crate::strategy::from_fn(move |rng| {
            options[(rng.next_u64() as usize) % options.len()].clone()
        })
    }
}

/// The test-case driver.
pub mod test_runner {
    use crate::strategy::TestRng;

    /// Drives strategy sampling (no shrinking, no persistence).
    pub struct TestRunner {
        /// The case generator.
        pub rng: TestRng,
    }

    impl TestRunner {
        /// A runner with a fixed seed — every call sees the same stream.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRunner {
                rng: TestRng::new(0x5EED_CA5E),
            }
        }
    }

    /// A failed or rejected test case (upstream's error type; without
    /// shrinking it only carries the message). Property bodies may
    /// `return Err(TestCaseError::fail(..))` — the `proptest!` macro runs
    /// them in a `TestCaseResult` context, upstream-style.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Hard failure: the case panics the test.
        Fail(String),
        /// Rejected input: the case is skipped (like `prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A hard failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// What a property body produces.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails. Only valid inside a
/// `proptest!` body (which runs in a `TestCaseResult` context).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

/// Declares property tests: each `fn name(binders in strategies) { body }`
/// expands to a `#[test]` running [`NUM_CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$attr:meta])* fn $name:ident($($bind:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::deterministic();
            for __case in 0..$crate::NUM_CASES {
                let _ = __case;
                $(let $bind = $crate::strategy::Strategy::generate(&($strat), &mut __runner.rng);)*
                // Upstream-style body context: the case runs in a
                // `TestCaseResult` closure so bodies can `return Err(..)`
                // (`prop_assume!` rejections, explicit `TestCaseError`s);
                // `let _: () = $body` keeps plain `()` bodies valid.
                let __case_fn = move || -> $crate::test_runner::TestCaseResult {
                    let _: () = $body;
                    Ok(())
                };
                match __case_fn() {
                    Ok(()) | Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(__m)) => {
                        panic!("proptest case failed: {__m}")
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}
