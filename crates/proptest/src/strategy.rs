//! Strategies: deterministic value generators (no shrinking).

use std::ops::Range;
use std::sync::Arc;

/// The generator strategies draw from (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Unlike upstream proptest there is no shrinking: a
/// strategy is just a cloneable sampler.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value: Clone + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F>(self, f: F) -> BoxedStrategy<W>
    where
        W: Clone + 'static,
        F: Fn(Self::Value) -> W + 'static,
    {
        from_fn(move |rng| f(self.generate(rng)))
    }

    /// Recursive strategies: `extend` receives a strategy for the smaller
    /// structure. `_size`/`_branch` are accepted for API compatibility;
    /// only `depth` bounds recursion here.
    fn prop_recursive<F, S2>(self, depth: u32, _size: u32, _branch: u32, extend: F) -> Recursive<Self::Value>
    where
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        S2: Strategy<Value = Self::Value>,
    {
        let base = self.boxed();
        let f = Arc::new(move |inner: BoxedStrategy<Self::Value>| extend(inner).boxed());
        Recursive { base, extend: f, depth }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy {
            sampler: Arc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }

    /// Samples a value tree (compatibility with the upstream
    /// `TestRunner`/`ValueTree` entry point; the tree is just the value).
    ///
    /// # Errors
    ///
    /// Never fails in this implementation.
    fn new_tree(&self, runner: &mut crate::test_runner::TestRunner) -> Result<Sample<Self::Value>, String> {
        Ok(Sample(self.generate(&mut runner.rng)))
    }
}

/// A sampled value (upstream's `ValueTree`, minus shrinking).
pub struct Sample<T>(T);

/// Access to a sampled value.
pub trait ValueTree {
    /// The sampled type.
    type Value;
    /// The sampled value.
    fn current(&self) -> Self::Value;
}

impl<T: Clone> ValueTree for Sample<T> {
    type Value = T;
    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T> {
    sampler: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Arc::clone(&self.sampler),
        }
    }
}

impl<T: Clone + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// Builds a strategy from a sampling closure.
pub fn from_fn<T: Clone + 'static>(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
    BoxedStrategy { sampler: Arc::new(f) }
}

/// Uniform choice among strategies (the `prop_oneof!` backend).
pub fn one_of<T: Clone + 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "one_of: empty options");
    from_fn(move |rng| {
        let i = (rng.next_u64() as usize) % options.len();
        options[i].generate(rng)
    })
}

/// A recursive strategy (see [`Strategy::prop_recursive`]).
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    extend: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            extend: Arc::clone(&self.extend),
            depth: self.depth,
        }
    }
}

impl<T: Clone + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Shape mixing: deeper levels sometimes stop early so leaves and
        // shallow structures appear at every size (upstream's size budget).
        if self.depth == 0 || rng.next_u64().is_multiple_of(4) {
            return self.base.generate(rng);
        }
        let inner = Recursive {
            base: self.base.clone(),
            extend: Arc::clone(&self.extend),
            depth: self.depth - 1,
        }
        .boxed();
        (self.extend)(inner).generate(rng)
    }
}

/// A constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Clone + 'static {
    /// Draws a uniform value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy of a primitive type.
#[must_use]
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    from_fn(T::arbitrary)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let k = u128::from(rng.next_u64()) % span;
                ((self.start as i128) + (k as i128)) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_from_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = ((<$t>::MAX as i128) - (self.start as i128) + 1) as u128;
                let k = u128::from(rng.next_u64()) % span;
                ((self.start as i128) + (k as i128)) as $t
            }
        }
    )*}
}
impl_range_from_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Upstream proptest treats string literals as regex strategies. This
/// stand-in supports the subset the workspace uses: concatenations of
/// literal characters and character classes `[a-z0-9_]` (ranges and single
/// characters), each optionally repeated `{n}` or `{lo,hi}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let choices: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut pending_range = false; // saw "x-" awaiting the end
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    if d == '-' && !set.is_empty() && !pending_range {
                        pending_range = true;
                    } else if pending_range {
                        let lo = *set.last().expect("range start");
                        set.extend((lo as u32 + 1..=d as u32).filter_map(char::from_u32));
                        pending_range = false;
                    } else {
                        set.push(d);
                    }
                }
                assert!(!set.is_empty(), "pattern strategy: empty class in {self:?}");
                set
            } else {
                vec![c]
            };
            // Optional repetition suffix.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                let (l, h) = match spec.split_once(',') {
                    Some((l, h)) => (l, h),
                    None => (spec.as_str(), spec.as_str()),
                };
                (
                    l.trim().parse::<usize>().expect("repetition bound"),
                    h.trim().parse::<usize>().expect("repetition bound"),
                )
            } else {
                (1, 1)
            };
            let n = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..n {
                out.push(choices[(rng.next_u64() as usize) % choices.len()]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        enum T {
            #[allow(dead_code)]
            Leaf(u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u32..5).prop_map(T::Leaf);
        let s = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(2);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }
}
