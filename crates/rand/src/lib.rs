//! Vendored offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small API subset it actually uses (DESIGN.md §6): `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, `Clone`, `Send`, and fast, which is all the
//! differential-testing validators require. Streams differ from upstream
//! `rand 0.8`; every consumer in this workspace treats the stream as opaque
//! (properties and differential comparisons, never golden values).

use std::ops::Range;

/// Core generator interface: a source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators (the subset: construction from a `u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the stand-in for `rand`'s `Standard`
/// distribution over primitives).
pub trait Standard: Sized {
    /// Draws a uniformly random value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty : $u:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                (rng.next_u64() as $u) as $t
            }
        }
    )*}
}
impl_standard_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Half-open ranges samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let k = u128::from(rng.next_u64()) % span;
                ((lo as i128) + (k as i128)) as $t
            }

            #[allow(
                clippy::cast_possible_truncation,
                clippy::cast_possible_wrap,
                clippy::cast_sign_loss,
                clippy::cast_lossless
            )]
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let k = u128::from(rng.next_u64()) % span;
                ((lo as i128) + (k as i128)) as $t
            }
        }
    )*}
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // Measure-zero endpoint: the half-open draw is the right answer.
        Self::sample_range(rng, lo, hi)
    }
}

/// Range shapes accepted by [`Rng::gen_range`] (upstream's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in the range (`lo..hi` or `lo..=hi`).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[allow(clippy::cast_possible_truncation)]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
