//! Audit driver: prints the mutation-kill matrix, the cache/store attack
//! verdicts, and differential-fuzz throughput.
//!
//! `audit` (or `audit --smoke`) runs the small-budget smoke used by
//! `scripts/tier1.sh`; `audit --full` runs the ISSUE-5 acceptance
//! campaign (≥ 200 generated programs at two worker counts).

use std::process::ExitCode;
use std::time::Instant;

use audit::{
    attack_artifact_store, attack_disk_store, attack_replay_cache, attack_theorems, DiffConfig,
    KillMatrix, SIGNED_MIX_SRC,
};
use autocorres::{translate, Options};
use codegen::{generate_mix, Mix, Profile};

fn main() -> ExitCode {
    let full = std::env::args().any(|a| a == "--full");
    let mode = if full { "full" } else { "smoke" };
    println!("== soundness audit ({mode}) ==");

    let mut ok = true;
    ok &= mutation_kill(full);
    ok &= cache_attacks(full);
    ok &= differential(full);
    ok &= discharge_differential(full);

    if ok {
        println!("\naudit: PASS");
        ExitCode::SUCCESS
    } else {
        println!("\naudit: FAIL");
        ExitCode::FAILURE
    }
}

/// Sources whose theorems get mutated: the handcrafted signed/struct/loop
/// mix, the custom-rule overflow idiom (for `WCustomSampled` evidence),
/// and generated audit-mix programs.
fn mutation_sources(full: bool) -> Vec<(String, Options)> {
    let mut srcs = vec![
        (SIGNED_MIX_SRC.to_string(), Options::default()),
        (
            casestudies::sources::OVERFLOW_IDIOM.to_string(),
            Options {
                custom_word_rules: vec![wordabs::overflow_idiom_rule()],
                ..Options::default()
            },
        ),
    ];
    let programs = if full { 4 } else { 1 };
    for seed in 0..programs {
        let profile = Profile {
            name: "audit",
            loc: 90,
            functions: 6,
        };
        srcs.push((
            generate_mix(&profile, &Mix::audit(), 0xBAD_5EED + seed),
            Options::default(),
        ));
    }
    srcs
}

fn mutation_kill(full: bool) -> bool {
    let budget = if full { 6 } else { 2 };
    let start = Instant::now();
    let mut matrix = KillMatrix::default();
    for (src, opts) in mutation_sources(full) {
        let out = translate(&src, &opts).expect("audit source translates");
        matrix.merge(&attack_theorems(&out, budget));
    }
    println!("\n-- mutation kill matrix (killed/applied) --");
    print!("{}", matrix.render());
    println!("mutation time: {:.1}s", start.elapsed().as_secs_f64());
    for s in &matrix.survivors {
        println!("SURVIVOR: {s}");
    }
    matrix.all_killed()
}

fn cache_attacks(full: bool) -> bool {
    println!("\n-- cache/store corruption --");
    let cache = attack_replay_cache(SIGNED_MIX_SRC, &Options::default(), 16, 0xCAFE);
    println!(
        "replay cache: {} digests bit-flipped; valid theorems still accepted: {}; forged theorem rejected: {}",
        cache.digests_corrupted, cache.valid_still_accepted, cache.forged_rejected
    );
    let stores = attack_artifact_store(SIGNED_MIX_SRC, &Options::default());
    let mut ok = cache.sound();
    for r in &stores {
        println!(
            "artifact store [{}/{}]: cached re-run: {}; poisoned output rejected: {}",
            r.phase, r.function, r.cache_hit, r.rejected
        );
        ok &= r.cache_hit && r.rejected;
    }
    // The disk path of the same property (DESIGN.md §6g): randomized
    // corruption of persisted entries may only cost recomputation.
    let rounds = if full { 48 } else { 12 };
    let disk = attack_disk_store(SIGNED_MIX_SRC, &Options::default(), rounds, 0xD15C);
    println!(
        "disk store: {} mutations ({} degraded loads); output stable: {}; verdicts stable: {}",
        disk.mutations, disk.loads_degraded, disk.output_stable, disk.verdicts_stable
    );
    ok &= disk.sound();
    ok
}

fn differential(full: bool) -> bool {
    let cfg = if full { DiffConfig::full() } else { DiffConfig::smoke() };
    println!(
        "\n-- cross-layer differential oracle ({} programs × workers {:?}) --",
        cfg.programs, cfg.workers
    );
    let start = Instant::now();
    let stats = audit::run_campaign(&cfg);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "programs: {}  functions: {}  trials: {}  decided pairs: {}  fuel-skips: {}",
        stats.programs, stats.functions, stats.trials, stats.decided_pairs, stats.skipped_fuel
    );
    println!(
        "throughput: {:.1} programs/sec ({secs:.1}s total)",
        stats.programs as f64 / secs.max(1e-9)
    );
    for d in stats.disagreements.iter().take(10) {
        println!("DISAGREEMENT: {d}");
    }
    stats.disagreements.is_empty() && stats.decided_pairs > 0
}

fn discharge_differential(full: bool) -> bool {
    let cfg = if full {
        audit::DischargeConfig::full()
    } else {
        audit::DischargeConfig::smoke()
    };
    println!(
        "\n-- discharge-vs-solver differential ({} programs) --",
        cfg.programs
    );
    let start = Instant::now();
    let stats = audit::run_discharge_campaign(&cfg);
    println!(
        "programs: {}  guards: {}  discharged: {}  refuted: {}  solver-unknown: {}  ({:.1}s)",
        stats.programs,
        stats.guards,
        stats.discharged,
        stats.refuted,
        stats.solver_unknown,
        start.elapsed().as_secs_f64()
    );
    for d in stats.disagreements.iter().take(10) {
        println!("DISAGREEMENT: {d}");
    }
    stats.disagreements.is_empty() && stats.discharged > 0
}
