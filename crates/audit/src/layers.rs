//! Reusable five-layer execution entry points.
//!
//! The differential oracle ([`crate::differential`]) and counterexample
//! playback both need the same machinery: run one function through the
//! Simpl interpreter and the four monadic layers (L1, L2, HL, WA) on a
//! shared concrete initial state, then walk the adjacent layer pairs and
//! find the first one whose runs violate the refinement relation. This
//! module holds that machinery in pure, stats-free form; the campaign
//! bookkeeping stays in `differential`.

use autocorres::Output;
use ir::state::{ConcState, State};
use ir::ty::Ty;
use ir::value::Value;
use kernel::AbsFun;
use monadic::{MonadFault, MonadResult, ProgramCtx};

/// Interpreter fuel per layer run: generous for the bounded loops and
/// capped recursion the generator emits, small enough that a runaway
/// translation is cut off.
pub const FUEL: u64 = 400_000;

/// Display names of the five executable layers, most concrete first.
pub const LAYER_NAMES: [&str; 5] = ["simpl", "l1", "l2", "hl", "wa"];

/// One layer run, classified.
#[derive(Clone, Debug)]
pub enum LayerRun {
    /// Normal termination with a return value and final state.
    Normal(Value, State),
    /// Early exit (`return` inside a loop) with value and final state.
    Except(Value, State),
    /// A guard failed / `fail` was reached.
    Fault,
    /// Ran out of fuel: the trial is undecided, not a disagreement.
    Fuel,
    /// Stuck or unknown function: always a bug.
    Broken(String),
}

impl LayerRun {
    /// One-word outcome classification, for diff messages.
    #[must_use]
    pub fn describe(&self) -> &'static str {
        match self {
            LayerRun::Normal(..) => "normal",
            LayerRun::Except(..) => "except",
            LayerRun::Fault => "fault",
            LayerRun::Fuel => "fuel",
            LayerRun::Broken(_) => "broken",
        }
    }
}

/// Runs one monadic layer (L1/L2/HL/WA all share the interpreter).
#[must_use]
pub fn run_monadic(ctx: &ProgramCtx, name: &str, args: &[Value], st: State) -> LayerRun {
    match monadic::exec_fn(ctx, name, args, st, FUEL) {
        Ok((MonadResult::Normal(v), st)) => LayerRun::Normal(v, st),
        Ok((MonadResult::Except(v), st)) => LayerRun::Except(v, st),
        Err(MonadFault::Failure(_)) => LayerRun::Fault,
        Err(MonadFault::OutOfFuel) => LayerRun::Fuel,
        Err(e @ (MonadFault::Stuck(_) | MonadFault::UnknownFunction(_))) => {
            LayerRun::Broken(e.to_string())
        }
    }
}

/// Runs the Simpl interpreter.
#[must_use]
pub fn run_simpl(prog: &simpl::SimplProgram, name: &str, args: &[Value], st: State) -> LayerRun {
    match simpl::exec_fn(prog, name, args, st, FUEL) {
        Ok((v, st)) => LayerRun::Normal(v, st),
        Err(simpl::Fault::GuardFailure(_)) => LayerRun::Fault,
        Err(simpl::Fault::OutOfFuel) => LayerRun::Fuel,
        Err(e @ (simpl::Fault::Stuck(_) | simpl::Fault::UnknownFunction(_))) => {
            LayerRun::Broken(e.to_string())
        }
    }
}

/// Runs `name` through all five layers on one shared input: the concrete
/// state feeds Simpl/L1/L2 directly, HL/WA get its [`heapmodel::lift_state`]
/// image, and WA arguments go through the function's [`AbsFun`].
///
/// # Errors
///
/// Returns a message when the function is missing from some layer or an
/// argument is outside its abstraction function's domain.
pub fn run_all(
    out: &Output,
    name: &str,
    args: &[Value],
    conc0: &ConcState,
    heap_types: &[Ty],
) -> Result<[LayerRun; 5], String> {
    let simpl_f = out
        .simpl
        .fns
        .get(name)
        .ok_or_else(|| format!("unknown function {name}"))?;
    let abs0 = heapmodel::lift_state(conc0, &out.simpl.tenv, heap_types);
    let wa_args: Vec<Value> = args
        .iter()
        .zip(&simpl_f.params)
        .map(|(v, (_, t))| AbsFun::for_ty(t).apply(v))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("unabstractable argument: {e}"))?;
    Ok([
        run_simpl(&out.simpl, name, args, State::Conc(conc0.clone())),
        run_monadic(&out.l1, name, args, State::Conc(conc0.clone())),
        run_monadic(&out.l2, name, args, State::Conc(conc0.clone())),
        run_monadic(&out.hl, name, args, State::Abs(abs0.clone())),
        run_monadic(&out.wa, name, &wa_args, State::Abs(abs0)),
    ])
}

/// Byte-level state agreement: memory and globals (locals excluded — the
/// Simpl interpreter leaves the callee frame in the final state by design,
/// the monadic interpreters restore the caller's).
#[must_use]
pub fn conc_states_agree(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Conc(x), State::Conc(y)) => x.mem == y.mem && x.globals == y.globals,
        _ => false,
    }
}

/// Concrete (`b`) vs abstract (`a`) agreement across the heap-abstraction
/// boundary: the lifted concrete heaps must equal the abstract heaps.
#[must_use]
pub fn lifted_states_agree(
    a: &State,
    b: &State,
    tenv: &ir::ty::TypeEnv,
    heap_types: &[Ty],
) -> bool {
    match (a, b) {
        (State::Abs(x), State::Conc(y)) => {
            let lifted = heapmodel::lift_state(y, tenv, heap_types);
            lifted.heaps == x.heaps && y.globals == x.globals
        }
        _ => false,
    }
}

/// Abstract-vs-abstract agreement (word abstraction leaves heaps and
/// globals at the word level).
#[must_use]
pub fn abs_states_agree(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Abs(x), State::Abs(y)) => x.heaps == y.heaps && x.globals == y.globals,
        _ => false,
    }
}

/// Relates a concrete return value to its word-abstracted image for a
/// function returning `wa_ret_ty`.
#[must_use]
pub fn wa_val_related(va: &Value, vc: &Value, wa_ret_ty: &Ty) -> bool {
    let expect = match (vc, wa_ret_ty) {
        (Value::Word(w), Ty::Nat) => Value::Nat(w.unat()),
        (Value::Word(w), Ty::Int) => Value::Int(w.sint()),
        (other, _) => other.clone(),
    };
    *va == expect
}

/// Exact-correspondence check (Simpl ↔ L1): identical outcomes, values,
/// and memory + globals. `Ok(true)` = decided and agreeing, `Ok(false)` =
/// undecided, `Err(msg)` = disagreement.
///
/// # Errors
///
/// The disagreement description.
pub fn exact_pair(conc: &LayerRun, abs: &LayerRun) -> Result<bool, String> {
    match (abs, conc) {
        (LayerRun::Normal(va, sta), LayerRun::Normal(vc, stc)) => {
            if va != vc {
                Err(format!("values differ: {vc} vs {va}"))
            } else if !conc_states_agree(sta, stc) {
                Err("final states differ".into())
            } else {
                Ok(true)
            }
        }
        (LayerRun::Fault, LayerRun::Fault) => Ok(true),
        (a, c) => Err(format!(
            "outcomes differ: {} vs {}",
            c.describe(),
            a.describe()
        )),
    }
}

/// Refinement check: when the abstract run succeeds (normally or with an
/// exception), the concrete run must match it under the value/state
/// relations; when the abstract run faults, the pair is undecided.
/// `Ok(true)` = decided and agreeing, `Ok(false)` = undecided, `Err(msg)`
/// = disagreement.
///
/// # Errors
///
/// The disagreement description.
pub fn refine_pair(
    conc: &LayerRun,
    abs: &LayerRun,
    val_rel: impl Fn(&Value, &Value) -> bool,
    st_rel: impl Fn(&State, &State) -> bool,
) -> Result<bool, String> {
    match abs {
        LayerRun::Normal(va, sa) => match conc {
            LayerRun::Normal(vc, sc) => {
                if !val_rel(va, vc) {
                    Err(format!("values unrelated: {vc} vs {va}"))
                } else if !st_rel(sa, sc) {
                    Err("final states unrelated".into())
                } else {
                    Ok(true)
                }
            }
            other => Err(format!(
                "abstract succeeded but concrete was {}",
                other.describe()
            )),
        },
        LayerRun::Except(va, sa) => match conc {
            LayerRun::Except(vc, sc) => {
                if !val_rel(va, vc) || !st_rel(sa, sc) {
                    Err("exception outcomes unrelated".into())
                } else {
                    Ok(true)
                }
            }
            other => Err(format!(
                "abstract raised but concrete was {}",
                other.describe()
            )),
        },
        // Abstract fault: refinement claims nothing.
        LayerRun::Fault => Ok(false),
        LayerRun::Fuel | LayerRun::Broken(_) => Ok(false),
    }
}

/// Why a five-layer run did not agree everywhere.
#[derive(Clone, Debug)]
pub enum Divergence {
    /// One layer got stuck or hit an unknown function (always a bug).
    Broken {
        /// Layer name from [`LAYER_NAMES`].
        layer: &'static str,
        /// The interpreter's fault message.
        detail: String,
    },
    /// One layer ran out of fuel: the run is undecided, not a bug.
    Fuel {
        /// Layer name from [`LAYER_NAMES`].
        layer: &'static str,
    },
    /// First adjacent layer pair whose runs violate the relation.
    Pair {
        /// The more concrete layer of the pair.
        conc: &'static str,
        /// The more abstract layer of the pair.
        abs: &'static str,
        /// What disagreed (values, states, or outcomes).
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Broken { layer, detail } => write!(f, "{layer} broke: {detail}"),
            Divergence::Fuel { layer } => write!(f, "{layer} ran out of fuel"),
            Divergence::Pair { conc, abs, detail } => {
                write!(f, "{conc}/{abs} diverge: {detail}")
            }
        }
    }
}

/// Walks the four adjacent layer pairs of one [`run_all`] result and
/// returns the first divergence (most concrete pair first), or `None`
/// when all decided pairs agree.
#[must_use]
pub fn first_divergence(
    out: &Output,
    name: &str,
    runs: &[LayerRun; 5],
    heap_types: &[Ty],
) -> Option<Divergence> {
    for (i, r) in runs.iter().enumerate() {
        if let LayerRun::Broken(e) = r {
            return Some(Divergence::Broken {
                layer: LAYER_NAMES[i],
                detail: e.clone(),
            });
        }
    }
    for (i, r) in runs.iter().enumerate() {
        if matches!(r, LayerRun::Fuel) {
            return Some(Divergence::Fuel {
                layer: LAYER_NAMES[i],
            });
        }
    }
    let wa_ret_ty = out.wa.fns.get(name).map(|f| f.ret_ty.clone());
    let tenv = &out.simpl.tenv;
    let checks: [Result<bool, String>; 4] = [
        exact_pair(&runs[0], &runs[1]),
        refine_pair(&runs[1], &runs[2], |va, vc| va == vc, conc_states_agree),
        refine_pair(
            &runs[2],
            &runs[3],
            |va, vc| va == vc,
            |sa, sc| lifted_states_agree(sa, sc, tenv, heap_types),
        ),
        refine_pair(
            &runs[3],
            &runs[4],
            |va, vc| match &wa_ret_ty {
                Some(t) => wa_val_related(va, vc, t),
                None => va == vc,
            },
            abs_states_agree,
        ),
    ];
    for (i, c) in checks.into_iter().enumerate() {
        if let Err(detail) = c {
            return Some(Divergence::Pair {
                conc: LAYER_NAMES[i],
                abs: LAYER_NAMES[i + 1],
                detail,
            });
        }
    }
    None
}
