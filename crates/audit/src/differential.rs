//! Cross-layer differential oracle.
//!
//! Runs every function of a generated program through all five executable
//! layers — the Simpl interpreter, the L1 and L2 monadic interpreters
//! (byte-heap states), HL (typed split heaps), and WA (ideal arithmetic) —
//! on shared random initial states and arguments, and diffs adjacent
//! layers. Any unsound-but-proof-accepted translation shows up as an
//! execution disagreement here, independently of the proof checker.
//!
//! Comparison discipline per adjacent pair (the abstract side first):
//!
//! * **Simpl ↔ L1** is an *exact* correspondence: identical outcomes,
//!   return values, and final memory + globals (locals are excluded —
//!   the Simpl interpreter leaves the callee frame in the final state by
//!   design, the monadic interpreters restore the caller's).
//! * **L1 ↔ L2**, **L2 ↔ HL**, **HL ↔ WA** are *refinements*: when the
//!   abstract run succeeds, the concrete run must succeed with the related
//!   value and state; when the abstract run faults, nothing is claimed
//!   (the pair is undecided for that trial).
//! * Across the HL boundary, concrete final states are compared through
//!   [`heapmodel::lift_state`]; across WA, return values are compared
//!   through the function's [`kernel::AbsFun`].
//! * `Stuck`/`UnknownFunction` anywhere is always a disagreement (a
//!   translation produced an ill-formed program); running out of fuel
//!   anywhere skips the trial.

use autocorres::testing::{gen_state, heap_types_of, random_arg};
use autocorres::{translate, Options, Output};
use codegen::{generate_mix, Mix, Profile};
use ir::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::layers::{
    abs_states_agree, conc_states_agree, exact_pair, lifted_states_agree, refine_pair, run_all,
    wa_val_related, LayerRun,
};

/// Objects allocated per heap type in each generated initial state.
const HEAP_OBJS: usize = 4;

/// Configuration of a differential campaign.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Number of generated programs.
    pub programs: u32,
    /// Functions per generated program.
    pub functions: usize,
    /// Approximate lines per generated program.
    pub loc: usize,
    /// Shared-input trials per function.
    pub trials: u32,
    /// Base RNG seed (program `i` uses `seed + i`).
    pub seed: u64,
    /// Worker counts to translate and diff at (≥ 2 for the audit claim).
    pub workers: Vec<usize>,
    /// Pipeline `l2_trials` (kept small: the oracle supplies the coverage).
    pub l2_trials: u32,
}

impl DiffConfig {
    /// Small smoke campaign (test-suite sized).
    #[must_use]
    pub fn smoke() -> DiffConfig {
        DiffConfig {
            programs: 6,
            functions: 6,
            loc: 90,
            trials: 4,
            seed: 0xD1FF,
            workers: vec![1, 4],
            l2_trials: 4,
        }
    }

    /// Full campaign: the ISSUE-5 acceptance bar (≥ 200 programs at two
    /// worker counts).
    #[must_use]
    pub fn full() -> DiffConfig {
        DiffConfig {
            programs: 200,
            functions: 8,
            loc: 120,
            trials: 6,
            seed: 0xD1FF,
            workers: vec![1, 4],
            l2_trials: 4,
        }
    }
}

/// Campaign results.
#[derive(Clone, Debug, Default)]
pub struct DiffStats {
    /// Programs translated and diffed (counted once per worker count).
    pub programs: u64,
    /// Function runs diffed.
    pub functions: u64,
    /// Shared-input trials executed.
    pub trials: u64,
    /// Adjacent-layer comparisons decided (abstract side succeeded).
    pub decided_pairs: u64,
    /// Trials skipped because some layer ran out of fuel.
    pub skipped_fuel: u64,
    /// Layer disagreements (must stay empty). Messages carry the program
    /// seed so `codegen::generate_mix` regenerates the offending source.
    pub disagreements: Vec<String>,
}

impl DiffStats {
    fn merge(&mut self, other: &DiffStats) {
        self.programs += other.programs;
        self.functions += other.functions;
        self.trials += other.trials;
        self.decided_pairs += other.decided_pairs;
        self.skipped_fuel += other.skipped_fuel;
        self.disagreements.extend(other.disagreements.iter().cloned());
    }
}

/// Runs a differential campaign: generates `cfg.programs` programs with
/// the audit shape mix, translates each at every configured worker count,
/// and diffs all five layers on shared inputs.
#[must_use]
pub fn run_campaign(cfg: &DiffConfig) -> DiffStats {
    let mut stats = DiffStats::default();
    let profile = Profile {
        name: "audit",
        loc: cfg.loc,
        functions: cfg.functions,
    };
    for i in 0..cfg.programs {
        let seed = cfg.seed.wrapping_add(u64::from(i));
        let src = generate_mix(&profile, &Mix::audit(), seed);
        let mut wa_prints = Vec::new();
        for &workers in &cfg.workers {
            let opts = Options {
                workers,
                l2_trials: cfg.l2_trials,
                seed,
                ..Options::default()
            };
            let out = match translate(&src, &opts) {
                Ok(out) => out,
                Err(e) => {
                    stats.disagreements.push(format!(
                        "program seed={seed} workers={workers}: pipeline error: {e}"
                    ));
                    continue;
                }
            };
            wa_prints.push(print_wa(&out));
            stats.merge(&diff_output(&out, seed, cfg.trials));
            stats.programs += 1;
        }
        // The determinism claim rides along: the final specs must be
        // byte-identical at every worker count.
        if wa_prints.windows(2).any(|w| w[0] != w[1]) {
            stats
                .disagreements
                .push(format!("program seed={seed}: WA output differs across worker counts"));
        }
    }
    stats
}

fn print_wa(out: &Output) -> String {
    let mut s = String::new();
    for f in out.wa.fns.values() {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    s
}

/// Diffs every function of one pipeline output on `trials` shared inputs.
#[must_use]
pub fn diff_output(out: &Output, seed: u64, trials: u32) -> DiffStats {
    let mut stats = DiffStats::default();
    let tenv = &out.simpl.tenv;
    let heap_types = heap_types_of(tenv, &out.l1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA0D1_7000);
    for (name, simpl_f) in &out.simpl.fns {
        stats.functions += 1;
        let wa_f = out.wa.fns.get(name).expect("wa keeps every function");
        for trial in 0..trials {
            stats.trials += 1;
            let conc0 = gen_state(&mut rng, tenv, &heap_types, HEAP_OBJS);
            let args: Vec<Value> = simpl_f
                .params
                .iter()
                .map(|(_, t)| random_arg(&mut rng, t, &heap_types, HEAP_OBJS))
                .collect();
            let at = |msg: String| format!("seed={seed} fn={name} trial={trial}: {msg}");

            let runs = match run_all(out, name, &args, &conc0, &heap_types) {
                Ok(runs) => runs,
                Err(e) => {
                    stats.disagreements.push(at(format!("layer setup failed: {e}")));
                    continue;
                }
            };
            if let Some(broken) = runs.iter().find_map(|r| match r {
                LayerRun::Broken(e) => Some(e.clone()),
                _ => None,
            }) {
                stats.disagreements.push(at(format!("layer broke: {broken}")));
                continue;
            }
            if runs.iter().any(|r| matches!(r, LayerRun::Fuel)) {
                stats.skipped_fuel += 1;
                continue;
            }

            // Simpl <-> L1 is exact; the three refinement pairs follow,
            // concrete side first (see `layers` for the relations).
            record(&mut stats, &at, "simpl/l1", exact_pair(&runs[0], &runs[1]));
            record(
                &mut stats,
                &at,
                "l1/l2",
                refine_pair(&runs[1], &runs[2], |va, vc| va == vc, conc_states_agree),
            );
            record(
                &mut stats,
                &at,
                "l2/hl",
                refine_pair(
                    &runs[2],
                    &runs[3],
                    |va, vc| va == vc,
                    |sa, sc| lifted_states_agree(sa, sc, tenv, &heap_types),
                ),
            );
            record(
                &mut stats,
                &at,
                "hl/wa",
                refine_pair(
                    &runs[3],
                    &runs[4],
                    |va, vc| wa_val_related(va, vc, &wa_f.ret_ty),
                    abs_states_agree,
                ),
            );
        }
    }
    stats
}

/// Folds one pair-check result into the campaign stats.
fn record(
    stats: &mut DiffStats,
    at: &dyn Fn(String) -> String,
    pair: &str,
    res: Result<bool, String>,
) {
    match res {
        Ok(true) => stats.decided_pairs += 1,
        Ok(false) => {}
        Err(msg) => stats.disagreements.push(at(format!("{pair}: {msg}"))),
    }
}
