//! Cross-layer differential oracle.
//!
//! Runs every function of a generated program through all five executable
//! layers — the Simpl interpreter, the L1 and L2 monadic interpreters
//! (byte-heap states), HL (typed split heaps), and WA (ideal arithmetic) —
//! on shared random initial states and arguments, and diffs adjacent
//! layers. Any unsound-but-proof-accepted translation shows up as an
//! execution disagreement here, independently of the proof checker.
//!
//! Comparison discipline per adjacent pair (the abstract side first):
//!
//! * **Simpl ↔ L1** is an *exact* correspondence: identical outcomes,
//!   return values, and final memory + globals (locals are excluded —
//!   the Simpl interpreter leaves the callee frame in the final state by
//!   design, the monadic interpreters restore the caller's).
//! * **L1 ↔ L2**, **L2 ↔ HL**, **HL ↔ WA** are *refinements*: when the
//!   abstract run succeeds, the concrete run must succeed with the related
//!   value and state; when the abstract run faults, nothing is claimed
//!   (the pair is undecided for that trial).
//! * Across the HL boundary, concrete final states are compared through
//!   [`heapmodel::lift_state`]; across WA, return values are compared
//!   through the function's [`kernel::AbsFun`].
//! * `Stuck`/`UnknownFunction` anywhere is always a disagreement (a
//!   translation produced an ill-formed program); running out of fuel
//!   anywhere skips the trial.

use autocorres::testing::{gen_state, heap_types_of, random_arg};
use autocorres::{translate, Options, Output};
use codegen::{generate_mix, Mix, Profile};
use ir::state::State;
use ir::ty::Ty;
use ir::value::Value;
use kernel::AbsFun;
use monadic::{MonadFault, MonadResult, ProgramCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Interpreter fuel per layer run: generous for the bounded loops and
/// capped recursion the generator emits, small enough that a runaway
/// translation is cut off.
const FUEL: u64 = 400_000;

/// Objects allocated per heap type in each generated initial state.
const HEAP_OBJS: usize = 4;

/// Configuration of a differential campaign.
#[derive(Clone, Debug)]
pub struct DiffConfig {
    /// Number of generated programs.
    pub programs: u32,
    /// Functions per generated program.
    pub functions: usize,
    /// Approximate lines per generated program.
    pub loc: usize,
    /// Shared-input trials per function.
    pub trials: u32,
    /// Base RNG seed (program `i` uses `seed + i`).
    pub seed: u64,
    /// Worker counts to translate and diff at (≥ 2 for the audit claim).
    pub workers: Vec<usize>,
    /// Pipeline `l2_trials` (kept small: the oracle supplies the coverage).
    pub l2_trials: u32,
}

impl DiffConfig {
    /// Small smoke campaign (test-suite sized).
    #[must_use]
    pub fn smoke() -> DiffConfig {
        DiffConfig {
            programs: 6,
            functions: 6,
            loc: 90,
            trials: 4,
            seed: 0xD1FF,
            workers: vec![1, 4],
            l2_trials: 4,
        }
    }

    /// Full campaign: the ISSUE-5 acceptance bar (≥ 200 programs at two
    /// worker counts).
    #[must_use]
    pub fn full() -> DiffConfig {
        DiffConfig {
            programs: 200,
            functions: 8,
            loc: 120,
            trials: 6,
            seed: 0xD1FF,
            workers: vec![1, 4],
            l2_trials: 4,
        }
    }
}

/// Campaign results.
#[derive(Clone, Debug, Default)]
pub struct DiffStats {
    /// Programs translated and diffed (counted once per worker count).
    pub programs: u64,
    /// Function runs diffed.
    pub functions: u64,
    /// Shared-input trials executed.
    pub trials: u64,
    /// Adjacent-layer comparisons decided (abstract side succeeded).
    pub decided_pairs: u64,
    /// Trials skipped because some layer ran out of fuel.
    pub skipped_fuel: u64,
    /// Layer disagreements (must stay empty). Messages carry the program
    /// seed so `codegen::generate_mix` regenerates the offending source.
    pub disagreements: Vec<String>,
}

impl DiffStats {
    fn merge(&mut self, other: &DiffStats) {
        self.programs += other.programs;
        self.functions += other.functions;
        self.trials += other.trials;
        self.decided_pairs += other.decided_pairs;
        self.skipped_fuel += other.skipped_fuel;
        self.disagreements.extend(other.disagreements.iter().cloned());
    }
}

/// Runs a differential campaign: generates `cfg.programs` programs with
/// the audit shape mix, translates each at every configured worker count,
/// and diffs all five layers on shared inputs.
#[must_use]
pub fn run_campaign(cfg: &DiffConfig) -> DiffStats {
    let mut stats = DiffStats::default();
    let profile = Profile {
        name: "audit",
        loc: cfg.loc,
        functions: cfg.functions,
    };
    for i in 0..cfg.programs {
        let seed = cfg.seed.wrapping_add(u64::from(i));
        let src = generate_mix(&profile, &Mix::audit(), seed);
        let mut wa_prints = Vec::new();
        for &workers in &cfg.workers {
            let opts = Options {
                workers,
                l2_trials: cfg.l2_trials,
                seed,
                ..Options::default()
            };
            let out = match translate(&src, &opts) {
                Ok(out) => out,
                Err(e) => {
                    stats.disagreements.push(format!(
                        "program seed={seed} workers={workers}: pipeline error: {e}"
                    ));
                    continue;
                }
            };
            wa_prints.push(print_wa(&out));
            stats.merge(&diff_output(&out, seed, cfg.trials));
            stats.programs += 1;
        }
        // The determinism claim rides along: the final specs must be
        // byte-identical at every worker count.
        if wa_prints.windows(2).any(|w| w[0] != w[1]) {
            stats
                .disagreements
                .push(format!("program seed={seed}: WA output differs across worker counts"));
        }
    }
    stats
}

fn print_wa(out: &Output) -> String {
    let mut s = String::new();
    for f in out.wa.fns.values() {
        s.push_str(&f.to_string());
        s.push('\n');
    }
    s
}

/// One layer run, classified.
#[derive(Clone, Debug)]
enum Run {
    Normal(Value, State),
    Except(Value, State),
    /// A guard failed / `fail` was reached.
    Fault,
    Fuel,
    /// Stuck or unknown function: always a bug.
    Broken(String),
}

fn run_monadic(ctx: &ProgramCtx, name: &str, args: &[Value], st: State) -> Run {
    match monadic::exec_fn(ctx, name, args, st, FUEL) {
        Ok((MonadResult::Normal(v), st)) => Run::Normal(v, st),
        Ok((MonadResult::Except(v), st)) => Run::Except(v, st),
        Err(MonadFault::Failure(_)) => Run::Fault,
        Err(MonadFault::OutOfFuel) => Run::Fuel,
        Err(e @ (MonadFault::Stuck(_) | MonadFault::UnknownFunction(_))) => {
            Run::Broken(e.to_string())
        }
    }
}

fn run_simpl(prog: &simpl::SimplProgram, name: &str, args: &[Value], st: State) -> Run {
    match simpl::exec_fn(prog, name, args, st, FUEL) {
        Ok((v, st)) => Run::Normal(v, st),
        Err(simpl::Fault::GuardFailure(_)) => Run::Fault,
        Err(simpl::Fault::OutOfFuel) => Run::Fuel,
        Err(e @ (simpl::Fault::Stuck(_) | simpl::Fault::UnknownFunction(_))) => {
            Run::Broken(e.to_string())
        }
    }
}

/// Diffs every function of one pipeline output on `trials` shared inputs.
#[must_use]
pub fn diff_output(out: &Output, seed: u64, trials: u32) -> DiffStats {
    let mut stats = DiffStats::default();
    let tenv = &out.simpl.tenv;
    let heap_types = heap_types_of(tenv, &out.l1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA0D1_7000);
    for (name, simpl_f) in &out.simpl.fns {
        stats.functions += 1;
        let wa_f = out.wa.fns.get(name).expect("wa keeps every function");
        for trial in 0..trials {
            stats.trials += 1;
            let conc0 = gen_state(&mut rng, tenv, &heap_types, HEAP_OBJS);
            let args: Vec<Value> = simpl_f
                .params
                .iter()
                .map(|(_, t)| random_arg(&mut rng, t, &heap_types, HEAP_OBJS))
                .collect();
            let abs0 = heapmodel::lift_state(&conc0, tenv, &heap_types);
            let wa_args: Vec<Value> = args
                .iter()
                .zip(&simpl_f.params)
                .map(|(v, (_, t))| AbsFun::for_ty(t).apply(v).expect("abstractable arg"))
                .collect();

            let runs = [
                run_simpl(&out.simpl, name, &args, State::Conc(conc0.clone())),
                run_monadic(&out.l1, name, &args, State::Conc(conc0.clone())),
                run_monadic(&out.l2, name, &args, State::Conc(conc0)),
                run_monadic(&out.hl, name, &args, State::Abs(abs0.clone())),
                run_monadic(&out.wa, name, &wa_args, State::Abs(abs0)),
            ];
            let at = |msg: String| format!("seed={seed} fn={name} trial={trial}: {msg}");

            if let Some(broken) = runs.iter().find_map(|r| match r {
                Run::Broken(e) => Some(e.clone()),
                _ => None,
            }) {
                stats.disagreements.push(at(format!("layer broke: {broken}")));
                continue;
            }
            if runs.iter().any(|r| matches!(r, Run::Fuel)) {
                stats.skipped_fuel += 1;
                continue;
            }
            let [simpl_r, l1_r, l2_r, hl_r, wa_r] = runs;

            // Simpl ↔ L1: exact (modulo the locals frame).
            match (&l1_r, &simpl_r) {
                (Run::Normal(va, sta), Run::Normal(vc, stc)) => {
                    stats.decided_pairs += 1;
                    if va != vc {
                        stats
                            .disagreements
                            .push(at(format!("simpl/l1 values differ: {vc} vs {va}")));
                    } else if !conc_states_agree(sta, stc) {
                        stats.disagreements.push(at("simpl/l1 final states differ".into()));
                    }
                }
                (Run::Fault, Run::Fault) => stats.decided_pairs += 1,
                (a, c) => stats.disagreements.push(at(format!(
                    "simpl/l1 outcomes differ: simpl {} vs l1 {}",
                    describe(c),
                    describe(a)
                ))),
            }

            // The three refinement pairs, concrete side first.
            check_refines(&mut stats, &at, "l1/l2", &l1_r, &l2_r, |va, vc| va == vc, |sa, sc| {
                conc_states_agree(sa, sc)
            });
            check_refines(
                &mut stats,
                &at,
                "l2/hl",
                &l2_r,
                &hl_r,
                |va, vc| va == vc,
                |sa, sc| lifted_states_agree(sa, sc, out, &heap_types),
            );
            check_refines(
                &mut stats,
                &at,
                "hl/wa",
                &hl_r,
                &wa_r,
                |va, vc| {
                    let expect = match (vc, &wa_f.ret_ty) {
                        (Value::Word(w), Ty::Nat) => Value::Nat(w.unat()),
                        (Value::Word(w), Ty::Int) => Value::Int(w.sint()),
                        (other, _) => other.clone(),
                    };
                    *va == expect
                },
                abs_states_agree,
            );
        }
    }
    stats
}

fn describe(r: &Run) -> &'static str {
    match r {
        Run::Normal(..) => "normal",
        Run::Except(..) => "except",
        Run::Fault => "fault",
        Run::Fuel => "fuel",
        Run::Broken(_) => "broken",
    }
}

/// Refinement check: when the abstract run succeeds (normally or with an
/// exception), the concrete run must match it under the value/state
/// relations; when the abstract run faults, the pair is undecided.
fn check_refines(
    stats: &mut DiffStats,
    at: &dyn Fn(String) -> String,
    pair: &str,
    conc: &Run,
    abs: &Run,
    val_rel: impl Fn(&Value, &Value) -> bool,
    st_rel: impl Fn(&State, &State) -> bool,
) {
    match abs {
        Run::Normal(va, sa) => match conc {
            Run::Normal(vc, sc) => {
                stats.decided_pairs += 1;
                if !val_rel(va, vc) {
                    stats
                        .disagreements
                        .push(at(format!("{pair} values unrelated: {vc} vs {va}")));
                } else if !st_rel(sa, sc) {
                    stats.disagreements.push(at(format!("{pair} final states unrelated")));
                }
            }
            other => stats.disagreements.push(at(format!(
                "{pair}: abstract succeeded but concrete was {}",
                describe(other)
            ))),
        },
        Run::Except(va, sa) => match conc {
            Run::Except(vc, sc) => {
                stats.decided_pairs += 1;
                if !val_rel(va, vc) || !st_rel(sa, sc) {
                    stats
                        .disagreements
                        .push(at(format!("{pair} exception outcomes unrelated")));
                }
            }
            other => stats.disagreements.push(at(format!(
                "{pair}: abstract raised but concrete was {}",
                describe(other)
            ))),
        },
        // Abstract fault: refinement claims nothing.
        Run::Fault => {}
        Run::Fuel | Run::Broken(_) => unreachable!("filtered before pairing"),
    }
}

/// Byte-level state agreement: memory and globals (locals excluded — see
/// module docs).
fn conc_states_agree(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Conc(x), State::Conc(y)) => x.mem == y.mem && x.globals == y.globals,
        _ => false,
    }
}

/// Concrete (`b`) vs abstract (`a`) agreement across the heap-abstraction
/// boundary: the lifted concrete heaps must equal the abstract heaps.
fn lifted_states_agree(a: &State, b: &State, out: &Output, heap_types: &[Ty]) -> bool {
    match (a, b) {
        (State::Abs(x), State::Conc(y)) => {
            let lifted = heapmodel::lift_state(y, &out.simpl.tenv, heap_types);
            lifted.heaps == x.heaps && y.globals == x.globals
        }
        _ => false,
    }
}

/// Abstract-vs-abstract agreement (word abstraction leaves heaps and
/// globals at the word level).
fn abs_states_agree(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Abs(x), State::Abs(y)) => x.heaps == y.heaps && x.globals == y.globals,
        _ => false,
    }
}
