//! Discharge-vs-solver differential.
//!
//! The abstract-interpretation phase proves guards statically and the
//! kernel replays each `absint_discharge` side condition — but both halves
//! run the *same* interval engine, so a shared bug (an unsound transfer
//! function, a wrong widening) would slip through replay. This module is
//! the independent oracle: every statically discharged guard is re-posed
//! to [`solver::decide`] as `hyp ⟶ guard` and any `Counterexample` is a
//! disagreement that fails the audit. `Unknown` verdicts are counted but
//! not failures — the decision procedures are incomplete on non-linear
//! goals, while the interval engine handles some of them (e.g. products
//! of bounded factors).

use std::collections::HashMap;

use autocorres::{translate, Options, Output};
use codegen::{generate_mix, Mix, Profile};
use ir::expr::Expr;
use solver::Verdict;

/// Configuration of a discharge-differential campaign.
#[derive(Clone, Debug)]
pub struct DischargeConfig {
    /// Number of generated programs.
    pub programs: u32,
    /// Functions per generated program.
    pub functions: usize,
    /// Approximate lines per generated program.
    pub loc: usize,
    /// Base RNG seed (program `i` uses `seed + i`).
    pub seed: u64,
}

impl DischargeConfig {
    /// Small smoke campaign (test-suite sized).
    #[must_use]
    pub fn smoke() -> DischargeConfig {
        DischargeConfig {
            programs: 8,
            functions: 6,
            loc: 90,
            seed: 0xAB51,
        }
    }

    /// Full campaign: the ISSUE-8 acceptance bar (100 generated programs).
    #[must_use]
    pub fn full() -> DischargeConfig {
        DischargeConfig {
            programs: 100,
            functions: 8,
            loc: 120,
            seed: 0xAB51,
        }
    }
}

/// Campaign results.
#[derive(Clone, Debug, Default)]
pub struct DischargeStats {
    /// Programs translated.
    pub programs: u64,
    /// Guards the analysis saw on reachable paths.
    pub guards: u64,
    /// Guards proved true statically and re-checked against the solver.
    pub discharged: u64,
    /// Guards proved definitely false (not solver-checked: refutation is a
    /// claim about a *reachable* abstract state, which the per-function
    /// solver goal cannot express).
    pub refuted: u64,
    /// Discharged guards the solver could not decide either way.
    pub solver_unknown: u64,
    /// Discharged guards the solver *refuted* (must stay empty). Messages
    /// carry the program seed so `codegen::generate_mix` regenerates the
    /// offending source.
    pub disagreements: Vec<String>,
}

impl DischargeStats {
    fn merge(&mut self, other: &DischargeStats) {
        self.programs += other.programs;
        self.guards += other.guards;
        self.discharged += other.discharged;
        self.refuted += other.refuted;
        self.solver_unknown += other.solver_unknown;
        self.disagreements.extend(other.disagreements.iter().cloned());
    }
}

/// Re-poses every statically discharged guard of one pipeline output to
/// the solver. `label` prefixes disagreement messages.
#[must_use]
pub fn check_discharges(out: &Output, label: &str) -> DischargeStats {
    let mut stats = DischargeStats::default();
    for (name, a) in &out.absint {
        let fun = out.wa.fns.get(name).expect("wa keeps every function");
        let vars: HashMap<String, ir::ty::Ty> = fun.params.iter().cloned().collect();
        for g in &a.report.guards {
            stats.guards += 1;
            match &g.verdict {
                absint::Verdict::ProvedTrue { hyp } => {
                    stats.discharged += 1;
                    let goal = Expr::implies(hyp.clone(), g.guard.clone());
                    match solver::decide(&goal, &vars) {
                        Verdict::Valid => {}
                        Verdict::Unknown => stats.solver_unknown += 1,
                        Verdict::Counterexample(cex) => stats.disagreements.push(format!(
                            "{label} fn={name} guard[{}] {}: absint proved `{}` under \
                             `{hyp}` but the solver refutes it: {cex:?}",
                            g.index, g.kind, g.guard
                        )),
                    }
                }
                absint::Verdict::ProvedFalse => stats.refuted += 1,
                absint::Verdict::Unknown => {}
            }
        }
    }
    stats
}

/// Runs a discharge-differential campaign over generated audit-mix
/// programs: translate, collect the absint report, and solver-check every
/// discharged guard.
#[must_use]
pub fn run_discharge_campaign(cfg: &DischargeConfig) -> DischargeStats {
    let mut stats = DischargeStats::default();
    let profile = Profile {
        name: "audit",
        loc: cfg.loc,
        functions: cfg.functions,
    };
    for i in 0..cfg.programs {
        let seed = cfg.seed.wrapping_add(u64::from(i));
        let src = generate_mix(&profile, &Mix::audit(), seed);
        let opts = Options {
            seed,
            l2_trials: 4,
            ..Options::default()
        };
        let out = match translate(&src, &opts) {
            Ok(out) => out,
            Err(e) => {
                stats
                    .disagreements
                    .push(format!("program seed={seed}: pipeline error: {e}"));
                continue;
            }
        };
        stats.programs += 1;
        stats.merge(&check_discharges(&out, &format!("seed={seed}")));
        // The discharge theorems must also replay through the kernel.
        if let Err(e) = out.check_absint() {
            stats
                .disagreements
                .push(format!("program seed={seed}: discharge replay failed: {e}"));
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handcrafted_discharges_agree_with_solver() {
        let src = "
unsigned clamp(unsigned x) {
    if (x < 100u) { return x + 1u; }
    return 100u;
}
int scale(int n) {
    if (n > 0 && n < 1000) { return n * 2; }
    return 0;
}
";
        let out = translate(src, &Options::default()).unwrap();
        let stats = check_discharges(&out, "handcrafted");
        assert!(stats.discharged > 0, "expected at least one discharge");
        assert!(
            stats.disagreements.is_empty(),
            "solver refuted a discharged guard: {:?}",
            stats.disagreements
        );
    }

    #[test]
    fn smoke_campaign_has_no_disagreements() {
        let cfg = DischargeConfig {
            programs: 2,
            ..DischargeConfig::smoke()
        };
        let stats = run_discharge_campaign(&cfg);
        assert_eq!(stats.programs, 2);
        assert!(
            stats.disagreements.is_empty(),
            "{:?}",
            stats.disagreements
        );
    }
}
