//! Proof-tree fault injection.
//!
//! The kernel's trust story is LCF-style: `Thm` has no public constructor,
//! and `kernel::check` replays every rule application bottom-up. This
//! module attacks that story head-on. Using the kernel's audit-only
//! `forge` backdoor it mints derivations that are *lies* — a swapped rule
//! name, a perturbed conclusion, a dropped or reordered premise, zeroed
//! testing evidence, a renamed symbol on one side of a correspondence —
//! and asserts the checker rejects **every single one** (a 100%
//! mutation-kill rate, reported per mutation kind × pipeline phase).
//!
//! Two mutation classes are deliberately *not* in the matrix and covered
//! elsewhere (DESIGN.md §6c):
//!
//! * Conclusion perturbations of **oracle nodes** (`ExecTested`,
//!   `WCustomSampled`): their replay re-runs randomized evidence rather
//!   than recomputing the conclusion, so a judgment tweak is only caught
//!   probabilistically. The cross-layer differential oracle
//!   ([`crate::differential`]) owns that half of the trust argument.
//! * Cache corruption ([`attack_replay_cache`], [`attack_artifact_store`]):
//!   reported separately because the property is different — a corrupted
//!   digest must never cause a forged theorem to be *accepted* (nor a
//!   valid one to be rejected), but it is allowed to cost a cache miss.

use std::collections::BTreeMap;
use std::fmt;

use autocorres::phase::Artifact;
use autocorres::{Options, Output, Session};
use ir::expr::Expr;
use ir::intern::Interned;
use ir::names::Symbol;
use ir::update::Update;
use kernel::{check, check_all_with, Judgment, Rule, Side, Thm};
use monadic::Prog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One way of lying to the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mutation {
    /// Replace the rule name with one from a different judgment family.
    SwapRuleFamily,
    /// Replace an L1 rule with the L1 rule for a different statement shape.
    SwapRuleShape,
    /// Perturb one subterm of the conclusion (wrap the concrete program in
    /// a no-op `skip; ·`, or strengthen the precondition with an
    /// unprovable conjunct).
    PerturbJudgment,
    /// Drop the first premise.
    DropPremise,
    /// Swap the first two (distinct) premises.
    ReorderPremises,
    /// Zero out randomized-testing evidence (`trials = 0`, or strip the
    /// sampling record entirely).
    ZeroTestEvidence,
    /// Rename every occurrence of one symbol on the *concrete* side only,
    /// breaking the correspondence the judgment claims.
    CorruptSymbol,
}

/// Every mutation kind, in display order.
pub const MUTATIONS: &[Mutation] = &[
    Mutation::SwapRuleFamily,
    Mutation::SwapRuleShape,
    Mutation::PerturbJudgment,
    Mutation::DropPremise,
    Mutation::ReorderPremises,
    Mutation::ZeroTestEvidence,
    Mutation::CorruptSymbol,
];

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mutation::SwapRuleFamily => "swap-rule-family",
            Mutation::SwapRuleShape => "swap-rule-shape",
            Mutation::PerturbJudgment => "perturb-judgment",
            Mutation::DropPremise => "drop-premise",
            Mutation::ReorderPremises => "reorder-premises",
            Mutation::ZeroTestEvidence => "zero-test-evidence",
            Mutation::CorruptSymbol => "corrupt-symbol",
        };
        write!(f, "{s}")
    }
}

/// One cell of the kill matrix.
#[derive(Clone, Copy, Debug, Default)]
pub struct KillCell {
    /// Mutants injected.
    pub applied: u64,
    /// Mutants the checker rejected.
    pub killed: u64,
}

/// Mutation-kill results per mutation kind × pipeline phase.
#[derive(Clone, Debug, Default)]
pub struct KillMatrix {
    /// `(mutation, phase) → cell`.
    pub cells: BTreeMap<(Mutation, &'static str), KillCell>,
    /// Descriptions of mutants that were **accepted** (must stay empty).
    pub survivors: Vec<String>,
}

/// The phase columns of the matrix, in pipeline order.
pub const PHASE_COLS: &[&str] = &["l1", "l2", "hl", "wa"];

impl KillMatrix {
    /// Total mutants injected.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.cells.values().map(|c| c.applied).sum()
    }

    /// Total mutants rejected.
    #[must_use]
    pub fn killed(&self) -> u64 {
        self.cells.values().map(|c| c.killed).sum()
    }

    /// Mutants injected by one operator, across all phases.
    #[must_use]
    pub fn applied_for(&self, kind: Mutation) -> u64 {
        self.cells
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, c)| c.applied)
            .sum()
    }

    /// Did the checker reject every injected mutant (and was at least one
    /// injected)?
    #[must_use]
    pub fn all_killed(&self) -> bool {
        self.survivors.is_empty() && self.applied() > 0
    }

    /// Accumulates another matrix into this one.
    pub fn merge(&mut self, other: &KillMatrix) {
        for (k, c) in &other.cells {
            let cell = self.cells.entry(*k).or_default();
            cell.applied += c.applied;
            cell.killed += c.killed;
        }
        self.survivors.extend(other.survivors.iter().cloned());
    }

    /// Renders the matrix as a `killed/applied` table (kind rows × phase
    /// columns).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{:<20}", "mutation \\ phase"));
        for p in PHASE_COLS {
            s.push_str(&format!("{p:>12}"));
        }
        s.push('\n');
        for m in MUTATIONS {
            s.push_str(&format!("{:<20}", m.to_string()));
            for p in PHASE_COLS {
                let cell = self.cells.get(&(*m, *p)).copied().unwrap_or_default();
                if cell.applied == 0 {
                    s.push_str(&format!("{:>12}", "-"));
                } else {
                    s.push_str(&format!("{:>12}", format!("{}/{}", cell.killed, cell.applied)));
                }
            }
            s.push('\n');
        }
        s.push_str(&format!(
            "total: {}/{} mutants killed\n",
            self.killed(),
            self.applied()
        ));
        s
    }
}

/// Injects up to `budget_per_site` mutants of every kind into every
/// theorem of `out` and replays each through the independent checker.
/// Accepted mutants land in [`KillMatrix::survivors`].
#[must_use]
pub fn attack_theorems(out: &Output, budget_per_site: usize) -> KillMatrix {
    let mut matrix = KillMatrix::default();
    for (phase, name, thm) in out.thms.iter() {
        let col = phase_col(phase);
        for &kind in MUTATIONS {
            let mut sites = Vec::new();
            collect_sites(thm, kind, &mut Vec::new(), &mut sites);
            for path in sample(&sites, budget_per_site) {
                let Some(mutant) = mutate_at(thm, path, kind) else {
                    continue;
                };
                // A mutation that did not change the theorem is a harness
                // bug, not a survivor.
                assert!(mutant != *thm, "no-op {kind} mutation at {path:?}");
                let cell = matrix.cells.entry((kind, col)).or_default();
                cell.applied += 1;
                if check(&mutant, &out.check_ctx).is_err() {
                    cell.killed += 1;
                } else {
                    matrix.survivors.push(format!(
                        "{kind} on {phase}/{name} at {path:?} (rule {:?}) was ACCEPTED",
                        node_at(thm, path).rule()
                    ));
                }
            }
        }
    }
    matrix
}

fn phase_col(phase: &'static str) -> &'static str {
    // `PhaseTheorems::iter` only tags with the four theorem-bearing
    // phases; keep a stable column even if that changes.
    if PHASE_COLS.contains(&phase) {
        phase
    } else {
        "wa"
    }
}

/// Evenly strided sample of at most `budget` site paths.
fn sample(sites: &[Vec<usize>], budget: usize) -> impl Iterator<Item = &Vec<usize>> {
    let n = sites.len();
    let take = budget.min(n);
    (0..take).map(move |k| &sites[k * n / take.max(1)])
}

fn node_at<'t>(thm: &'t Thm, path: &[usize]) -> &'t Thm {
    let mut node = thm;
    for &i in path {
        node = &node.premises()[i];
    }
    node
}

/// Walks the derivation collecting the paths of all nodes `kind` applies to.
fn collect_sites(thm: &Thm, kind: Mutation, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if applicable(thm, kind) {
        out.push(cur.clone());
    }
    for (i, p) in thm.premises().iter().enumerate() {
        cur.push(i);
        collect_sites(p, kind, cur, out);
        cur.pop();
    }
}

/// Structural rules recompute their conclusion from their premises on
/// replay; oracle rules re-run recorded randomized evidence instead.
fn structural(rule: Rule) -> bool {
    !matches!(rule, Rule::ExecTested | Rule::WCustomSampled)
}

fn is_l1_rule(rule: Rule) -> bool {
    matches!(
        rule,
        Rule::L1Skip
            | Rule::L1Basic
            | Rule::L1Seq
            | Rule::L1Cond
            | Rule::L1While
            | Rule::L1Guard
            | Rule::L1Throw
            | Rule::L1Catch
            | Rule::L1Call
    )
}

fn applicable(thm: &Thm, kind: Mutation) -> bool {
    match kind {
        Mutation::SwapRuleFamily => true,
        Mutation::SwapRuleShape => is_l1_rule(thm.rule()),
        // Oracle nodes don't recompute their conclusion on replay, so a
        // perturbed judgment there is only probabilistically detectable —
        // excluded by design (covered by the differential oracle).
        Mutation::PerturbJudgment => structural(thm.rule()),
        Mutation::DropPremise => structural(thm.rule()) && !thm.premises().is_empty(),
        // A premise swap that still validates implies the swapped premise
        // *judgments* were equal (validators destructure positionally), so
        // equal-judgment pairs are no-ops, not mutations.
        Mutation::ReorderPremises => {
            structural(thm.rule())
                && thm.premises().len() >= 2
                && thm.premises()[0].judgment() != thm.premises()[1].judgment()
        }
        Mutation::ZeroTestEvidence => !matches!(thm.side(), Side::None),
        // DischargeGuard is excluded: renaming a symbol uniformly in a
        // guard like `x == x` can leave it still provable-by-simplifier.
        Mutation::CorruptSymbol => {
            structural(thm.rule())
                && thm.rule() != Rule::DischargeGuard
                && conc_symbol(thm.judgment()).is_some()
        }
    }
}

/// Builds the mutated root: applies `kind` at `path`, then rebuilds every
/// ancestor with `Thm::forge` (ancestor conclusions unchanged — the lie is
/// local).
fn mutate_at(thm: &Thm, path: &[usize], kind: Mutation) -> Option<Thm> {
    if path.is_empty() {
        return apply(thm, kind);
    }
    let i = path[0];
    let mut prems: Vec<Thm> = thm.premises().to_vec();
    prems[i] = mutate_at(&prems[i], &path[1..], kind)?;
    Some(Thm::forge(
        thm.rule(),
        prems,
        thm.judgment().clone(),
        thm.side().clone(),
    ))
}

fn apply(thm: &Thm, kind: Mutation) -> Option<Thm> {
    let prems = thm.premises().to_vec();
    let j = thm.judgment().clone();
    let side = thm.side().clone();
    match kind {
        Mutation::SwapRuleFamily => {
            let new_rule = match thm.judgment() {
                Judgment::L1 { .. } => Rule::ReflRefines,
                _ => Rule::L1Skip,
            };
            Some(Thm::forge(new_rule, prems, j, side))
        }
        Mutation::SwapRuleShape => {
            let new_rule = match thm.rule() {
                Rule::L1Skip => Rule::L1Basic,
                Rule::L1Basic => Rule::L1Skip,
                Rule::L1Seq => Rule::L1Cond,
                Rule::L1Cond => Rule::L1Seq,
                Rule::L1While => Rule::L1Guard,
                Rule::L1Guard => Rule::L1While,
                Rule::L1Throw => Rule::L1Basic,
                Rule::L1Catch => Rule::L1Seq,
                Rule::L1Call => Rule::L1Skip,
                _ => return None,
            };
            Some(Thm::forge(new_rule, prems, j, side))
        }
        Mutation::PerturbJudgment => {
            let j2 = perturb_judgment(thm.judgment());
            Some(Thm::forge(thm.rule(), prems, j2, side))
        }
        Mutation::DropPremise => {
            Some(Thm::forge(thm.rule(), prems[1..].to_vec(), j, side))
        }
        Mutation::ReorderPremises => {
            let mut prems = prems;
            prems.swap(0, 1);
            Some(Thm::forge(thm.rule(), prems, j, side))
        }
        Mutation::ZeroTestEvidence => {
            let new_side = match thm.side() {
                Side::Tested { seed, .. } => Side::Tested { trials: 0, seed: *seed },
                // `trials = 0` could vacuously pass a sampling loop; strip
                // the record entirely so the destructure itself fails.
                Side::SampledWVal { .. } => Side::None,
                Side::None => return None,
            };
            Some(Thm::forge(thm.rule(), prems, j, new_side))
        }
        Mutation::CorruptSymbol => {
            let sym = conc_symbol(thm.judgment())?;
            let forged = Symbol::intern(&format!("{}\u{b7}forged", sym.as_str()));
            let j2 = rename_conc(thm.judgment(), sym, forged);
            Some(Thm::forge(thm.rule(), prems, j2, side))
        }
    }
}

/// An opaque, unprovable extra conjunct ('·' cannot appear in parsed C, so
/// the simplifier knows nothing about it).
fn audit_flag() -> Expr {
    Expr::var("\u{b7}audit\u{b7}unprovable")
}

/// Wraps a program in a semantically-equivalent-looking no-op so the term
/// no longer matches the validator's recomputation. Built with the raw
/// `Bind` constructor: `Prog::then` simplifies `skip; p` back to `p`,
/// which would make this a no-op rather than a mutation.
fn wrap(p: &Prog) -> Prog {
    Prog::Bind(
        Interned::new(Prog::skip()),
        "\u{b7}audit".into(),
        Interned::new(p.clone()),
    )
}

fn perturb_judgment(j: &Judgment) -> Judgment {
    match j {
        Judgment::L1 { prog, simpl } => Judgment::L1 {
            prog: wrap(prog),
            simpl: simpl.clone(),
        },
        Judgment::Refines { abs, conc } => Judgment::Refines {
            abs: abs.clone(),
            conc: wrap(conc),
        },
        Judgment::WStmt { ctx, rx, ex, abs, conc } => Judgment::WStmt {
            ctx: ctx.clone(),
            rx: rx.clone(),
            ex: ex.clone(),
            abs: abs.clone(),
            conc: wrap(conc),
        },
        Judgment::HStmt { abs, conc } => Judgment::HStmt {
            abs: abs.clone(),
            conc: wrap(conc),
        },
        Judgment::WVal { ctx, pre, f, abs, conc } => Judgment::WVal {
            ctx: ctx.clone(),
            pre: Expr::and(pre.clone(), audit_flag()),
            f: f.clone(),
            abs: abs.clone(),
            conc: conc.clone(),
        },
        Judgment::HVal { pre, abs, conc } => Judgment::HVal {
            pre: Expr::and(pre.clone(), audit_flag()),
            abs: abs.clone(),
            conc: conc.clone(),
        },
        Judgment::HUpd { pre, abs, conc } => Judgment::HUpd {
            pre: Expr::and(pre.clone(), audit_flag()),
            abs: abs.clone(),
            conc: conc.clone(),
        },
        Judgment::AbsGuard { hyp, kind, guard } => Judgment::AbsGuard {
            hyp: hyp.clone(),
            kind: kind.clone(),
            // Strengthen the conclusion past what the hypothesis supports.
            guard: Expr::and(guard.clone(), audit_flag()),
        },
    }
}

/// The first symbol occurring on the judgment's *concrete* side.
fn conc_symbol(j: &Judgment) -> Option<Symbol> {
    match j {
        Judgment::L1 { prog, .. } => first_symbol_prog(prog),
        Judgment::Refines { conc, .. }
        | Judgment::WStmt { conc, .. }
        | Judgment::HStmt { conc, .. } => first_symbol_prog(conc),
        Judgment::WVal { conc, .. } | Judgment::HVal { conc, .. } => first_symbol_expr(conc),
        Judgment::HUpd { conc, .. } => first_symbol_update(conc),
        Judgment::AbsGuard { guard, .. } => first_symbol_expr(guard),
    }
}

/// Renames `from` to `to` throughout the concrete side only, leaving the
/// abstract side (and, for L1, the Simpl side) untouched.
fn rename_conc(j: &Judgment, from: Symbol, to: Symbol) -> Judgment {
    match j {
        Judgment::L1 { prog, simpl } => Judgment::L1 {
            prog: rename_prog(prog, from, to),
            simpl: simpl.clone(),
        },
        Judgment::Refines { abs, conc } => Judgment::Refines {
            abs: abs.clone(),
            conc: rename_prog(conc, from, to),
        },
        Judgment::WStmt { ctx, rx, ex, abs, conc } => Judgment::WStmt {
            ctx: ctx.clone(),
            rx: rx.clone(),
            ex: ex.clone(),
            abs: abs.clone(),
            conc: rename_prog(conc, from, to),
        },
        Judgment::HStmt { abs, conc } => Judgment::HStmt {
            abs: abs.clone(),
            conc: rename_prog(conc, from, to),
        },
        Judgment::WVal { ctx, pre, f, abs, conc } => Judgment::WVal {
            ctx: ctx.clone(),
            pre: pre.clone(),
            f: f.clone(),
            abs: abs.clone(),
            conc: rename_expr(conc, from, to),
        },
        Judgment::HVal { pre, abs, conc } => Judgment::HVal {
            pre: pre.clone(),
            abs: abs.clone(),
            conc: rename_expr(conc, from, to),
        },
        Judgment::HUpd { pre, abs, conc } => Judgment::HUpd {
            pre: pre.clone(),
            abs: abs.clone(),
            conc: rename_update(conc, from, to),
        },
        Judgment::AbsGuard { hyp, kind, guard } => Judgment::AbsGuard {
            // Rename in the guard only: the hypothesis no longer bounds it.
            hyp: hyp.clone(),
            kind: kind.clone(),
            guard: rename_expr(guard, from, to),
        },
    }
}

fn first_symbol_expr(e: &Expr) -> Option<Symbol> {
    let mut found = None;
    e.visit(&mut |sub| {
        if found.is_none() {
            if let Expr::Var(s) | Expr::Local(s) | Expr::Global(s) = sub {
                found = Some(*s);
            }
        }
    });
    found
}

fn first_symbol_prog(p: &Prog) -> Option<Symbol> {
    let mut found = None;
    p.visit_exprs(&mut |e| {
        if found.is_none() {
            found = first_symbol_expr(e);
        }
    });
    found
}

fn first_symbol_update(u: &Update) -> Option<Symbol> {
    match u {
        Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => {
            first_symbol_expr(e)
        }
        Update::Heap(_, p, v) | Update::Byte(p, v) => {
            first_symbol_expr(p).or_else(|| first_symbol_expr(v))
        }
    }
}

fn ie(e: Expr) -> ir::expr::IExpr {
    Interned::new(e)
}

fn rename_expr(e: &Expr, from: Symbol, to: Symbol) -> Expr {
    let r = |x: &Expr| ie(rename_expr(x, from, to));
    match e {
        Expr::Lit(_) => e.clone(),
        Expr::Var(s) => Expr::Var(if *s == from { to } else { *s }),
        Expr::Local(s) => Expr::Local(if *s == from { to } else { *s }),
        Expr::Global(s) => Expr::Global(if *s == from { to } else { *s }),
        Expr::ReadHeap(t, p) => Expr::ReadHeap(t.clone(), r(p)),
        Expr::ReadByte(p) => Expr::ReadByte(r(p)),
        Expr::IsValid(t, p) => Expr::IsValid(t.clone(), r(p)),
        Expr::PtrAligned(t, p) => Expr::PtrAligned(t.clone(), r(p)),
        Expr::NullFree(t, p) => Expr::NullFree(t.clone(), r(p)),
        Expr::Field(a, f) => Expr::Field(r(a), f.clone()),
        Expr::UpdateField(a, f, v) => Expr::UpdateField(r(a), f.clone(), r(v)),
        Expr::UnOp(op, a) => Expr::UnOp(*op, r(a)),
        Expr::BinOp(op, a, b) => Expr::BinOp(*op, r(a), r(b)),
        Expr::Cast(k, a) => Expr::Cast(k.clone(), r(a)),
        Expr::Ite(c, t, f) => Expr::Ite(r(c), r(t), r(f)),
        Expr::Tuple(vs) => Expr::Tuple(vs.iter().map(|v| rename_expr(v, from, to)).collect()),
        Expr::Proj(i, a) => Expr::Proj(*i, r(a)),
        Expr::Index(a, i) => Expr::Index(r(a), r(i)),
        Expr::ArrUpd(a, i, v) => Expr::ArrUpd(r(a), r(i), r(v)),
    }
}

fn rename_update(u: &Update, from: Symbol, to: Symbol) -> Update {
    let r = |e: &Expr| rename_expr(e, from, to);
    match u {
        Update::Local(n, e) => Update::Local(n.clone(), r(e)),
        Update::Global(n, e) => Update::Global(n.clone(), r(e)),
        Update::Heap(t, p, v) => Update::Heap(t.clone(), r(p), r(v)),
        Update::Byte(p, v) => Update::Byte(r(p), r(v)),
        Update::TagRegion(t, p) => Update::TagRegion(t.clone(), r(p)),
    }
}

fn ip(p: Prog) -> monadic::IProg {
    Interned::new(p)
}

fn rename_prog(p: &Prog, from: Symbol, to: Symbol) -> Prog {
    let re = |e: &Expr| rename_expr(e, from, to);
    let rp = |q: &Prog| ip(rename_prog(q, from, to));
    match p {
        Prog::Return(e) => Prog::Return(re(e)),
        Prog::Gets(e) => Prog::Gets(re(e)),
        Prog::Modify(u) => Prog::Modify(rename_update(u, from, to)),
        Prog::Guard(k, e) => Prog::Guard(k.clone(), re(e)),
        Prog::Throw(e) => Prog::Throw(re(e)),
        Prog::Fail => Prog::Fail,
        Prog::Bind(l, v, r) => Prog::Bind(rp(l), v.clone(), rp(r)),
        Prog::BindTuple(l, vs, r) => Prog::BindTuple(rp(l), vs.clone(), rp(r)),
        Prog::Condition(c, t, e) => Prog::Condition(re(c), rp(t), rp(e)),
        Prog::While { vars, cond, body, init } => Prog::While {
            vars: vars.clone(),
            cond: re(cond),
            body: rp(body),
            init: init.iter().map(|e| rename_expr(e, from, to)).collect(),
        },
        Prog::Catch(l, v, r) => Prog::Catch(rp(l), v.clone(), rp(r)),
        Prog::Call { fname, args } => Prog::Call {
            fname: fname.clone(),
            args: args.iter().map(|e| rename_expr(e, from, to)).collect(),
        },
        Prog::ExecConcrete(q) => Prog::ExecConcrete(rp(q)),
        Prog::ExecAbstract(q) => Prog::ExecAbstract(rp(q)),
    }
}

// ---------------------------------------------------------------------------
// Cache and store corruption
// ---------------------------------------------------------------------------

/// Result of the replay-cache bit-flip attack.
#[derive(Clone, Debug)]
pub struct CacheAttackReport {
    /// Stored digests that were bit-flipped.
    pub digests_corrupted: usize,
    /// The session's *valid* theorems still check after corruption (the
    /// flips only cost cache misses — they must never flip a verdict).
    pub valid_still_accepted: bool,
    /// A forged theorem checked against the corrupted cache is rejected.
    pub forged_rejected: bool,
}

impl CacheAttackReport {
    /// Did the cache uphold both properties?
    #[must_use]
    pub fn sound(&self) -> bool {
        self.valid_still_accepted && self.forged_rejected
    }
}

/// Translates `src` in a fresh session, populates the session replay
/// cache, then flips one random bit in `flips` stored digests and asserts
/// the corruption changes no verdict in either direction.
///
/// # Panics
///
/// Panics if `src` does not translate (audit inputs must be valid).
#[must_use]
pub fn attack_replay_cache(src: &str, opts: &Options, flips: usize, seed: u64) -> CacheAttackReport {
    let sess = Session::new(opts.clone());
    let out = sess.translate(src).expect("audit source translates");
    sess.check_all_report(&out, 1).expect("valid theorems check");
    let cache = sess.audit_replay();
    let digests = cache.forge_digests();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corrupted = 0;
    for _ in 0..flips.min(digests.len()) {
        let d = digests[rng.gen_range(0..digests.len())];
        if cache.forge_remove(d) {
            cache.forge_insert(d ^ (1u128 << rng.gen_range(0..128)));
            corrupted += 1;
        }
    }
    let valid_still_accepted = sess.check_all_report(&out, 1).is_ok();
    // A forged theorem must still be rejected: its (mutated) root digest is
    // a cache miss, so the validator runs and catches the lie.
    let forged_rejected = out.thms.iter().any(|(_, _, thm)| {
        let Some(mutant) = mutate_at(thm, &[], Mutation::SwapRuleFamily) else {
            return false;
        };
        check_all_with(
            std::iter::once(("forged", &mutant)),
            &out.check_ctx,
            1,
            cache,
        )
        .is_err()
    });
    CacheAttackReport {
        digests_corrupted: corrupted,
        valid_still_accepted,
        forged_rejected,
    }
}

/// Result of one artifact-store corruption attack.
#[derive(Clone, Debug)]
pub struct StoreAttackReport {
    /// The phase whose stored artifact was corrupted.
    pub phase: &'static str,
    /// The function whose artifact was corrupted.
    pub function: String,
    /// The re-translation was answered from the (poisoned) cache.
    pub cache_hit: bool,
    /// `Session::check_all_report` rejected the poisoned output.
    pub rejected: bool,
}

/// For each theorem-bearing phase, corrupts one stored artifact's theorem
/// in a warm session, re-translates (a full cache hit, so the poisoned
/// artifact flows into the output), and asserts the session checker
/// rejects the result — cached state is *untrusted*; only replay is.
///
/// # Panics
///
/// Panics if `src` does not translate or a phase has no theorem-bearing
/// artifact to corrupt.
#[must_use]
pub fn attack_artifact_store(src: &str, opts: &Options) -> Vec<StoreAttackReport> {
    let mut reports = Vec::new();
    for target in ["l1", "l2thm", "hl", "wa"] {
        let sess = Session::new(opts.clone());
        sess.translate(src).expect("audit source translates");
        let store = sess.audit_store();
        let key = store
            .audit_keys()
            .into_iter()
            .find(|(phase, name, digest)| {
                *phase == target
                    && store
                        .audit_get(phase, name, *digest)
                        .is_some_and(|a| corrupt_artifact(&a.value).is_some())
            })
            .unwrap_or_else(|| panic!("no theorem-bearing `{target}` artifact"));
        let art = store
            .audit_get(key.0, &key.1, key.2)
            .expect("artifact just found");
        let poisoned = corrupt_artifact(&art.value).expect("artifact has a theorem");
        assert!(store.audit_replace(key.0, &key.1, key.2, poisoned));
        let out2 = sess.translate(src).expect("cached re-translation");
        reports.push(StoreAttackReport {
            phase: target,
            function: key.1,
            cache_hit: out2.stats.dirty_fns == 0,
            rejected: sess.check_all_report(&out2, 1).is_err(),
        });
    }
    reports
}

/// Replaces the artifact's theorem with a rule-family-swapped forgery
/// (applicable at any root, guaranteed rejectable). `None` if the artifact
/// carries no theorem.
fn corrupt_artifact(a: &Artifact) -> Option<Artifact> {
    let swap = |thm: &Thm| mutate_at(thm, &[], Mutation::SwapRuleFamily).expect("swap applies");
    Some(match a {
        Artifact::L1 { fun, thm } => Artifact::L1 {
            fun: fun.clone(),
            thm: swap(thm),
        },
        Artifact::L2Thm(thm) => Artifact::L2Thm(swap(thm)),
        Artifact::Hl { fun, thm: Some(thm) } => Artifact::Hl {
            fun: fun.clone(),
            thm: Some(swap(thm)),
        },
        Artifact::Wa { fun, thm: Some(thm) } => Artifact::Wa {
            fun: fun.clone(),
            thm: Some(swap(thm)),
        },
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Disk-store corruption (DESIGN.md §6g)
// ---------------------------------------------------------------------------

/// Result of the on-disk store corruption campaign.
#[derive(Clone, Debug)]
pub struct DiskAttackReport {
    /// On-disk mutations performed (bit flips, truncations, garbage
    /// rewrites, deletions — including of `meta` and `replay.bin`).
    pub mutations: usize,
    /// Rounds in which the loader visibly degraded (rejected entries or
    /// declared version skew). Deletions load cleanly as misses, so this
    /// may be less than `mutations`.
    pub loads_degraded: usize,
    /// The WA output stayed byte-identical through every attack.
    pub output_stable: bool,
    /// `check_all_report` accepted the (recomputed) theorems after every
    /// attack.
    pub verdicts_stable: bool,
}

impl DiskAttackReport {
    /// Did the disk store uphold the persistence trust property?
    #[must_use]
    pub fn sound(&self) -> bool {
        self.output_stable && self.verdicts_stable
    }
}

/// Translates `src` through a disk-backed session, then runs `rounds` of
/// randomized on-disk corruption — each round mutates one stored file
/// (bit flip, truncation, garbage overwrite, or deletion), warm-starts a
/// fresh session from the damaged directory, and requires byte-identical
/// WA output plus a passing checker replay. The disk path must uphold the
/// same property as the in-memory caches: corruption may cost cache
/// misses, never a changed verdict or changed output bytes.
///
/// # Panics
///
/// Panics if `src` does not translate or the scratch directory is not
/// writable (audit environments control their tempdir).
#[must_use]
pub fn attack_disk_store(src: &str, opts: &Options, rounds: usize, seed: u64) -> DiskAttackReport {
    let dir = std::env::temp_dir().join(format!(
        "acr-audit-disk-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = Options {
        cache_dir: Some(dir.clone()),
        ..opts.clone()
    };
    let render = |out: &Output| {
        let mut s = out.stats.deterministic_summary();
        for f in out.wa.fns.values() {
            s.push_str(&f.to_string());
            s.push('\n');
        }
        s
    };
    let baseline = {
        let sess = Session::new(opts.clone());
        let out = sess.translate(src).expect("audit source translates");
        sess.check_all_report(&out, 1).expect("baseline checks");
        render(&out)
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut report = DiskAttackReport {
        mutations: 0,
        loads_degraded: 0,
        output_stable: true,
        verdicts_stable: true,
    };
    for _ in 0..rounds {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir.join("artifacts"))
            .expect("store populated")
            .map(|e| e.expect("readable dir").path())
            .collect();
        files.push(dir.join("replay.bin"));
        files.push(dir.join("meta"));
        files.sort();
        let target = &files[rng.gen_range(0..files.len())];
        let orig = std::fs::read(target).expect("entry readable");
        match rng.gen_range(0..4u8) {
            0 => {
                let mut bad = orig.clone();
                let pos = rng.gen_range(0..bad.len());
                bad[pos] ^= 1 << rng.gen_range(0..8u8);
                std::fs::write(target, &bad).expect("writable");
            }
            1 => {
                let keep = rng.gen_range(0..orig.len());
                std::fs::write(target, &orig[..keep]).expect("writable");
            }
            2 => {
                let garbage: Vec<u8> = (0..rng.gen_range(1..128u8)).map(|_| rng.gen()).collect();
                std::fs::write(target, &garbage).expect("writable");
            }
            _ => std::fs::remove_file(target).expect("removable"),
        }
        report.mutations += 1;

        let sess = Session::new(opts.clone());
        let load = sess.load_report().clone();
        if load.rejected > 0 || load.version_skew {
            report.loads_degraded += 1;
        }
        let out = sess.translate(src).expect("translation survives corruption");
        if render(&out) != baseline {
            report.output_stable = false;
        }
        if sess.check_all_report(&out, 1).is_err() {
            report.verdicts_stable = false;
        }
        // Restore for the next round (the session's own save may already
        // have healed parts of the store; the explicit restore makes the
        // rounds independent).
        std::fs::write(target, &orig).expect("writable");
    }
    let _ = std::fs::remove_dir_all(&dir);
    report
}
