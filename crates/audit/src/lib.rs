//! Soundness audit subsystem (DESIGN.md §6c).
//!
//! The pipeline's trust story has two halves, and this crate attacks both:
//!
//! 1. **Fault injection** ([`mutate`]): forge lying derivations and
//!    corrupted cache state through audit-only backdoors
//!    (`kernel/forge`, `autocorres/audit` features) and assert the
//!    independent checker kills every mutant — 100%, reported as a kill
//!    matrix per mutation kind × pipeline phase.
//! 2. **Differential execution** ([`differential`]): run generated
//!    programs through all five executable layers (Simpl, L1, L2, HL, WA)
//!    on shared inputs and require agreement, covering the
//!    randomized-evidence steps (`ExecTested`, `WCustomSampled`) that
//!    fault injection deliberately leaves to execution.
//! 3. **Discharge differential** ([`discharge`]): every guard the
//!    abstract-interpretation phase proved statically is re-posed to the
//!    independent decision procedures — a disagreement means the interval
//!    engine (shared by analysis and kernel replay) is unsound.
//!
//! Driven by `cargo test -p audit` (small budgets) and the `audit` binary
//! (`scripts/tier1.sh --audit` for the full campaign).

pub mod differential;
pub mod discharge;
pub mod layers;
pub mod mutate;

pub use differential::{diff_output, run_campaign, DiffConfig, DiffStats};
pub use discharge::{
    check_discharges, run_discharge_campaign, DischargeConfig, DischargeStats,
};
pub use layers::{first_divergence, run_all, Divergence, LayerRun};
pub use mutate::{
    attack_artifact_store, attack_disk_store, attack_replay_cache, attack_theorems,
    CacheAttackReport, DiskAttackReport, KillMatrix, Mutation, StoreAttackReport, MUTATIONS,
};

/// Handcrafted audit source: signed arithmetic (SDiv/SNeg guards), struct
/// access, a loop, and a call — exercises rule families the generator's
/// unsigned-heavy mix hits less often.
pub const SIGNED_MIX_SRC: &str = "\
struct obj { struct obj *next; unsigned state; unsigned refcount; int prio; };\n\
int signed_mix(int a, int b) {\n\
    int acc = a;\n\
    if (b != 0) acc = acc / b;\n\
    acc = acc - b * 2;\n\
    if (acc < 0) acc = -acc;\n\
    return acc;\n\
}\n\
unsigned loopy(unsigned n, struct obj *p) {\n\
    unsigned i = 0u;\n\
    unsigned acc = 0u;\n\
    while (i < n % 9u) {\n\
        acc = acc + i;\n\
        i = i + 1u;\n\
        if (p != NULL) p->state = acc;\n\
    }\n\
    return acc;\n\
}\n\
unsigned call_chain(unsigned x) {\n\
    return loopy(x, NULL) + 1u;\n\
}\n";
