//! Tier-1 smoke of the audit harness: a small-budget mutation campaign must
//! kill every mutant, the cache/store attacks must stay sound, and the
//! differential oracle must decide pairs with zero layer disagreements.

use audit::{
    attack_artifact_store, attack_replay_cache, attack_theorems, run_campaign, DiffConfig,
    Mutation, SIGNED_MIX_SRC,
};
use autocorres::{translate, Options};
use codegen::{generate_mix, Mix, Profile};

#[test]
fn mutation_kill_rate_is_total_on_the_signed_mix() {
    let out = translate(SIGNED_MIX_SRC, &Options::default()).expect("translates");
    let matrix = attack_theorems(&out, 2);
    assert!(
        matrix.all_killed(),
        "survivors:\n{}",
        matrix.survivors.join("\n")
    );
    assert!(matrix.applied() > 0, "no mutants were applicable");
    // Every structural operator must actually fire somewhere: an operator
    // with zero applications would report a vacuous 100% kill rate.
    for kind in [
        Mutation::SwapRuleFamily,
        Mutation::PerturbJudgment,
        Mutation::DropPremise,
        Mutation::CorruptSymbol,
    ] {
        assert!(
            matrix.applied_for(kind) > 0,
            "operator {kind} never applied"
        );
    }
}

#[test]
fn mutation_kill_rate_is_total_on_custom_rule_evidence() {
    let opts = Options {
        custom_word_rules: vec![wordabs::overflow_idiom_rule()],
        ..Options::default()
    };
    let out = translate(casestudies::sources::OVERFLOW_IDIOM, &opts).expect("translates");
    let matrix = attack_theorems(&out, 2);
    assert!(
        matrix.all_killed(),
        "survivors:\n{}",
        matrix.survivors.join("\n")
    );
    // The overflow idiom carries sampled evidence; zeroing it must be
    // applicable and killed.
    assert!(matrix.applied_for(Mutation::ZeroTestEvidence) > 0);
}

#[test]
fn mutation_kill_rate_is_total_on_a_generated_program() {
    let profile = Profile {
        name: "audit-test",
        loc: 80,
        functions: 5,
    };
    let src = generate_mix(&profile, &Mix::audit(), 0xA0D1_7E57);
    let out = translate(&src, &Options::default()).expect("generated source translates");
    let matrix = attack_theorems(&out, 1);
    assert!(
        matrix.all_killed(),
        "survivors:\n{}",
        matrix.survivors.join("\n")
    );
}

#[test]
fn replay_cache_corruption_never_flips_a_verdict() {
    let report = attack_replay_cache(SIGNED_MIX_SRC, &Options::default(), 12, 0xFEED);
    assert!(report.digests_corrupted > 0, "attack never fired");
    assert!(report.valid_still_accepted, "bit-flip rejected a valid theorem");
    assert!(report.forged_rejected, "bit-flip admitted a forged theorem");
}

#[test]
fn poisoned_artifact_store_entries_are_rejected_on_warm_rerun() {
    let reports = attack_artifact_store(SIGNED_MIX_SRC, &Options::default());
    assert_eq!(reports.len(), 4, "expected one attack per phase store");
    for r in &reports {
        assert!(r.cache_hit, "[{}] rerun was not warm", r.phase);
        assert!(r.rejected, "[{}] poisoned artifact was accepted", r.phase);
    }
}

#[test]
fn differential_oracle_smoke_has_zero_disagreements() {
    let cfg = DiffConfig {
        programs: 2,
        trials: 3,
        ..DiffConfig::smoke()
    };
    let stats = run_campaign(&cfg);
    assert!(
        stats.disagreements.is_empty(),
        "disagreements:\n{}",
        stats.disagreements.join("\n")
    );
    assert!(stats.decided_pairs > 0, "oracle decided nothing");
}

#[test]
fn disk_store_corruption_never_changes_output_or_verdicts() {
    let report = audit::attack_disk_store(SIGNED_MIX_SRC, &Options::default(), 8, 0xD15C);
    assert_eq!(report.mutations, 8, "attack rounds did not all fire");
    assert!(report.loads_degraded > 0, "no corruption was ever visible");
    assert!(report.output_stable, "on-disk corruption changed output bytes");
    assert!(report.verdicts_stable, "on-disk corruption flipped a verdict");
}

proptest::proptest! {
    /// Randomized persistence fuzz: under any seed, bit-flipping,
    /// truncating, overwriting, or deleting on-disk store entries (meta
    /// and replay file included) must only ever cost recomputation —
    /// never different output bytes, never a flipped verdict.
    #[test]
    fn disk_store_fuzz_is_sound_under_any_seed(seed in 0u64..1u64 << 32) {
        let opts = Options {
            l2_trials: 2,
            workers: 1,
            ..Options::default()
        };
        let report = audit::attack_disk_store(SIGNED_MIX_SRC, &opts, 2, seed);
        proptest::prop_assert!(report.output_stable, "seed={seed}: output changed");
        proptest::prop_assert!(report.verdicts_stable, "seed={seed}: verdict flipped");
    }
}
