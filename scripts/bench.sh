#!/usr/bin/env bash
# Regenerates BENCH_table5.json reproducibly (fixed seed 0xAC inside the
# harness; timings are host-dependent, everything else is deterministic).
#
# The harness asserts the parallel overhead gate on every row: requesting
# workers 2/4/8 must cost at most 1.05x the sequential wall time plus a
# 30ms noise floor (the adaptive planner sizes the pool to the host, so
# oversubscription never becomes a pessimization; the floor absorbs
# timing jitter on millisecond-scale rows). A gate failure makes this
# script exit nonzero.
#
#   scripts/bench.sh           # all five rows + Criterion micro-benches,
#                              # rewrites BENCH_table5.json
#   scripts/bench.sh --quick   # Schorr-Waite + eChronos rows only,
#                              # writes BENCH_table5.quick.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    TABLE5_ROWS="schorr-waite,echronos" \
        cargo bench -q -p bench --bench table5_scalability
else
    cargo bench -q -p bench --bench table5_scalability
fi
