#!/usr/bin/env bash
# Regenerates BENCH_table5.json reproducibly (fixed seed 0xAC inside the
# harness; timings are host-dependent, everything else is deterministic).
#
#   scripts/bench.sh           # all five rows + Criterion micro-benches,
#                              # rewrites BENCH_table5.json
#   scripts/bench.sh --quick   # Schorr-Waite + eChronos rows only,
#                              # writes BENCH_table5.quick.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    TABLE5_ROWS="schorr-waite,echronos" \
        cargo bench -q -p bench --bench table5_scalability
else
    cargo bench -q -p bench --bench table5_scalability
fi
