#!/usr/bin/env bash
# Tier-1 gate: what every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh          # build + full test suite
#   scripts/tier1.sh --lint   # additionally clippy (-D warnings) the
#                             # crates this PR series touches
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

if [[ "${1:-}" == "--lint" ]]; then
    # Clippy on the crates touched by the parallel-pipeline work; extend
    # the list as later PRs touch more crates.
    cargo clippy -q --release \
        -p autocorres -p kernel -p monadic -p wordabs -p heapabs \
        -p codegen -p bench \
        --all-targets -- -D warnings
fi

echo "tier1: OK"
