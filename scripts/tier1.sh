#!/usr/bin/env bash
# Tier-1 gate: what every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh          # build + full test suite
#   scripts/tier1.sh --lint   # additionally clippy (-D warnings) the
#                             # crates this PR series touches
#   scripts/tier1.sh --quick  # additionally smoke the Table 5 bench on
#                             # the Schorr-Waite + eChronos rows
#                             # (regenerates dedup/replay-cache stats,
#                             # fails on any panic/assertion)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace

# Incremental smoke: the session store must re-run only the dirty cone and
# stay byte-identical to from-scratch translation (tests/incremental.rs
# asserts both; run it by name so a filtered workspace run can't skip it).
cargo test -q --test incremental

if [[ "${1:-}" == "--quick" ]]; then
    scripts/bench.sh --quick
fi

if [[ "${1:-}" == "--lint" ]]; then
    # Clippy on the crates touched by the parallel-pipeline work; extend
    # the list as later PRs touch more crates.
    cargo clippy -q --release \
        -p autocorres -p kernel -p monadic -p wordabs -p heapabs \
        -p codegen -p bench -p ir -p solver -p vcg -p simpl \
        -p autocorres-repro -p proptest \
        --all-targets -- -D warnings
fi

echo "tier1: OK"
