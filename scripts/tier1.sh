#!/usr/bin/env bash
# Tier-1 gate: what every PR must keep green (see ROADMAP.md).
#
#   scripts/tier1.sh          # build + full test suite + audit smoke
#   scripts/tier1.sh --lint   # additionally clippy (-D warnings) the
#                             # crates this PR series touches
#   scripts/tier1.sh --quick  # additionally smoke the Table 5 bench on
#                             # the Schorr-Waite + eChronos rows
#                             # (regenerates dedup/replay-cache stats,
#                             # fails on any panic/assertion)
#   scripts/tier1.sh --audit  # run the full soundness audit instead of
#                             # the smoke: ≥200-program differential
#                             # campaign + large mutation budget
#                             # (prints the kill matrix; ~30s) + the
#                             # 100-program discharge-vs-solver
#                             # differential (ISSUE 8)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace

# Incremental smoke: the session store must re-run only the dirty cone and
# stay byte-identical to from-scratch translation (tests/incremental.rs
# asserts both; run it by name so a filtered workspace run can't skip it).
cargo test -q --test incremental

# Counterexample playback smoke: every checked-in counterexample seed must
# still reproduce its recorded verdict through the release binary (the
# same `--playback` path users run; tests/pipeline_fuzz.rs covers the
# debug build).
for seed in tests/corpus/cex-*.seed; do
    ./target/release/autocorres --quiet --playback "$seed" > /dev/null
done

# Scheduler smoke: the quickstart source must print byte-identical WA
# specs at every worker count — including counts that oversubscribe this
# host (the adaptive planner sizes the pool down; the work-stealing
# scheduler must never let scheduling leak into the output bytes).
tmp_c=$(mktemp --suffix=.c)
tmp_out=$(mktemp)
trap 'rm -f "$tmp_c" "$tmp_out"' EXIT
printf 'int max(int a, int b) {\n    if (a < b) {\n        return b;\n    }\n    return a;\n}\n' > "$tmp_c"
golden=$(mktemp)
trap 'rm -f "$tmp_c" "$tmp_out" "$golden"' EXIT
# The CLI prints each function with a trailing blank line; the golden
# snapshot stores the bare pretty-printing.
{ cat tests/golden/quickstart_wa.txt; echo; } > "$golden"
for w in 1 2 4 8; do
    ./target/release/autocorres --quiet --level wa --fn max --workers "$w" "$tmp_c" > "$tmp_out"
    diff -u "$golden" "$tmp_out" \
        || { echo "tier1: scheduler smoke diverged at --workers $w" >&2; exit 1; }
done

# Lint smoke: the release CLI's --lint output on the checked-in demo
# program must match the golden warning set (all four lint kinds, with the
# validated counterexample attached to the definite overflow), and
# --lint=deny must exit nonzero on it.
./target/release/autocorres --quiet --lint tests/golden/lint_demo.c \
    | grep -E '^(warning|    counterexample)' > "$tmp_out"
diff -u tests/golden/lint_demo.txt "$tmp_out" \
    || { echo "tier1: lint smoke diverged from tests/golden/lint_demo.txt" >&2; exit 1; }
if ./target/release/autocorres --quiet --lint=deny tests/golden/lint_demo.c > /dev/null 2>&1; then
    echo "tier1: --lint=deny did not fail on the lint demo" >&2; exit 1
fi

# Warm-start smoke (DESIGN.md §6g): translate the quickstart with a cache
# directory, then re-run from a *fresh process* reusing the directory —
# the warm output must be byte-identical and recompute nothing.
cache_dir=$(mktemp -d)
trap 'rm -f "$tmp_c" "$tmp_out" "$golden"; rm -rf "$cache_dir"' EXIT
./target/release/autocorres --quiet --level wa --fn max --cache-dir "$cache_dir" "$tmp_c" > "$tmp_out"
diff -u "$golden" "$tmp_out" \
    || { echo "tier1: cold cache-dir run diverged" >&2; exit 1; }
./target/release/autocorres --quiet --level wa --fn max --cache-dir "$cache_dir" "$tmp_c" > "$tmp_out"
diff -u "$golden" "$tmp_out" \
    || { echo "tier1: warm-start run diverged" >&2; exit 1; }
./target/release/autocorres --quiet --metrics --cache-dir "$cache_dir" "$tmp_c" \
    | grep -q 'misses=0 rejected=0 dirty_fns=0' \
    || { echo "tier1: warm start recomputed work" >&2; exit 1; }

# Certificate smoke: the exported proof certificate must replay through
# the independent certcheck binary, match the golden cert-v1 snapshot,
# and any mutation must be rejected.
cert="$cache_dir/quickstart.cert"
./target/release/autocorres --quiet --emit-cert "$cert" "$tmp_c" > /dev/null
cmp tests/golden/quickstart.cert "$cert" \
    || { echo "tier1: certificate drifted from tests/golden/quickstart.cert" >&2; exit 1; }
./target/release/certcheck --quiet "$cert" \
    || { echo "tier1: certcheck rejected a valid certificate" >&2; exit 1; }
head -c -1 "$cert" > "$cert.bad"; printf '\xff' >> "$cert.bad"
if ./target/release/certcheck --quiet "$cert.bad" 2> /dev/null; then
    echo "tier1: certcheck accepted a mutated certificate" >&2; exit 1
fi

# Corpus smoke: the checked-in real-world-shaped corpus (arrays, switch
# with fallthrough, compound assignment, qualifiers) must sweep end to
# end — every file translated, every theorem replayed, zero failures.
./target/release/autocorres --corpus tests/corpus/c > "$tmp_out" \
    || { echo "tier1: corpus sweep failed" >&2; cat "$tmp_out" >&2; exit 1; }
grep -q ' 0 failed' "$tmp_out" \
    || { echo "tier1: corpus sweep reported failures" >&2; cat "$tmp_out" >&2; exit 1; }

# Soundness audit (crates/audit): fault-injection against the kernel
# checker plus the cross-layer differential oracle. The smoke runs by
# default (small mutation budget, a few fuzz seeds, two worker counts);
# `--audit` runs the full acceptance campaign from ISSUE 5 / DESIGN.md §6c.
if [[ "${1:-}" == "--audit" ]]; then
    cargo run --release -q -p audit -- --full
else
    cargo run --release -q -p audit
fi

if [[ "${1:-}" == "--quick" ]]; then
    scripts/bench.sh --quick
fi

if [[ "${1:-}" == "--lint" ]]; then
    # Clippy on the crates touched by the parallel-pipeline work; extend
    # the list as later PRs touch more crates.
    cargo clippy -q --release \
        -p autocorres -p kernel -p monadic -p wordabs -p heapabs \
        -p codegen -p bench -p ir -p solver -p vcg -p simpl \
        -p autocorres-repro -p proptest -p audit -p cparser \
        -p absint -p counterexample \
        --all-targets -- -D warnings
fi

echo "tier1: OK"
