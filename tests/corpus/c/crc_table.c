/* Nibble-wide table-driven CRC, the classic table-initialise-then-fold
 * idiom.  Exercises array writes in loops, shifts, and compound
 * assignment on both locals and array elements. */

unsigned crc_tab[16];

void crc_init(void) {
    const unsigned poly = 60501u; /* 0xEDB5, truncated CRC-16 polynomial */
    unsigned n = 0u;
    while (n < 16u) {
        unsigned r = n << 12;
        unsigned k = 0u;
        while (k < 4u) {
            if ((r & 32768u) != 0u) {
                r = ((r << 1) & 65535u) ^ poly;
            } else {
                r = (r << 1) & 65535u;
            }
            k += 1u;
        }
        crc_tab[n] = r;
        n += 1u;
    }
}

unsigned crc_nibble(unsigned crc, unsigned nib) {
    unsigned idx = ((crc >> 12) ^ nib) & 15u;
    return ((crc << 4) & 65535u) ^ crc_tab[idx];
}

unsigned crc_byte(unsigned crc, unsigned byte) {
    crc = crc_nibble(crc, (byte >> 4) & 15u);
    crc = crc_nibble(crc, byte & 15u);
    return crc;
}

unsigned crc_tab_sum(void) {
    unsigned acc = 0u;
    unsigned i = 0u;
    while (i < 16u) {
        acc ^= crc_tab[i];
        i += 1u;
    }
    return acc;
}

void crc_tab_scale(unsigned m) {
    unsigned i = 0u;
    while (i < 16u) {
        crc_tab[i] &= 65535u;
        crc_tab[i] ^= m;
        i += 1u;
    }
}
