/* A protocol state machine in the switch-per-state style of parsers and
 * drivers.  Exercises switch with fallthrough and default, nested
 * switch-in-loop, and increment operators. */

int sm_state;
unsigned sm_errors;

void sm_reset(void) {
    sm_state = 0;
    sm_errors = 0u;
}

int sm_is_terminal(int s) {
    switch (s) {
        case 3:
        case 4:
            return 1;
        default:
            return 0;
    }
}

int sm_step(int ev) {
    switch (sm_state) {
        case 0:
            if (ev == 1) {
                sm_state = 1;
            }
            break;
        case 1:
            switch (ev) {
                case 1:
                    sm_state = 2;
                    break;
                case 2: /* fallthrough: both events abort */
                case 3:
                    sm_state = 4;
                    break;
                default:
                    sm_errors += 1u;
                    break;
            }
            break;
        case 2:
            if (ev == 0) {
                sm_state = 3;
            } else {
                sm_state = 4;
            }
            break;
        default:
            break;
    }
    return sm_state;
}

unsigned sm_class(int s) {
    unsigned tag = 0u;
    switch (s) {
        case 0:
            tag = 1u;
            break;
        case 1: /* fallthrough chain: running states share a tag */
        case 2:
            tag = 2u;
            break;
        case 3:
            tag = 3u;
            break;
        default:
            tag = 4u;
            break;
    }
    return tag;
}

unsigned sm_run(int a, int b, int c) {
    int evs[3];
    unsigned i = 0u;
    unsigned terminal = 0u;
    evs[0] = a;
    evs[1] = b;
    evs[2] = c;
    sm_reset();
    while (i < 3u) {
        sm_step(evs[i]);
        if (sm_is_terminal(sm_state) != 0) {
            terminal += 1u;
        }
        i++;
    }
    return terminal;
}

int sm_error_count(void) {
    return (int) sm_errors;
}
