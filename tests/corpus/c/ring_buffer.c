/* Fixed-capacity ring buffer over a global array, the shape found in
 * driver and protocol code.  Exercises arrays, compound assignment and
 * masked index arithmetic. */

int rb_data[8];
unsigned rb_head;
unsigned rb_tail;

void rb_reset(void) {
    unsigned i = 0u;
    while (i < 8u) {
        rb_data[i] = 0;
        i += 1u;
    }
    rb_head = 0u;
    rb_tail = 0u;
}

unsigned rb_size(void) {
    return (rb_tail - rb_head) & 15u;
}

unsigned rb_is_empty(void) {
    if (rb_head == rb_tail) {
        return 1u;
    }
    return 0u;
}

unsigned rb_is_full(void) {
    if (rb_size() >= 8u) {
        return 1u;
    }
    return 0u;
}

unsigned rb_put(int v) {
    if (rb_is_full() != 0u) {
        return 0u;
    }
    rb_data[rb_tail & 7u] = v;
    rb_tail = (rb_tail + 1u) & 15u;
    return 1u;
}

int rb_get(void) {
    int v;
    if (rb_is_empty() != 0u) {
        return 0;
    }
    v = rb_data[rb_head & 7u];
    rb_head = (rb_head + 1u) & 15u;
    return v;
}
