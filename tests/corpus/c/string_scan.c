/* NUL-terminated scanning over a fixed global byte buffer — the pattern
 * of embedded string handling without pointer arithmetic.  Exercises
 * char arrays, qualifiers and early exit from scan loops. */

char sbuf[16];

void sbuf_clear(void) {
    unsigned i = 0u;
    while (i < 16u) {
        sbuf[i] = 0;
        i += 1u;
    }
}

unsigned sbuf_len(void) {
    unsigned i = 0u;
    while (i < 16u) {
        if (sbuf[i] == 0) {
            return i;
        }
        i += 1u;
    }
    return 16u;
}

unsigned sbuf_count(int c) {
    const unsigned cap = 16u;
    unsigned n = 0u;
    unsigned i = 0u;
    while (i < cap) {
        if (sbuf[i] == 0) {
            return n;
        }
        if (sbuf[i] == c) {
            n += 1u;
        }
        i += 1u;
    }
    return n;
}

int sbuf_find(int c) {
    unsigned i = 0u;
    while (i < 16u) {
        if (sbuf[i] == c) {
            return (int) i;
        }
        if (sbuf[i] == 0) {
            return -1;
        }
        i += 1u;
    }
    return -1;
}

unsigned sbuf_digits(void) {
    volatile unsigned probe = 0u;
    unsigned n = 0u;
    unsigned i = 0u;
    while (i < 16u) {
        if (sbuf[i] == 0) {
            return n + probe;
        }
        if (sbuf[i] >= 48) {
            if (sbuf[i] <= 57) {
                n += 1u;
            }
        }
        i += 1u;
    }
    return n + probe;
}
