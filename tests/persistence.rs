//! Cross-process persistence: a *fresh process* pointed at an earlier
//! run's `--cache-dir` must warm-start — zero dirty functions, all store
//! hits — and print byte-identical output at any worker count
//! (DESIGN.md §6g). Each test drives the real release of trust: separate
//! `autocorres` processes that share nothing but the directory.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocorres"))
}

fn certcheck() -> Command {
    Command::new(env!("CARGO_BIN_EXE_certcheck"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acr-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A multi-function source with calls, loops, guards, and both heap and
/// word abstraction in play — large enough that every phase stores
/// several artifacts, small enough for a debug-build test. Generated
/// deterministically by the same generator the scalability benches use.
fn gen_source(dir: &Path) -> PathBuf {
    let profile = codegen::Profile {
        name: "persistence-test",
        loc: 900,
        functions: 18,
    };
    let src = codegen::generate(&profile, 0xAC);
    let path = dir.join("gen.c");
    std::fs::write(&path, src).unwrap();
    path
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The `store: hits=.. misses=.. rejected=.. dirty_fns=..` metrics line.
fn store_line(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .find(|l| l.starts_with("store:"))
        .expect("--metrics with --cache-dir prints a store line")
        .to_owned()
}

#[test]
fn fresh_process_warm_start_is_byte_identical_across_worker_counts() {
    let dir = tmpdir("warm");
    let src = gen_source(&dir);
    let cache = dir.join("cache");
    let spec = |workers: &str| {
        let mut c = bin();
        c.arg(&src)
            .args(["--quiet", "--level", "wa", "--trials", "2", "--workers", workers])
            .arg("--cache-dir")
            .arg(&cache);
        c
    };

    // Process 1: cold, populates the store.
    let cold = run_ok(&mut spec("1"));

    // Fresh processes over the same directory: every worker count must
    // reproduce the cold run's bytes exactly, from the store alone.
    for workers in ["1", "4"] {
        let warm = run_ok(&mut spec(workers));
        assert_eq!(
            cold.stdout, warm.stdout,
            "warm output diverged at --workers {workers}"
        );

        let mut metrics = bin();
        metrics
            .arg(&src)
            .args(["--quiet", "--metrics", "--trials", "2", "--workers", workers])
            .arg("--cache-dir")
            .arg(&cache);
        let line = store_line(&run_ok(&mut metrics).stdout);
        assert!(line.contains("misses=0"), "not all store hits: {line}");
        assert!(line.contains("rejected=0"), "rejections on clean dir: {line}");
        assert!(line.ends_with("dirty_fns=0"), "recomputation happened: {line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_recomputes_with_identical_bytes() {
    let dir = tmpdir("corrupt");
    let src = gen_source(&dir);
    let cache = dir.join("cache");
    let run = |cache: &Path| {
        let mut c = bin();
        c.arg(&src)
            .args(["--quiet", "--level", "wa", "--trials", "2"])
            .arg("--cache-dir")
            .arg(cache);
        run_ok(&mut c)
    };
    let clean = run(&cache);

    // Truncate one artifact, bit-flip another, empty a third, and delete
    // a fourth: the warm start degrades for those functions only, and
    // the output bytes cannot change.
    let mut entries: Vec<PathBuf> = std::fs::read_dir(cache.join("artifacts"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert!(entries.len() >= 4, "expected a populated store");
    let bytes = std::fs::read(&entries[0]).unwrap();
    std::fs::write(&entries[0], &bytes[..bytes.len() / 2]).unwrap();
    let mut bytes = std::fs::read(&entries[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&entries[1], &bytes).unwrap();
    std::fs::write(&entries[2], b"").unwrap();
    std::fs::remove_file(&entries[3]).unwrap();

    let damaged = run(&cache);
    assert_eq!(clean.stdout, damaged.stdout, "corruption changed output bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skewed_meta_degrades_to_cold_start() {
    let dir = tmpdir("skew");
    let src = gen_source(&dir);
    let cache = dir.join("cache");
    let run = |extra: &[&str]| {
        let mut c = bin();
        c.arg(&src)
            .args(["--level", "wa", "--trials", "2"])
            .args(extra)
            .arg("--cache-dir")
            .arg(&cache);
        c.output().unwrap()
    };
    let clean = run(&["--quiet"]);
    assert!(clean.status.success());

    // Rewrite the meta header as a future format version would.
    let meta = cache.join("meta");
    let mut m = std::fs::read(&meta).unwrap();
    m[7] = b'9';
    std::fs::write(&meta, &m).unwrap();

    let skew = run(&[]);
    assert!(skew.status.success(), "skew must never be fatal");
    assert_eq!(clean.stdout, skew.stdout, "skew changed output bytes");
    let stderr = String::from_utf8_lossy(&skew.stderr);
    assert!(
        stderr.contains("mismatch") && stderr.contains("cold"),
        "skew warning missing: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_cache_directory_never_panics_or_fails() {
    let dir = tmpdir("garbage");
    let src = gen_source(&dir);
    let cache = dir.join("cache");
    std::fs::create_dir_all(cache.join("artifacts")).unwrap();
    std::fs::write(cache.join("meta"), b"").unwrap();
    std::fs::write(cache.join("replay.bin"), b"\x00\x01\x02").unwrap();
    std::fs::write(cache.join("artifacts/notes.txt"), b"hello").unwrap();
    std::fs::write(cache.join("artifacts/empty.bin"), b"").unwrap();
    let mut c = bin();
    c.arg(&src)
        .args(["--quiet", "--level", "wa", "--trials", "2"])
        .arg("--cache-dir")
        .arg(&cache);
    run_ok(&mut c);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn certificates_replay_and_reject_mutations() {
    let dir = tmpdir("cert");
    // The quickstart program plus the real corpus files: every exported
    // certificate must replay via the independent checker, and any
    // single-byte mutation must be rejected.
    let quickstart = dir.join("quickstart.c");
    std::fs::write(
        &quickstart,
        "int max(int a, int b) {\n    if (a < b) {\n        return b;\n    }\n    return a;\n}\n",
    )
    .unwrap();
    let corpus = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/c");
    let mut sources = vec![quickstart];
    for f in ["crc_table.c", "ring_buffer.c", "string_scan.c"] {
        sources.push(corpus.join(f));
    }
    for (i, src) in sources.iter().enumerate() {
        let cert = dir.join(format!("{i}.cert"));
        let mut c = bin();
        c.arg(src)
            .args(["--quiet", "--level", "wa", "--trials", "2"])
            .arg("--emit-cert")
            .arg(&cert);
        run_ok(&mut c);

        let ok = certcheck().arg("--quiet").arg(&cert).output().unwrap();
        assert!(
            ok.status.success(),
            "{}: {}",
            src.display(),
            String::from_utf8_lossy(&ok.stderr)
        );

        // Mutate a handful of spread-out byte positions (an exhaustive
        // every-byte sweep lives in the kernel's own cert tests).
        let bytes = std::fs::read(&cert).unwrap();
        for pos in [0, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            let bad_path = dir.join("bad.cert");
            std::fs::write(&bad_path, &bad).unwrap();
            let rej = certcheck().arg("--quiet").arg(&bad_path).output().unwrap();
            assert!(
                !rej.status.success(),
                "{}: mutation at byte {pos} was accepted",
                src.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quickstart_certificate_matches_golden_snapshot() {
    let dir = tmpdir("golden");
    let src = dir.join("quickstart.c");
    std::fs::write(
        &src,
        "int max(int a, int b) {\n    if (a < b) {\n        return b;\n    }\n    return a;\n}\n",
    )
    .unwrap();
    let cert = dir.join("quickstart.cert");
    let mut c = bin();
    c.arg(&src).args(["--quiet"]).arg("--emit-cert").arg(&cert);
    run_ok(&mut c);
    let got = std::fs::read(&cert).unwrap();

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/quickstart.cert");
    let golden = std::fs::read(&golden_path).unwrap_or_default();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    assert_eq!(
        got,
        golden,
        "cert-v1 bytes for the quickstart drifted; inspect with certcheck, then \
         re-bless with UPDATE_GOLDEN=1"
    );
    // And the checked-in snapshot must itself replay.
    let ok = certcheck().arg("--quiet").arg(&golden_path).output().unwrap();
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}
