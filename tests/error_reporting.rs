//! Unsupported constructs produce clean, phase-tagged errors — the user
//! experience the paper's "supported subset" list implies.

use autocorres::{translate, Options};
use ir::diag::Phase;

fn expect_frontend_error(src: &str, needle: &str) {
    match translate(src, &Options::default()) {
        Err(d) if d.phase == Phase::Frontend => {
            assert!(
                d.message.contains(needle),
                "expected `{needle}` in: {}",
                d.message
            );
        }
        other => panic!("expected a frontend error for {src:?}, got {other:?}"),
    }
}

#[test]
fn unsupported_c_features_are_reported() {
    expect_frontend_error("void f(void) { goto x; }", "goto");
    expect_frontend_error("union u { int a; float b; };", "union");
    expect_frontend_error("float area(float r) { return r; }", "float");
    expect_frontend_error("void f(int x) { int *p = &x; }", "address-of");
    expect_frontend_error("int f(void) { return g(); }", "undeclared");
    expect_frontend_error("void f(int (*fp)(int)) { }", "");
    // Features inside the subset still reject their unsupported corners.
    expect_frontend_error("void f(int x) { switch (x) { } }", "case");
    expect_frontend_error(
        "void f(void) { int a[4][4]; }",
        "multi-dimensional",
    );
    expect_frontend_error("void f(void) { const int *p; }", "qualified pointer");
    expect_frontend_error(
        "void f(void) { const int c = 1; c = 2; }",
        "const",
    );
}

#[test]
fn translation_limits_are_reported() {
    // Calls in loop conditions cannot be encoded by the literal translation.
    match translate(
        "unsigned id(unsigned x) { return x; }\n\
         void f(unsigned n) { while (id(n) > 0u) { n = n - 1u; } }",
        &Options::default(),
    ) {
        Err(d) if d.phase == Phase::Simpl => {
            assert!(d.message.contains("loop conditions"), "{}", d.message);
        }
        other => panic!("expected a Simpl-phase error, got {other:?}"),
    }
}

#[test]
fn byte_level_code_must_be_declared_concrete() {
    // Default options heap-abstract everything, which is fine for typed u8
    // access, so the memset source itself translates; but explicitly
    // forcing an unabstractable construct (a retype-style cast write mix)
    // through HL is caught. Here: the supported path — the error surfaces
    // only through behaviour (see casestudies::memset) — so we assert the
    // positive: concrete_fns flows through.
    let out = translate(
        casestudies::sources::MEMSET,
        &Options {
            concrete_fns: ["memset_b".to_owned()].into(),
            ..Options::default()
        },
    )
    .unwrap();
    assert!(out
        .wa
        .function("zero_word")
        .unwrap()
        .to_string()
        .contains("exec_concrete"));
}

#[test]
fn missing_loop_annotation_is_a_clean_vcg_error() {
    let out = translate(
        "unsigned f(unsigned n) { while (n > 0u) { n = n - 1u; } return n; }",
        &Options::default(),
    )
    .unwrap();
    let body = out.wa.function("f").unwrap().body.clone();
    let spec = vcg::Spec {
        pre: ir::Expr::tt(),
        post: ir::Expr::tt(),
    };
    let err = vcg::vcg(&body, &spec, &[], vcg::HeapModel::SplitHeaps, &out.wa.tenv)
        .unwrap_err();
    assert!(err.to_string().contains("annotation"), "{err}");
}
