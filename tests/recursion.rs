//! Recursive and mutually recursive functions through the complete
//! pipeline — the paper's translation is per-function and handles
//! (mutual) recursion via the call rules, so ours must too.

use autocorres::{translate, Options};
use ir::state::State;
use ir::value::Value;
use monadic::MonadResult;

const SRC: &str = "unsigned fact(unsigned n) {\n\
     if (n == 0u) return 1u;\n\
     return n * fact(n - 1u);\n\
   }\n\
   unsigned fib(unsigned n) {\n\
     if (n < 2u) return n;\n\
     return fib(n - 1u) + fib(n - 2u);\n\
   }\n\
   unsigned is_odd(unsigned n);\n\
   unsigned is_even(unsigned n) { if (n == 0u) return 1u; return is_odd(n - 1u); }\n\
   unsigned is_odd(unsigned n) { if (n == 0u) return 0u; return is_even(n - 1u); }";

fn run_nat(out: &autocorres::Output, f: &str, n: u64) -> bignum::Nat {
    let (r, _) = monadic::exec_fn(
        &out.wa,
        f,
        &[Value::nat(n)],
        State::conc_empty(),
        10_000_000,
    )
    .unwrap();
    let MonadResult::Normal(Value::Nat(v)) = r else {
        panic!("{f}({n}) did not return a Nat: {r:?}");
    };
    v
}

fn nat(v: u64) -> bignum::Nat {
    bignum::Nat::from(v)
}

#[test]
fn recursive_functions_translate_and_check() {
    let out = translate(SRC, &Options::default()).unwrap();
    out.check_all().unwrap();
    // The final output recurses on the *abstract* function with ideal
    // arithmetic and an overflow guard at the multiply.
    let fact = out.wa.function("fact").unwrap().to_string();
    assert!(fact.contains("fact' (n - 1)"), "{fact}");
    assert!(fact.contains("n * tmp"), "{fact}");
    assert!(fact.contains("≤ 4294967295"), "{fact}");
}

#[test]
fn recursive_results_match_ideal_arithmetic() {
    let out = translate(SRC, &Options::default()).unwrap();
    assert_eq!(run_nat(&out, "fact", 0), nat(1));
    assert_eq!(run_nat(&out, "fact", 5), nat(120));
    assert_eq!(run_nat(&out, "fact", 12), nat(479_001_600));
    let fib = [0u64, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
    for (n, expect) in fib.iter().enumerate() {
        assert_eq!(run_nat(&out, "fib", n as u64), nat(*expect), "fib({n})");
    }
}

#[test]
fn mutual_recursion_translates_and_runs() {
    let out = translate(SRC, &Options::default()).unwrap();
    for n in 0..12u64 {
        assert_eq!(run_nat(&out, "is_even", n), nat(u64::from(n % 2 == 0)), "is_even({n})");
        assert_eq!(run_nat(&out, "is_odd", n), nat(u64::from(n % 2 == 1)), "is_odd({n})");
    }
    // Tail-position mutual calls stay direct calls (no tuple plumbing).
    let even = out.wa.function("is_even").unwrap().to_string();
    assert!(even.contains("is_odd' (n - 1)"), "{even}");
}

#[test]
fn overflowing_recursion_fails_its_guard() {
    // fact(13) overflows u32: the abstract program's multiply guard fails,
    // exactly matching the concrete function's wrapped (wrong) result
    // being unprovable.
    let out = translate(SRC, &Options::default()).unwrap();
    let r = monadic::exec_fn(
        &out.wa,
        "fact",
        &[Value::nat(13u64)],
        State::conc_empty(),
        10_000_000,
    );
    assert!(
        matches!(r, Err(monadic::MonadFault::Failure(_))),
        "fact(13) must fail its overflow guard: {r:?}"
    );
}
