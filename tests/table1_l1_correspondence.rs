//! Table 1: each Simpl construct corresponds to its monadic function — as
//! derived by the kernel's L1 rules and validated against both interpreters
//! on random states.

use ir::expr::{BinOp, Expr};
use ir::state::State;
use ir::update::Update;
use ir::value::Value;
use kernel::rules::refine;
use kernel::{CheckCtx, Judgment};
use monadic::{Prog, ProgramCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simpl::stmt::SimplStmt;

fn l1_thm(cx: &CheckCtx, s: &SimplStmt) -> kernel::Thm {
    let subs = match s {
        SimplStmt::Seq(a, b) | SimplStmt::TryCatch(a, b) => {
            vec![l1_thm(cx, a), l1_thm(cx, b)]
        }
        SimplStmt::Cond(_, a, b) => vec![l1_thm(cx, a), l1_thm(cx, b)],
        SimplStmt::While(_, b) | SimplStmt::Guard(_, _, b) => vec![l1_thm(cx, b)],
        _ => vec![],
    };
    refine::l1(cx, s, subs).unwrap()
}

fn l1_of(cx: &CheckCtx, s: &SimplStmt) -> Prog {
    let thm = l1_thm(cx, s);
    let Judgment::L1 { prog, .. } = thm.judgment() else {
        unreachable!()
    };
    prog.clone()
}

#[test]
fn table1_shapes() {
    let cx = CheckCtx::default();
    assert_eq!(l1_of(&cx, &SimplStmt::Skip), Prog::skip());
    assert_eq!(l1_of(&cx, &SimplStmt::Throw), Prog::Throw(Expr::unit()));
    let upd = Update::Local("x".into(), Expr::u32(1));
    assert_eq!(
        l1_of(&cx, &SimplStmt::Basic(upd.clone())),
        Prog::Modify(upd)
    );
    let guard = SimplStmt::Guard(
        ir::GuardKind::DivByZero,
        Expr::var("g"),
        Box::new(SimplStmt::Skip),
    );
    // Guard t g B ≡ guard g; B  (the condition/skip/fail composite of
    // Table 1's last row).
    let p = l1_of(&cx, &guard);
    assert!(matches!(p, Prog::Bind(l, _, _) if matches!(*l, Prog::Guard(..))));
}

#[test]
fn constructs_agree_with_both_interpreters() {
    // Random straight-line statements over two locals: exec through the
    // Simpl interpreter and the monadic interpreter; outcomes and states
    // must agree (the executable content of l1corres).
    let cx = CheckCtx::default();
    let mut rng = StdRng::seed_from_u64(5);
    let sprog = simpl::SimplProgram::default();
    let mctx = ProgramCtx::default();
    for i in 0..200 {
        let stmt = random_stmt(&mut rng, 3);
        let prog = l1_of(&cx, &stmt);
        let mut st = State::conc_empty();
        st.set_local("x", Value::u32(rng.gen_range(0..100)));
        st.set_local("y", Value::u32(rng.gen_range(0..100)));

        let mut s_state = st.clone();
        let mut fuel = 10_000;
        let s_out = simpl::exec_stmt(&sprog, &stmt, &mut s_state, &mut fuel);
        let env = ir::eval::Env::new();
        let m_out = monadic::exec(&mctx, &prog, &env, st, 10_000);
        match (s_out, m_out) {
            (Ok(simpl::Outcome::Normal), Ok((monadic::MonadResult::Normal(_), m_state))) => {
                assert_eq!(s_state, m_state, "iteration {i}");
            }
            (Ok(simpl::Outcome::Abrupt), Ok((monadic::MonadResult::Except(_), m_state))) => {
                assert_eq!(s_state, m_state, "iteration {i}");
            }
            (Err(simpl::Fault::GuardFailure(_)), Err(monadic::MonadFault::Failure(_))) => {}
            (s, m) => panic!("iteration {i}: outcomes diverge: {s:?} vs {m:?}"),
        }
    }
}

fn random_stmt(rng: &mut StdRng, depth: u32) -> SimplStmt {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        match rng.gen_range(0..4) {
            0 => SimplStmt::Skip,
            1 => SimplStmt::Basic(Update::Local(
                if rng.gen() { "x" } else { "y" }.into(),
                Expr::binop(
                    BinOp::Add,
                    Expr::Local("x".into()),
                    Expr::u32(rng.gen_range(0..5)),
                ),
            )),
            2 => SimplStmt::Throw,
            _ => SimplStmt::Guard(
                ir::GuardKind::DivByZero,
                Expr::binop(
                    BinOp::Lt,
                    Expr::Local("y".into()),
                    Expr::u32(rng.gen_range(1..200)),
                ),
                Box::new(SimplStmt::Skip),
            ),
        }
    } else {
        match rng.gen_range(0..3) {
            0 => SimplStmt::Seq(
                Box::new(random_stmt(rng, depth - 1)),
                Box::new(random_stmt(rng, depth - 1)),
            ),
            1 => SimplStmt::Cond(
                Expr::binop(
                    BinOp::Lt,
                    Expr::Local("x".into()),
                    Expr::u32(rng.gen_range(0..100)),
                ),
                Box::new(random_stmt(rng, depth - 1)),
                Box::new(random_stmt(rng, depth - 1)),
            ),
            _ => SimplStmt::TryCatch(
                Box::new(random_stmt(rng, depth - 1)),
                Box::new(random_stmt(rng, depth - 1)),
            ),
        }
    }
}
