//! Sec 3.3: "AutoCorres's abstraction of the standard C implementation of
//! Euclid's greatest-common-denominator algorithm is equal to
//! `return (gcd a b)`" — we check semantic equality with the ideal gcd on
//! naturals, plus the recursive call structure.

use autocorres::{translate, Options};
use casestudies::sources::GCD;
use ir::state::State;
use ir::value::Value;
use monadic::MonadResult;

#[test]
fn gcd_abstracts_to_ideal_gcd() {
    let out = translate(GCD, &Options::default()).unwrap();
    out.check_all().unwrap();
    let f = out.wa.function("gcd").unwrap();
    assert_eq!(f.ret_ty, ir::ty::Ty::Nat);
    // The recursive structure survives, over ideal naturals.
    let s = f.body.to_string();
    assert!(s.contains("gcd'"), "{s}");
    assert!(s.contains("a mod b"), "{s}");

    for (a, b) in [(0u64, 0u64), (12, 18), (17, 5), (100, 75), (1, 999)] {
        let (r, _) = monadic::exec_fn(
            &out.wa,
            "gcd",
            &[Value::nat(a), Value::nat(b)],
            State::conc_empty(),
            1_000_000,
        )
        .unwrap();
        let ideal = bignum::Nat::from(a).gcd(&bignum::Nat::from(b));
        assert_eq!(r, MonadResult::Normal(Value::Nat(ideal)), "gcd({a},{b})");
    }
}

#[test]
fn gcd_agrees_with_the_simpl_level_on_words() {
    use rand::{Rng, SeedableRng};
    let out = translate(GCD, &Options::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    for _ in 0..100 {
        let a: u32 = rng.gen_range(0..10_000);
        let b: u32 = rng.gen_range(0..10_000);
        let (sv, _) = simpl::exec_fn(
            &out.simpl,
            "gcd",
            &[Value::u32(a), Value::u32(b)],
            out.simpl.initial_state(),
            1_000_000,
        )
        .unwrap();
        let (wv, _) = monadic::exec_fn(
            &out.wa,
            "gcd",
            &[Value::nat(u64::from(a)), Value::nat(u64::from(b))],
            State::conc_empty(),
            1_000_000,
        )
        .unwrap();
        let Value::Word(w) = sv else { panic!() };
        assert_eq!(wv, MonadResult::Normal(Value::Nat(w.unat())));
    }
}
