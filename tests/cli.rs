//! End-to-end tests of the `autocorres` command-line front end.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocorres"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

#[test]
fn translates_and_checks_a_file() {
    let path = write_temp(
        "cli_max.c",
        "unsigned maximum(unsigned a, unsigned b) { if (a <= b) return b; return a; }",
    );
    let out = bin().arg(&path).arg("--check").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("return (if a ≤ b then b else a)"),
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checker: OK"), "{stderr}");
}

#[test]
fn level_and_fn_filters() {
    let path = write_temp(
        "cli_two.c",
        "unsigned one(void) { return 1u; }\nunsigned two(void) { return 2u; }",
    );
    let out = bin()
        .arg(&path)
        .args(["--level", "l2", "--fn", "two", "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("two'"), "{stdout}");
    assert!(!stdout.contains("one'"), "{stdout}");
}

#[test]
fn metrics_mode_prints_both_rows() {
    let path = write_temp(
        "cli_m.c",
        "unsigned f(unsigned x) { return x + 1u; }",
    );
    let out = bin().arg(&path).args(["--metrics", "--quiet"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parser output"), "{stdout}");
    assert!(stdout.contains("autocorres output"), "{stdout}");
}

#[test]
fn frontend_errors_are_reported_cleanly() {
    let path = write_temp("cli_bad.c", "void f(void) { goto x; }");
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("goto"), "{stderr}");
}

#[test]
fn bad_flags_fail_with_usage() {
    for args in [vec!["--level", "bogus", "x.c"], vec!["--frobnicate"], vec![]] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn missing_function_filter_is_an_error() {
    let path = write_temp("cli_nf.c", "unsigned f(void) { return 0u; }");
    let out = bin().arg(&path).args(["--fn", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nope"), "{stderr}");
}

#[test]
fn playback_replays_a_checked_in_counterexample_seed() {
    let seed = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/cex-005.seed");
    let out = bin().args(["--playback"]).arg(&seed).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counterexample: badmax / main"), "{stdout}");
    assert!(stdout.contains("verdict reproduced"), "{stdout}");
}

#[test]
fn playback_rejects_a_fixed_program_with_nonzero_exit() {
    // Take a checked-in seed and fix the bug in its embedded source: the
    // recorded input must no longer falsify the spec, and playback must
    // say so and exit nonzero.
    let seed = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus/cex-005.seed");
    let text = std::fs::read_to_string(seed).unwrap();
    let fixed = text.replace("return a;", "return b;").replace(
        "return b;\n}",
        "return a;\n}",
    );
    assert_ne!(fixed, text, "source rewrite must change the seed");
    let path = write_temp("cli_fixed.seed", &fixed);
    let out = bin().args(["--playback"]).arg(&path).output().unwrap();
    assert!(!out.status.success(), "fixed program must not reproduce");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no longer falsifies"),
        "{stdout}"
    );
}

#[test]
fn playback_takes_no_c_file() {
    let out = bin()
        .args(["--playback", "x.seed", "y.c"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn concrete_flag_keeps_function_at_byte_level() {
    let path = write_temp(
        "cli_conc.c",
        "void set(unsigned char *p, unsigned char v) { *p = v; }\n\
         void zero(unsigned char *p) { set(p, 0u); }",
    );
    let out = bin()
        .arg(&path)
        .args(["--concrete", "set", "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exec_concrete"), "{stdout}");
}
