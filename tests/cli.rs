//! End-to-end tests of the `autocorres` command-line front end.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_autocorres"))
}

fn write_temp(name: &str, src: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

#[test]
fn translates_and_checks_a_file() {
    let path = write_temp(
        "cli_max.c",
        "unsigned maximum(unsigned a, unsigned b) { if (a <= b) return b; return a; }",
    );
    let out = bin().arg(&path).arg("--check").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("return (if a ≤ b then b else a)"),
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checker: OK"), "{stderr}");
}

#[test]
fn level_and_fn_filters() {
    let path = write_temp(
        "cli_two.c",
        "unsigned one(void) { return 1u; }\nunsigned two(void) { return 2u; }",
    );
    let out = bin()
        .arg(&path)
        .args(["--level", "l2", "--fn", "two", "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("two'"), "{stdout}");
    assert!(!stdout.contains("one'"), "{stdout}");
}

#[test]
fn metrics_mode_prints_both_rows() {
    let path = write_temp(
        "cli_m.c",
        "unsigned f(unsigned x) { return x + 1u; }",
    );
    let out = bin().arg(&path).args(["--metrics", "--quiet"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parser output"), "{stdout}");
    assert!(stdout.contains("autocorres output"), "{stdout}");
}

#[test]
fn frontend_errors_are_reported_cleanly() {
    let path = write_temp("cli_bad.c", "void f(void) { goto x; }");
    let out = bin().arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("goto"), "{stderr}");
}

#[test]
fn bad_flags_fail_with_usage() {
    for args in [vec!["--level", "bogus", "x.c"], vec!["--frobnicate"], vec![]] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn missing_function_filter_is_an_error() {
    let path = write_temp("cli_nf.c", "unsigned f(void) { return 0u; }");
    let out = bin().arg(&path).args(["--fn", "nope"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nope"), "{stderr}");
}

#[test]
fn concrete_flag_keeps_function_at_byte_level() {
    let path = write_temp(
        "cli_conc.c",
        "void set(unsigned char *p, unsigned char v) { *p = v; }\n\
         void zero(unsigned char *p) { set(p, 0u); }",
    );
    let out = bin()
        .arg(&path)
        .args(["--concrete", "set", "--quiet"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("exec_concrete"), "{stdout}");
}
