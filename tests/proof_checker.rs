//! The proof checker as an independent gate: every theorem of every case
//! study replays; derivations carry real content (sizes); and the kernel
//! rejects malformed rule applications.

use autocorres::{translate, Options};
use kernel::{check, CheckCtx};

#[test]
fn all_case_study_theorems_replay() {
    for (name, src) in [
        ("max", casestudies::sources::MAX),
        ("gcd", casestudies::sources::GCD),
        ("midpoint", casestudies::sources::MIDPOINT),
        ("swap", casestudies::sources::SWAP),
        ("suzuki", casestudies::sources::SUZUKI),
        ("reverse", casestudies::sources::REVERSE),
        ("schorr_waite", casestudies::sources::SCHORR_WAITE),
        ("overflow_idiom", casestudies::sources::OVERFLOW_IDIOM),
    ] {
        let out = translate(src, &Options::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.check_all().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.total_proof_size() >= 10,
            "{name}: derivations must be non-trivial"
        );
    }
}

#[test]
fn checker_is_independent_of_the_engines() {
    // The checker validates against a *fresh* context reconstructed from
    // the output (not the engine's internal state).
    let out = translate(casestudies::sources::REVERSE, &Options::default()).unwrap();
    let cx = out.check_ctx.clone();
    for (_, t) in out.thms.hl.iter().chain(&out.thms.wa) {
        check(t, &cx).unwrap();
    }
    // A context with the wrong layouts makes layout-dependent derivations
    // fail — the checker really consults the side conditions.
    let empty_cx = CheckCtx::default();
    let uses_layout = out
        .thms
        .hl
        .iter()
        .any(|(_, t)| check(t, &empty_cx).is_err());
    assert!(
        uses_layout,
        "field-offset rules must fail without the struct layouts"
    );
}

#[test]
fn kernel_rejects_malformed_applications() {
    use ir::expr::Expr;
    use kernel::rules::{refine, word};
    use kernel::AbsFun;
    let cx = CheckCtx::default();

    // Transitivity with non-chaining middles.
    let a = refine::refines_refl(&cx, &monadic::Prog::ret(Expr::u32(1))).unwrap();
    let b = refine::refines_refl(&cx, &monadic::Prog::ret(Expr::u32(2))).unwrap();
    assert!(refine::refines_trans(&cx, a, b).is_err());

    // Arithmetic across mismatched abstraction functions.
    let ctx: kernel::judgment::VarCtx =
        [("x".to_owned(), AbsFun::Unat), ("y".to_owned(), AbsFun::Sint)].into();
    let x = word::w_var(&cx, &ctx, "x").unwrap();
    let y = word::w_var(&cx, &ctx, "y").unwrap();
    assert!(word::w_arith(&cx, kernel::Rule::WSum, ir::Width::W32, x, y).is_err());

    // Guard discharge on an unprovable guard.
    let g = monadic::Prog::Guard(
        ir::GuardKind::DivByZero,
        Expr::binop(ir::BinOp::Ne, Expr::var("b"), Expr::u32(0)),
    );
    assert!(refine::discharge_guard(&cx, &g).is_err());
}
