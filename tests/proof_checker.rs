//! The proof checker as an independent gate: every theorem of every case
//! study replays; derivations carry real content (sizes); and the kernel
//! rejects malformed rule applications.

use autocorres::{translate, Options, Output};
use kernel::{check, CheckCtx};

const CASE_STUDIES: &[(&str, &str)] = &[
    ("max", casestudies::sources::MAX),
    ("gcd", casestudies::sources::GCD),
    ("midpoint", casestudies::sources::MIDPOINT),
    ("swap", casestudies::sources::SWAP),
    ("suzuki", casestudies::sources::SUZUKI),
    ("reverse", casestudies::sources::REVERSE),
    ("schorr_waite", casestudies::sources::SCHORR_WAITE),
    ("overflow_idiom", casestudies::sources::OVERFLOW_IDIOM),
];

/// Replays every theorem in all four `PhaseTheorems` maps individually —
/// not via `Output::check_all` — so a theorem skipped by an aggregation bug
/// would still be caught here.
fn replay_every_map(name: &str, out: &Output) -> usize {
    let maps = [
        ("l1", &out.thms.l1),
        ("l2", &out.thms.l2),
        ("hl", &out.thms.hl),
        ("wa", &out.thms.wa),
    ];
    let mut replayed = 0;
    for (phase, thms) in maps {
        for (fn_name, thm) in thms.iter() {
            check(thm, &out.check_ctx)
                .unwrap_or_else(|e| panic!("{name}: {phase} theorem of {fn_name}: {e}"));
            replayed += 1;
        }
    }
    assert_eq!(
        replayed,
        out.thms.len(),
        "{name}: PhaseTheorems::len disagrees with the four maps"
    );
    assert_eq!(
        replayed,
        out.thms.iter().count(),
        "{name}: PhaseTheorems::iter misses theorems"
    );
    replayed
}

#[test]
fn all_case_study_theorems_replay() {
    for (name, src) in CASE_STUDIES {
        let out = translate(src, &Options::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        out.check_all().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            out.total_proof_size() >= 10,
            "{name}: derivations must be non-trivial"
        );
    }
}

#[test]
fn every_theorem_in_every_map_replays_individually() {
    for (name, src) in CASE_STUDIES {
        let out = translate(src, &Options::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let replayed = replay_every_map(name, &out);
        assert!(replayed > 0, "{name}: no theorems at all");
    }
}

#[test]
fn parallel_replay_covers_every_theorem() {
    let opts = Options {
        workers: 4,
        ..Options::default()
    };
    let out = translate(casestudies::sources::REVERSE, &opts).unwrap();
    let report = out.check_all_report(4).unwrap();
    assert_eq!(report.checked, out.thms.len());
    assert_eq!(report.proof_nodes, out.total_proof_size());
    assert!(report.workers >= 1 && report.workers <= 4);
    // And the sequential replay agrees.
    let seq = out.check_all_report(1).unwrap();
    assert_eq!(seq.checked, report.checked);
    assert_eq!(seq.proof_nodes, report.proof_nodes);
}

#[test]
fn parallel_replay_reports_first_error_in_theorem_order() {
    // Theorems can't be forged from outside the kernel (LCF), so induce
    // failures by replaying layout-dependent derivations against a context
    // without the struct layouts. Whatever fails first sequentially must be
    // the reported error at every worker count.
    let out = translate(casestudies::sources::REVERSE, &Options::default()).unwrap();
    let empty_cx = CheckCtx::default();
    let items: Vec<(&str, &kernel::Thm)> = out.thms.iter().map(|(_, n, t)| (n, t)).collect();
    let first_failing = items
        .iter()
        .find(|(_, t)| check(t, &empty_cx).is_err())
        .map(|(n, _)| (*n).to_owned())
        .expect("some derivation must depend on the layouts");
    for workers in [1usize, 2, 8] {
        let err = kernel::check_all(items.iter().copied(), &empty_cx, workers)
            .expect_err("replay without layouts must fail");
        assert_eq!(
            err.0, first_failing,
            "workers={workers}: error is not the first in theorem order"
        );
    }
}

#[test]
fn checker_is_independent_of_the_engines() {
    // The checker validates against a *fresh* context reconstructed from
    // the output (not the engine's internal state).
    let out = translate(casestudies::sources::REVERSE, &Options::default()).unwrap();
    let cx = out.check_ctx.clone();
    for (_, t) in out.thms.hl.iter().chain(&out.thms.wa) {
        check(t, &cx).unwrap();
    }
    // A context with the wrong layouts makes layout-dependent derivations
    // fail — the checker really consults the side conditions.
    let empty_cx = CheckCtx::default();
    let uses_layout = out
        .thms
        .hl
        .iter()
        .any(|(_, t)| check(t, &empty_cx).is_err());
    assert!(
        uses_layout,
        "field-offset rules must fail without the struct layouts"
    );
}

#[test]
fn kernel_rejects_malformed_applications() {
    use ir::expr::Expr;
    use kernel::rules::{refine, word};
    use kernel::AbsFun;
    let cx = CheckCtx::default();

    // Transitivity with non-chaining middles.
    let a = refine::refines_refl(&cx, &monadic::Prog::ret(Expr::u32(1))).unwrap();
    let b = refine::refines_refl(&cx, &monadic::Prog::ret(Expr::u32(2))).unwrap();
    assert!(refine::refines_trans(&cx, a, b).is_err());

    // Arithmetic across mismatched abstraction functions.
    let ctx: kernel::judgment::VarCtx =
        [("x".to_owned(), AbsFun::Unat), ("y".to_owned(), AbsFun::Sint)].into();
    let x = word::w_var(&cx, &ctx, "x").unwrap();
    let y = word::w_var(&cx, &ctx, "y").unwrap();
    assert!(word::w_arith(&cx, kernel::Rule::WSum, ir::Width::W32, x, y).is_err());

    // Guard discharge on an unprovable guard.
    let g = monadic::Prog::Guard(
        ir::GuardKind::DivByZero,
        Expr::binop(ir::BinOp::Ne, Expr::var("b"), Expr::u32(0)),
    );
    assert!(refine::discharge_guard(&cx, &g).is_err());
}
