//! Property test for the no-spurious-counterexamples guarantee: random
//! programs with an injected bug constant must always yield an extracted
//! counterexample, and replaying that counterexample's concrete input
//! through the L2, HL, and WA interpreters must reproduce the failure.
//!
//! The vendored proptest runs 64 cases per `proptest!` block; each case
//! exercises all three bug templates plus one extra perturbed constant,
//! for 256 analyses total (the issue floor is 200).

use audit::layers::{run_all, wa_val_related, LayerRun};
use autocorres::{translate, Options, Output};
use counterexample::{analyze, validate_input, Cex, FnSpec};
use ir::eval::{eval_bool, Env};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use ir::Symbol;
use proptest::prelude::*;
use vcg::{LoopAnn, RV};

/// One bug-injected program: the constant `k != 0` is the bug.
struct Buggy {
    name: &'static str,
    src: String,
    spec: FnSpec,
}

/// `a + b + k` against the spec `rv = a + b`.
fn addk(k: u32) -> Buggy {
    Buggy {
        name: "addk",
        src: format!(
            "unsigned addk(unsigned a, unsigned b) {{\n\
                return a + b + {k}u;\n\
            }}"
        ),
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::eq(
                Expr::var(RV),
                Expr::binop(BinOp::Add, Expr::var("a"), Expr::var("b")),
            ),
            anns: vec![],
        },
    }
}

/// `n + n + k` against the spec `rv = n + n`.
fn dblk(k: u32) -> Buggy {
    Buggy {
        name: "dblk",
        src: format!(
            "unsigned dblk(unsigned n) {{\n\
                return n + n + {k}u;\n\
            }}"
        ),
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::eq(
                Expr::var(RV),
                Expr::binop(BinOp::Add, Expr::var("n"), Expr::var("n")),
            ),
            anns: vec![],
        },
    }
}

/// A loop that runs `k` iterations past the bound (hoisted into the local
/// `m`, so the condition stays in the word-abstractable fragment),
/// against `rv = n`.
fn cntk(k: u32) -> Buggy {
    let n = || Expr::var("n");
    let i = || Expr::var("i");
    let m = || Expr::var("m");
    Buggy {
        name: "cntk",
        src: format!(
            "unsigned cntk(unsigned n) {{\n\
                unsigned i = 0u;\n\
                unsigned m = n + {k}u;\n\
                while (i < m) {{\n\
                    i = i + 1u;\n\
                }}\n\
                return i;\n\
            }}"
        ),
        spec: FnSpec {
            pre: Expr::binop(BinOp::Lt, n(), Expr::u32(50)),
            post: Expr::eq(Expr::var(RV), n()),
            anns: vec![LoopAnn {
                inv: Expr::and(
                    Expr::binop(BinOp::Le, i(), m()),
                    Expr::and(
                        Expr::eq(m(), Expr::binop(BinOp::Add, n(), Expr::u32(k))),
                        Expr::binop(BinOp::Lt, n(), Expr::u32(50)),
                    ),
                ),
                measure: None,
                var_tys: vec![
                    ("i".into(), Ty::U32),
                    ("m".into(), Ty::U32),
                    ("n".into(), Ty::U32),
                ],
            }],
        },
    }
}

/// Evaluates the postcondition on one layer's result: `rv` bound to the
/// returned value, heap reads against the final state.
fn post_false_at(p: &Buggy, out: &Output, args: &[ir::value::Value], run: &LayerRun) -> bool {
    let hl_f = out.hl.function(p.name).unwrap();
    let mut env = Env {
        vars: Default::default(),
        tenv: out.hl.tenv.clone(),
    };
    for ((pn, _), v) in hl_f.params.iter().zip(args) {
        env.vars.insert(Symbol::intern(pn), v.clone());
    }
    match run {
        LayerRun::Fault => true,
        LayerRun::Normal(v, st) | LayerRun::Except(v, st) => {
            env.vars.insert(Symbol::intern(RV), v.clone());
            matches!(eval_bool(&p.spec.post, &env, st), Ok(false))
        }
        _ => false,
    }
}

/// The full per-program property: extraction succeeds, and the input
/// reproduces the failure at L2, HL, and WA.
fn check_reproduces(p: &Buggy) {
    let out = translate(&p.src, &Options::default())
        .unwrap_or_else(|e| panic!("{}: translate failed: {e}\n{}", p.name, p.src));
    let analysis = analyze(&out, p.name, &p.spec)
        .unwrap_or_else(|e| panic!("{}: analyze failed: {e}", p.name));
    let cex: &Cex = analysis
        .first_cex()
        .unwrap_or_else(|| panic!("{}: injected bug not caught\n{}", p.name, p.src));
    assert!(cex.info.validated, "{}: unvalidated", p.name);

    let conc0 = cex.input_state(&out.simpl.tenv).unwrap();
    let heap_types = autocorres::testing::heap_types_of(&out.simpl.tenv, &out.l1);

    // HL: the extraction-level replay must re-falsify.
    assert!(
        validate_input(
            &out,
            p.name,
            &p.spec,
            &cex.info.vc,
            cex.info.span,
            &cex.args,
            &conc0
        )
        .is_some(),
        "{}: spurious counterexample — input does not falsify at HL\n{}",
        p.name,
        p.src
    );

    // All five interpreter layers on the same input.
    let runs = run_all(&out, p.name, &cex.args, &conc0, &heap_types)
        .unwrap_or_else(|e| panic!("{}: layer setup failed: {e}", p.name));

    // L2 (word-level monadic): the failure reproduces below the typed-heap
    // abstraction.
    assert!(
        post_false_at(p, &out, &cex.args, &runs[2]),
        "{}: counterexample does not reproduce at L2: {}\n{}",
        p.name,
        runs[2].describe(),
        p.src
    );
    // HL run agrees with the recorded observation.
    assert!(
        post_false_at(p, &out, &cex.args, &runs[3]),
        "{}: counterexample does not reproduce at HL: {}\n{}",
        p.name,
        runs[3].describe(),
        p.src
    );
    // WA (ideal arithmetic): the abstract run returns the value related to
    // the concrete (wrong) result — the failure survives word abstraction.
    let wa_ret_ty = out.wa.function(p.name).unwrap().ret_ty.clone();
    match (&runs[3], &runs[4]) {
        (LayerRun::Normal(vh, _), LayerRun::Normal(va, _))
        | (LayerRun::Except(vh, _), LayerRun::Except(va, _)) => {
            assert!(
                wa_val_related(va, vh, &wa_ret_ty),
                "{}: WA result {va} unrelated to HL result {vh}",
                p.name
            );
        }
        (LayerRun::Fault, LayerRun::Fault) => {}
        (h, w) => panic!(
            "{}: HL/WA outcome shape split: {} vs {}",
            p.name,
            h.describe(),
            w.describe()
        ),
    }
}

proptest! {
    /// 64 cases × (3 templates + 1 perturbed) = 256 analyses.
    #[test]
    fn injected_bugs_always_yield_reproducing_counterexamples(
        k in 1u32..8,
        which in 0usize..3,
    ) {
        check_reproduces(&addk(k));
        check_reproduces(&dblk(k));
        check_reproduces(&cntk(k));
        // One extra analysis with a perturbed constant on a drawn template,
        // so consecutive cases never collapse to the same six programs.
        let k2 = k % 7 + 1;
        let extra = match which {
            0 => addk(k2),
            1 => dblk(k2),
            _ => cntk(k2),
        };
        check_reproduces(&extra);
    }
}
