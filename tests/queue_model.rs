//! A composite multi-function program — a linked queue with a header
//! struct — checked against a model implementation over random operation
//! sequences. Exercises two typed heaps (`queue`, `node`) at once, struct
//! field updates through pointers, and NULL handling.

use autocorres::{translate, Options};
use ir::state::State;
use ir::ty::Ty;
use ir::value::{Ptr, Value};
use monadic::MonadResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const SRC: &str = "struct node { struct node *next; unsigned data; };\n\
struct queue { struct node *head; struct node *tail; unsigned len; };\n\
void enqueue(struct queue *q, struct node *n) {\n\
    n->next = NULL;\n\
    if (!q->head) { q->head = n; q->tail = n; }\n\
    else { q->tail->next = n; q->tail = n; }\n\
    q->len = q->len + 1u;\n\
}\n\
struct node *dequeue(struct queue *q) {\n\
    struct node *n = q->head;\n\
    if (!n) return n;\n\
    q->head = n->next;\n\
    if (!q->head) { q->tail = NULL; }\n\
    q->len = q->len - 1u;\n\
    return n;\n\
}\n\
unsigned length(struct queue *q) { return q->len; }\n";

fn node_ty() -> Ty {
    Ty::Struct("node".into())
}

fn queue_ty() -> Ty {
    Ty::Struct("queue".into())
}

fn pipeline() -> &'static autocorres::Output {
    static OUT: std::sync::OnceLock<autocorres::Output> = std::sync::OnceLock::new();
    OUT.get_or_init(|| translate(SRC, &Options::default()).expect("queue translates"))
}

#[test]
fn queue_translates_and_checks() {
    let out = pipeline();
    out.check_all().unwrap();
    // `length` word-abstracts its result; the pointer plumbing stays.
    assert_eq!(out.wa.function("length").unwrap().ret_ty, Ty::Nat);
    assert_eq!(out.wa.function("dequeue").unwrap().ret_ty, node_ty().ptr_to());
}

#[test]
fn random_operation_sequences_match_the_model() {
    let out = pipeline();
    let tenv = out.wa.tenv.clone();
    let mut rng = StdRng::seed_from_u64(17);
    for round in 0..25 {
        // Fresh empty queue at 0x100; node pool above it.
        let mut conc = ir::state::ConcState::default();
        let empty = Value::Struct(
            "queue".into(),
            vec![
                ("head".into(), Value::Ptr(Ptr::new(0, node_ty()))),
                ("tail".into(), Value::Ptr(Ptr::new(0, node_ty()))),
                ("len".into(), Value::u32(0)),
            ],
        );
        conc.mem.alloc(0x100, &empty, &tenv).unwrap();
        let n_nodes = rng.gen_range(1..10u64);
        let mut pool: Vec<u64> = Vec::new();
        for k in 0..n_nodes {
            let addr = 0x1000 + k * 0x10;
            let node = Value::Struct(
                "node".into(),
                vec![
                    ("next".into(), Value::Ptr(Ptr::new(0, node_ty()))),
                    ("data".into(), Value::u32(k as u32)),
                ],
            );
            conc.mem.alloc(addr, &node, &tenv).unwrap();
            pool.push(addr);
        }
        let mut st = State::Abs(heapmodel::lift_state(
            &conc,
            &tenv,
            &[node_ty(), queue_ty()],
        ));
        let q = Value::Ptr(Ptr::new(0x100, queue_ty()));
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut free = pool.clone();
        for step in 0..40 {
            if !free.is_empty() && (model.is_empty() || rng.gen_bool(0.5)) {
                let addr = free.remove(rng.gen_range(0..free.len()));
                let n = Value::Ptr(Ptr::new(addr, node_ty()));
                let (r, st2) = monadic::exec_fn(
                    &out.wa,
                    "enqueue",
                    &[q.clone(), n],
                    st,
                    1_000_000,
                )
                .unwrap_or_else(|e| panic!("round {round} step {step}: {e}"));
                assert!(matches!(r, MonadResult::Normal(Value::Unit)));
                st = st2;
                model.push_back(addr);
            } else {
                let (r, st2) =
                    monadic::exec_fn(&out.wa, "dequeue", std::slice::from_ref(&q), st, 1_000_000)
                        .unwrap_or_else(|e| panic!("round {round} step {step}: {e}"));
                let MonadResult::Normal(Value::Ptr(p)) = r else {
                    panic!("dequeue returned {r:?}");
                };
                let expect = model.pop_front().unwrap_or(0);
                assert_eq!(p.addr, expect, "round {round} step {step}");
                st = st2;
                if expect != 0 {
                    free.push(expect);
                }
            }
            // The stored length always matches the model.
            let (r, st2) =
                monadic::exec_fn(&out.wa, "length", std::slice::from_ref(&q), st, 1_000_000).unwrap();
            assert_eq!(
                r,
                MonadResult::Normal(Value::nat(model.len() as u64)),
                "round {round} step {step}"
            );
            st = st2;
        }
    }
}

#[test]
fn enqueue_to_invalid_queue_fails_guards() {
    let out = pipeline();
    let tenv = out.wa.tenv.clone();
    // No queue object allocated: the very first q->head read must fail.
    let conc = ir::state::ConcState::default();
    let st = State::Abs(heapmodel::lift_state(&conc, &tenv, &[node_ty(), queue_ty()]));
    let q = Value::Ptr(Ptr::new(0x100, queue_ty()));
    let n = Value::Ptr(Ptr::new(0x1000, node_ty()));
    let r = monadic::exec_fn(&out.wa, "enqueue", &[q, n], st, 1_000_000);
    assert!(
        matches!(r, Err(monadic::MonadFault::Failure(_))),
        "unallocated queue must fail validity: {r:?}"
    );
}

#[test]
fn queue_functions_refine_the_c_level() {
    // Differential Simpl-vs-final check on random states, as for the
    // paper's case studies.
    let out = pipeline();
    for f in ["enqueue", "dequeue", "length"] {
        let decided =
            autocorres::testing::check_e2e_refinement(out, f, &[node_ty(), queue_ty()], 120, 99);
        assert!(decided > 20, "{f}: only {decided} conclusive trials");
    }
}
