//! Sec 3.3's rule-set extensibility: the `x > x + y` unsigned-overflow test
//! idiom. Without the custom rule the test abstracts to something the user
//! must prove never fires; with the rule it becomes `UINT_MAX < x + y`,
//! "allowing the original intent of the concrete code to be captured".

use autocorres::{translate, Options};
use casestudies::sources::OVERFLOW_IDIOM;
use ir::state::State;
use ir::value::Value;
use monadic::MonadResult;

#[test]
fn without_the_custom_rule_the_test_is_vacuous_looking() {
    let out = translate(OVERFLOW_IDIOM, &Options::default()).unwrap();
    let s = out.wa.function("checked_add").unwrap().body.to_string();
    // The built-in abstraction inserts the overflow obligation as a guard,
    // making the branch condition unprovable-in-general.
    assert!(s.contains("4294967295"), "{s}");
    assert!(s.contains("guard"), "{s}");
}

#[test]
fn with_the_custom_rule_the_intent_is_captured() {
    let opts = Options {
        custom_word_rules: vec![wordabs::overflow_idiom_rule()],
        ..Options::default()
    };
    let out = translate(OVERFLOW_IDIOM, &opts).unwrap();
    out.check_all().unwrap();
    let s = out.wa.function("checked_add").unwrap().body.to_string();
    assert!(
        s.contains("4294967295 < x + y"),
        "the overflow test becomes explicit: {s}"
    );

    // Semantics: checked_add returns 0 on overflow, x + y otherwise.
    for (x, y) in [(1u32, 2u32), (u32::MAX, 1), (u32::MAX - 1, 1), (0, 0)] {
        let (r, _) = monadic::exec_fn(
            &out.wa,
            "checked_add",
            &[Value::nat(u64::from(x)), Value::nat(u64::from(y))],
            State::conc_empty(),
            10_000,
        )
        .unwrap();
        let expect = if u64::from(x) + u64::from(y) > u64::from(u32::MAX) {
            0u64
        } else {
            u64::from(x) + u64::from(y)
        };
        assert_eq!(r, MonadResult::Normal(Value::nat(expect)), "({x},{y})");
    }
}
