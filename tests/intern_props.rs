//! Properties of the hash-consed term representation: the interned `Eq` and
//! `Hash` (pointer fast path, cached structural hash) must agree with a
//! reference deep-structural implementation written here from scratch, the
//! cached subterm sizes must match a fresh recursive walk, and structurally
//! equal constructions must land on the same interner allocation — both on
//! random synthetic trees and on every term the pipeline produces for
//! `codegen`-generated programs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use autocorres::{translate, Options, Output};
use ir::expr::{BinOp, CastKind, Expr, IExpr, UnOp};
use ir::guard::GuardKind;
use ir::ty::Ty;
use ir::update::Update;
use monadic::{IProg, Prog};
use proptest::prelude::*;
use proptest::sample;

// ---------------------------------------------------------------------------
// Reference implementations (deliberately interner-blind: they never touch
// `ptr_eq`, cached hashes, or cached sizes — only plain recursion).
// ---------------------------------------------------------------------------

fn deep_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Lit(x), Expr::Lit(y)) => x == y,
        (Expr::Var(x), Expr::Var(y))
        | (Expr::Local(x), Expr::Local(y))
        | (Expr::Global(x), Expr::Global(y)) => x.as_str() == y.as_str(),
        (Expr::ReadHeap(t, e), Expr::ReadHeap(u, f))
        | (Expr::IsValid(t, e), Expr::IsValid(u, f))
        | (Expr::PtrAligned(t, e), Expr::PtrAligned(u, f))
        | (Expr::NullFree(t, e), Expr::NullFree(u, f)) => t == u && deep_eq(e, f),
        (Expr::ReadByte(e), Expr::ReadByte(f)) => deep_eq(e, f),
        (Expr::Field(e, n), Expr::Field(f, m)) => n == m && deep_eq(e, f),
        (Expr::UpdateField(s, n, v), Expr::UpdateField(s2, m, v2)) => {
            n == m && deep_eq(s, s2) && deep_eq(v, v2)
        }
        (Expr::UnOp(o, e), Expr::UnOp(p, f)) => o == p && deep_eq(e, f),
        (Expr::BinOp(o, l, r), Expr::BinOp(p, l2, r2)) => {
            o == p && deep_eq(l, l2) && deep_eq(r, r2)
        }
        (Expr::Cast(k, e), Expr::Cast(j, f)) => k == j && deep_eq(e, f),
        (Expr::Ite(c, t, e), Expr::Ite(c2, t2, e2)) => {
            deep_eq(c, c2) && deep_eq(t, t2) && deep_eq(e, e2)
        }
        (Expr::Tuple(xs), Expr::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| deep_eq(x, y))
        }
        (Expr::Proj(i, e), Expr::Proj(j, f)) => i == j && deep_eq(e, f),
        _ => false,
    }
}

fn deep_eq_update(a: &Update, b: &Update) -> bool {
    match (a, b) {
        (Update::Local(n, e), Update::Local(m, f))
        | (Update::Global(n, e), Update::Global(m, f)) => n == m && deep_eq(e, f),
        (Update::Heap(t, p, v), Update::Heap(u, q, w)) => {
            t == u && deep_eq(p, q) && deep_eq(v, w)
        }
        (Update::Byte(p, v), Update::Byte(q, w)) => deep_eq(p, q) && deep_eq(v, w),
        (Update::TagRegion(t, p), Update::TagRegion(u, q)) => t == u && deep_eq(p, q),
        _ => false,
    }
}

fn deep_eq_prog(a: &Prog, b: &Prog) -> bool {
    match (a, b) {
        (Prog::Return(e), Prog::Return(f))
        | (Prog::Gets(e), Prog::Gets(f))
        | (Prog::Throw(e), Prog::Throw(f)) => deep_eq(e, f),
        (Prog::Guard(k, e), Prog::Guard(j, f)) => k == j && deep_eq(e, f),
        (Prog::Modify(u), Prog::Modify(v)) => deep_eq_update(u, v),
        (Prog::Fail, Prog::Fail) => true,
        (Prog::Bind(l, v, r), Prog::Bind(l2, v2, r2))
        | (Prog::Catch(l, v, r), Prog::Catch(l2, v2, r2)) => {
            v == v2 && deep_eq_prog(l, l2) && deep_eq_prog(r, r2)
        }
        (Prog::BindTuple(l, vs, r), Prog::BindTuple(l2, vs2, r2)) => {
            vs == vs2 && deep_eq_prog(l, l2) && deep_eq_prog(r, r2)
        }
        (Prog::Condition(c, t, e), Prog::Condition(c2, t2, e2)) => {
            deep_eq(c, c2) && deep_eq_prog(t, t2) && deep_eq_prog(e, e2)
        }
        (
            Prog::While {
                vars,
                cond,
                body,
                init,
            },
            Prog::While {
                vars: vars2,
                cond: cond2,
                body: body2,
                init: init2,
            },
        ) => {
            vars == vars2
                && deep_eq(cond, cond2)
                && deep_eq_prog(body, body2)
                && init.len() == init2.len()
                && init.iter().zip(init2).all(|(x, y)| deep_eq(x, y))
        }
        (Prog::Call { fname, args }, Prog::Call { fname: f2, args: a2 }) => {
            fname == f2 && args.len() == a2.len() && args.iter().zip(a2).all(|(x, y)| deep_eq(x, y))
        }
        (Prog::ExecConcrete(p), Prog::ExecConcrete(q))
        | (Prog::ExecAbstract(p), Prog::ExecAbstract(q)) => deep_eq_prog(p, q),
        _ => false,
    }
}

/// Reference term size: the documented Table 5 node-count semantics,
/// recomputed by plain recursion (never `Interned::size`).
fn ref_size_expr(e: &Expr) -> usize {
    match e {
        Expr::Local(_) => 3,
        Expr::Lit(_) | Expr::Var(_) | Expr::Global(_) => 1,
        Expr::ReadHeap(_, e)
        | Expr::ReadByte(e)
        | Expr::IsValid(_, e)
        | Expr::PtrAligned(_, e)
        | Expr::NullFree(_, e)
        | Expr::Field(e, _)
        | Expr::UnOp(_, e)
        | Expr::Cast(_, e)
        | Expr::Proj(_, e) => 1 + ref_size_expr(e),
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => {
            1 + ref_size_expr(a) + ref_size_expr(b)
        }
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => {
            1 + ref_size_expr(a) + ref_size_expr(b) + ref_size_expr(c)
        }
        Expr::Tuple(es) => 1 + es.iter().map(ref_size_expr).sum::<usize>(),
    }
}

fn ref_size_update(u: &Update) -> usize {
    match u {
        Update::Local(_, e) => 4 + ref_size_expr(e),
        Update::Global(_, e) | Update::TagRegion(_, e) => 1 + ref_size_expr(e),
        Update::Heap(_, p, e) | Update::Byte(p, e) => 1 + ref_size_expr(p) + ref_size_expr(e),
    }
}

fn ref_size_prog(p: &Prog) -> usize {
    match p {
        Prog::Return(e) | Prog::Gets(e) | Prog::Throw(e) | Prog::Guard(_, e) => {
            1 + ref_size_expr(e)
        }
        Prog::Modify(u) => 1 + ref_size_update(u),
        Prog::Fail => 1,
        Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
            1 + ref_size_prog(l) + ref_size_prog(r)
        }
        Prog::Condition(c, t, e) => 1 + ref_size_expr(c) + ref_size_prog(t) + ref_size_prog(e),
        Prog::While {
            cond, body, init, ..
        } => {
            1 + ref_size_expr(cond)
                + ref_size_prog(body)
                + init.iter().map(ref_size_expr).sum::<usize>()
        }
        Prog::Call { args, .. } => 1 + args.iter().map(ref_size_expr).sum::<usize>(),
        Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => 1 + ref_size_prog(p),
    }
}

/// Rebuilds a term bottom-up through the public constructors, interning
/// every node afresh (symbols go back through their string spelling). The
/// result is deep-structurally equal to the input by construction, so it
/// must also be `==` and hash-equal to it, and canonically `ptr_eq`.
fn rebuild_expr(e: &Expr) -> Expr {
    match e {
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Var(s) => Expr::var(s.as_str()),
        Expr::Local(s) => Expr::local(s.as_str()),
        Expr::Global(s) => Expr::global(s.as_str()),
        Expr::ReadHeap(t, e) => Expr::ReadHeap(t.clone(), IExpr::new(rebuild_expr(e))),
        Expr::ReadByte(e) => Expr::ReadByte(IExpr::new(rebuild_expr(e))),
        Expr::IsValid(t, e) => Expr::IsValid(t.clone(), IExpr::new(rebuild_expr(e))),
        Expr::PtrAligned(t, e) => Expr::PtrAligned(t.clone(), IExpr::new(rebuild_expr(e))),
        Expr::NullFree(t, e) => Expr::NullFree(t.clone(), IExpr::new(rebuild_expr(e))),
        Expr::Field(e, n) => Expr::Field(IExpr::new(rebuild_expr(e)), n.clone()),
        Expr::UpdateField(s, n, v) => Expr::UpdateField(
            IExpr::new(rebuild_expr(s)),
            n.clone(),
            IExpr::new(rebuild_expr(v)),
        ),
        Expr::UnOp(o, e) => Expr::unop(*o, rebuild_expr(e)),
        Expr::BinOp(o, l, r) => Expr::binop(*o, rebuild_expr(l), rebuild_expr(r)),
        Expr::Cast(k, e) => Expr::Cast(k.clone(), IExpr::new(rebuild_expr(e))),
        Expr::Ite(c, t, e) => Expr::ite(rebuild_expr(c), rebuild_expr(t), rebuild_expr(e)),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(rebuild_expr).collect()),
        Expr::Proj(i, e) => Expr::Proj(*i, IExpr::new(rebuild_expr(e))),
        Expr::Index(a, i) => Expr::index(rebuild_expr(a), rebuild_expr(i)),
        Expr::ArrUpd(a, i, v) => {
            Expr::arr_upd(rebuild_expr(a), rebuild_expr(i), rebuild_expr(v))
        }
    }
}

fn rebuild_update(u: &Update) -> Update {
    match u {
        Update::Local(n, e) => Update::Local(n.clone(), rebuild_expr(e)),
        Update::Global(n, e) => Update::Global(n.clone(), rebuild_expr(e)),
        Update::Heap(t, p, e) => Update::Heap(t.clone(), rebuild_expr(p), rebuild_expr(e)),
        Update::Byte(p, e) => Update::Byte(rebuild_expr(p), rebuild_expr(e)),
        Update::TagRegion(t, p) => Update::TagRegion(t.clone(), rebuild_expr(p)),
    }
}

fn rebuild_prog(p: &Prog) -> Prog {
    match p {
        Prog::Return(e) => Prog::Return(rebuild_expr(e)),
        Prog::Gets(e) => Prog::Gets(rebuild_expr(e)),
        Prog::Modify(u) => Prog::Modify(rebuild_update(u)),
        Prog::Guard(k, e) => Prog::Guard(k.clone(), rebuild_expr(e)),
        Prog::Throw(e) => Prog::Throw(rebuild_expr(e)),
        Prog::Fail => Prog::Fail,
        Prog::Bind(l, v, r) => Prog::Bind(
            IProg::new(rebuild_prog(l)),
            v.clone(),
            IProg::new(rebuild_prog(r)),
        ),
        Prog::BindTuple(l, vs, r) => Prog::BindTuple(
            IProg::new(rebuild_prog(l)),
            vs.clone(),
            IProg::new(rebuild_prog(r)),
        ),
        Prog::Condition(c, t, e) => Prog::Condition(
            rebuild_expr(c),
            IProg::new(rebuild_prog(t)),
            IProg::new(rebuild_prog(e)),
        ),
        Prog::While {
            vars,
            cond,
            body,
            init,
        } => Prog::While {
            vars: vars.clone(),
            cond: rebuild_expr(cond),
            body: IProg::new(rebuild_prog(body)),
            init: init.iter().map(rebuild_expr).collect(),
        },
        Prog::Catch(l, v, r) => Prog::Catch(
            IProg::new(rebuild_prog(l)),
            v.clone(),
            IProg::new(rebuild_prog(r)),
        ),
        Prog::Call { fname, args } => Prog::Call {
            fname: fname.clone(),
            args: args.iter().map(rebuild_expr).collect(),
        },
        Prog::ExecConcrete(p) => Prog::ExecConcrete(IProg::new(rebuild_prog(p))),
        Prog::ExecAbstract(p) => Prog::ExecAbstract(IProg::new(rebuild_prog(p))),
    }
}

fn std_hash<T: Hash + ?Sized>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// The full consistency bundle for one expression.
fn check_expr(e: &Expr) {
    let rebuilt = rebuild_expr(e);
    assert!(deep_eq(e, &rebuilt), "rebuild must be deep-equal: {e:?}");
    assert_eq!(*e, rebuilt, "interned Eq disagrees with deep-equal rebuild");
    assert_eq!(
        std_hash(e),
        std_hash(&rebuilt),
        "hash differs across deep-equal constructions of {e:?}"
    );
    let a = IExpr::new(e.clone());
    let b = IExpr::new(rebuilt);
    assert!(
        IExpr::ptr_eq(&a, &b),
        "structurally equal constructions must share one allocation: {e:?}"
    );
    assert_eq!(a.structural_hash(), b.structural_hash());
    assert_eq!(a.size(), ref_size_expr(e), "cached size wrong for {e:?}");
}

/// The full consistency bundle for one program.
fn check_prog(p: &Prog) {
    let rebuilt = rebuild_prog(p);
    assert!(deep_eq_prog(p, &rebuilt), "rebuild must be deep-equal: {p:?}");
    assert_eq!(*p, rebuilt, "interned Eq disagrees with deep-equal rebuild");
    assert_eq!(std_hash(p), std_hash(&rebuilt));
    let a = IProg::new(p.clone());
    let b = IProg::new(rebuilt);
    assert!(IProg::ptr_eq(&a, &b), "equal programs must share one allocation");
    assert_eq!(a.structural_hash(), b.structural_hash());
    assert_eq!(a.size(), ref_size_prog(p), "cached size wrong for {p:?}");
}

// ---------------------------------------------------------------------------
// Random-tree strategies. Name pools are tiny on purpose: collisions make
// equal pairs (the interesting case for Eq/Hash agreement) actually occur.
// ---------------------------------------------------------------------------

fn arb_expr() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u32..4).prop_map(Expr::u32),
        "[ab]".prop_map(Expr::var),
        "[ab]".prop_map(Expr::local),
        "[gh]".prop_map(Expr::global),
        Just(Expr::tt()),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        let op = sample::select(vec![BinOp::Add, BinOp::Mul, BinOp::Eq, BinOp::Lt]);
        prop_oneof![
            (op, inner.clone(), inner.clone()).prop_map(|(o, l, r)| Expr::binop(o, l, r)),
            inner.clone().prop_map(|e| Expr::unop(UnOp::Not, e)),
            inner
                .clone()
                .prop_map(|e| Expr::Cast(CastKind::Unat, IExpr::new(e))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::ite(c, t, e)),
            (inner.clone(), "[xy]").prop_map(|(e, f)| Expr::Field(IExpr::new(e), f)),
            inner
                .clone()
                .prop_map(|e| Expr::ReadHeap(Ty::U32, IExpr::new(e))),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::Tuple),
            (0usize..2, inner).prop_map(|(i, e)| Expr::Proj(i, IExpr::new(e))),
        ]
    })
    .boxed()
}

fn arb_update() -> BoxedStrategy<Update> {
    let e = arb_expr();
    prop_oneof![
        ("[ab]", e.clone()).prop_map(|(n, x)| Update::Local(n, x)),
        ("[gh]", e.clone()).prop_map(|(n, x)| Update::Global(n, x)),
        (e.clone(), e).prop_map(|(p, x)| Update::Heap(Ty::U32, p, x)),
    ]
}

fn arb_prog() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        arb_expr().prop_map(Prog::Return),
        arb_expr().prop_map(Prog::Gets),
        arb_expr().prop_map(Prog::Throw),
        arb_expr().prop_map(|e| Prog::Guard(GuardKind::UnsignedOverflow, e)),
        arb_update().prop_map(Prog::Modify),
        Just(Prog::Fail),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), "[vw]", inner.clone())
                .prop_map(|(l, v, r)| Prog::Bind(IProg::new(l), v, IProg::new(r))),
            (arb_expr(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Prog::Condition(
                c,
                IProg::new(t),
                IProg::new(e)
            )),
            ("[vw]", arb_expr(), inner.clone(), arb_expr()).prop_map(|(v, c, b, i)| {
                Prog::While {
                    vars: vec![v],
                    cond: c,
                    body: IProg::new(b),
                    init: vec![i],
                }
            }),
            (inner.clone(), "[vw]", inner.clone())
                .prop_map(|(l, v, r)| Prog::Catch(IProg::new(l), v, IProg::new(r))),
            inner.clone().prop_map(|p| Prog::ExecConcrete(IProg::new(p))),
            ("[fg]", proptest::collection::vec(arb_expr(), 0..3))
                .prop_map(|(fname, args)| Prog::Call { fname, args }),
        ]
    })
    .boxed()
}

proptest! {
    /// On random expression pairs, interned `==` is exactly reference
    /// deep-structural equality, and deep-equal terms hash alike.
    #[test]
    fn expr_eq_and_hash_agree_with_deep_structural(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(a == b, deep_eq(&a, &b), "Eq/deep_eq disagree:\n{:?}\n{:?}", a, b);
        if deep_eq(&a, &b) {
            prop_assert_eq!(std_hash(&a), std_hash(&b));
        }
        check_expr(&a);
    }

    /// Same for random programs.
    #[test]
    fn prog_eq_and_hash_agree_with_deep_structural(a in arb_prog(), b in arb_prog()) {
        prop_assert_eq!(a == b, deep_eq_prog(&a, &b), "Eq/deep_eq disagree:\n{:?}\n{:?}", a, b);
        if deep_eq_prog(&a, &b) {
            prop_assert_eq!(std_hash(&a), std_hash(&b));
        }
        check_prog(&a);
    }
}

// ---------------------------------------------------------------------------
// The same properties on real pipeline output over codegen-generated C.
// ---------------------------------------------------------------------------

fn collect_exprs<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    out.push(e);
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Local(_) | Expr::Global(_) => {}
        Expr::ReadHeap(_, e)
        | Expr::ReadByte(e)
        | Expr::IsValid(_, e)
        | Expr::PtrAligned(_, e)
        | Expr::NullFree(_, e)
        | Expr::Field(e, _)
        | Expr::UnOp(_, e)
        | Expr::Cast(_, e)
        | Expr::Proj(_, e) => collect_exprs(e, out),
        Expr::UpdateField(a, _, b) | Expr::BinOp(_, a, b) | Expr::Index(a, b) => {
            collect_exprs(a, out);
            collect_exprs(b, out);
        }
        Expr::Ite(a, b, c) | Expr::ArrUpd(a, b, c) => {
            collect_exprs(a, out);
            collect_exprs(b, out);
            collect_exprs(c, out);
        }
        Expr::Tuple(es) => es.iter().for_each(|e| collect_exprs(e, out)),
    }
}

fn collect_progs<'a>(p: &'a Prog, progs: &mut Vec<&'a Prog>, exprs: &mut Vec<&'a Expr>) {
    progs.push(p);
    match p {
        Prog::Return(e) | Prog::Gets(e) | Prog::Throw(e) | Prog::Guard(_, e) => {
            collect_exprs(e, exprs);
        }
        Prog::Modify(u) => match u {
            Update::Local(_, e) | Update::Global(_, e) | Update::TagRegion(_, e) => {
                collect_exprs(e, exprs);
            }
            Update::Heap(_, p, e) | Update::Byte(p, e) => {
                collect_exprs(p, exprs);
                collect_exprs(e, exprs);
            }
        },
        Prog::Fail => {}
        Prog::Bind(l, _, r) | Prog::BindTuple(l, _, r) | Prog::Catch(l, _, r) => {
            collect_progs(l, progs, exprs);
            collect_progs(r, progs, exprs);
        }
        Prog::Condition(c, t, e) => {
            collect_exprs(c, exprs);
            collect_progs(t, progs, exprs);
            collect_progs(e, progs, exprs);
        }
        Prog::While {
            cond, body, init, ..
        } => {
            collect_exprs(cond, exprs);
            collect_progs(body, progs, exprs);
            init.iter().for_each(|e| collect_exprs(e, exprs));
        }
        Prog::Call { args, .. } => args.iter().for_each(|e| collect_exprs(e, exprs)),
        Prog::ExecConcrete(p) | Prog::ExecAbstract(p) => collect_progs(p, progs, exprs),
    }
}

fn translate_codegen(seed: u64, functions: usize, workers: usize) -> Output {
    let profile = codegen::Profile {
        name: "intern-props",
        loc: functions * 10,
        functions,
    };
    let src = codegen::generate(&profile, seed);
    let opts = Options {
        l2_trials: 8,
        seed,
        workers,
        ..Options::default()
    };
    translate(&src, &opts).unwrap_or_else(|e| panic!("seed {seed}: pipeline failed: {e}"))
}

#[test]
fn pipeline_terms_satisfy_intern_properties() {
    let out = translate_codegen(11, 8, 1);
    let mut progs = Vec::new();
    let mut exprs = Vec::new();
    for ctx in [&out.l1, &out.l2, &out.hl, &out.wa] {
        for f in ctx.fns.values() {
            collect_progs(&f.body, &mut progs, &mut exprs);
        }
    }
    assert!(
        progs.len() > 50 && exprs.len() > 100,
        "harvest too small to be meaningful: {} progs, {} exprs",
        progs.len(),
        exprs.len()
    );
    // Full bundle on a bounded sample (rebuild is quadratic-ish in depth).
    for e in exprs.iter().step_by(exprs.len().div_ceil(200)) {
        check_expr(e);
    }
    for p in progs.iter().step_by(progs.len().div_ceil(100)) {
        check_prog(p);
    }
    // Pairwise Eq agreement on a sample: interned == iff deep-structural ==.
    let sample: Vec<&Expr> = exprs.iter().step_by(exprs.len().div_ceil(60)).copied().collect();
    for a in &sample {
        for b in &sample {
            assert_eq!(
                **a == **b,
                deep_eq(a, b),
                "Eq/deep_eq disagree on pipeline terms:\n{a:?}\n{b:?}"
            );
        }
    }
}

/// Two pipeline runs over the same codegen program at different worker
/// counts produce identical interner-independent output (specs, theorems,
/// metrics) — the interner and replay cache must not leak scheduling.
#[test]
fn codegen_pipeline_is_worker_count_independent() {
    for seed in [3u64, 19] {
        let renders: Vec<String> = [1usize, 2, 5]
            .iter()
            .map(|&workers| {
                let out = translate_codegen(seed, 6, workers);
                let mut s = String::new();
                for (level, ctx) in [("l1", &out.l1), ("l2", &out.l2), ("hl", &out.hl), ("wa", &out.wa)] {
                    for (name, f) in &ctx.fns {
                        s.push_str(&format!("=== {level} {name} ===\n{f}\n"));
                    }
                }
                for (phase, name, thm) in out.thms.iter() {
                    s.push_str(&format!("--- thm {phase} {name} ---\n{thm}\n{thm:?}\n"));
                }
                s.push_str(&format!(
                    "metrics: {:?} {:?} proof={}\n",
                    out.parser_metrics(),
                    out.output_metrics(),
                    out.total_proof_size()
                ));
                s.push_str(&out.stats.deterministic_summary());
                s
            })
            .collect();
        assert_eq!(renders[0], renders[1], "seed {seed}: workers 1 vs 2 diverge");
        assert_eq!(renders[0], renders[2], "seed {seed}: workers 1 vs 5 diverge");
    }
}
