//! Parallel translation is bit-for-bit deterministic: for a fixed seed, the
//! pipeline output — pretty-printed specs at every level, theorem
//! statements, metrics, per-function stat counts — is byte-identical
//! whether translated sequentially (workers = 1) or on a pool (2, 8
//! workers). This is the contract that makes the parallel pipeline safe to
//! use for proof artefacts: scheduling must never leak into the output.

use autocorres::{translate, Options, Output};
use std::fmt::Write as _;

/// Everything a consumer can observe of the output, rendered to text:
/// specs of every level, every theorem statement (which embeds guard lists
/// and the recorded test seed), the Table 5 metrics, and the deterministic
/// part of the pipeline stats.
fn render(out: &Output) -> String {
    let mut s = String::new();
    for (level, ctx) in [
        ("l1", &out.l1),
        ("l2", &out.l2),
        ("hl", &out.hl),
        ("wa", &out.wa),
    ] {
        for (name, f) in &ctx.fns {
            let _ = writeln!(s, "=== {level} {name} ===\n{f}");
        }
    }
    for (phase, name, thm) in out.thms.iter() {
        // Debug includes the full derivation tree — rules, premises, and
        // the recorded `Side::Tested` seeds — so scheduling-dependent seed
        // derivation would show up as a byte difference.
        let _ = writeln!(s, "--- thm {phase} {name} ---\n{thm}\n{thm:?}");
    }
    let _ = writeln!(s, "parser metrics: {:?}", out.parser_metrics());
    let _ = writeln!(s, "output metrics: {:?}", out.output_metrics());
    let _ = writeln!(s, "proof size: {}", out.total_proof_size());
    s.push_str(&out.stats.deterministic_summary());
    s
}

fn translate_with(src: &str, seed: u64, workers: usize, concrete: &[&str]) -> Output {
    let opts = Options {
        l2_trials: 12,
        seed,
        workers,
        concrete_fns: concrete.iter().map(|s| (*s).to_owned()).collect(),
        ..Options::default()
    };
    translate(src, &opts).unwrap_or_else(|e| panic!("workers={workers} seed={seed}: {e}"))
}

/// A two-function program whose concrete-kept caller forces the
/// `adapt_concrete_callers` path (call-site lifting + adaptation theorem).
const MIXED_CALLER: &str = "unsigned inc(unsigned x) { return x + 1u; }\n\
     unsigned twice(unsigned x) { return inc(inc(x)); }\n";

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let cases: &[(&str, &str, &[&str])] = &[
        ("max", casestudies::sources::MAX, &[]),
        ("gcd", casestudies::sources::GCD, &[]),
        ("midpoint", casestudies::sources::MIDPOINT, &[]),
        ("swap", casestudies::sources::SWAP, &[]),
        ("mixed_caller", MIXED_CALLER, &["twice"]),
    ];
    for (name, src, concrete) in cases {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let reference = render(&translate_with(src, seed, 1, concrete));
            for workers in [2usize, 8] {
                let parallel = render(&translate_with(src, seed, workers, concrete));
                assert_eq!(
                    reference, parallel,
                    "{name}: workers={workers} seed={seed} diverges from sequential"
                );
            }
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_theorem_streams() {
    // The per-function seed derivation must actually depend on the seed:
    // `ExecTested` theorems record it, so renderings of different seeds
    // must differ (while everything else stays equal).
    let a = render(&translate_with(casestudies::sources::GCD, 1, 1, &[]));
    let b = render(&translate_with(casestudies::sources::GCD, 2, 1, &[]));
    assert_ne!(a, b, "theorem statements must record the derived seed");
}

#[test]
fn workers_zero_and_one_are_the_same_configuration() {
    let zero = render(&translate_with(casestudies::sources::MAX, 5, 0, &[]));
    let one = render(&translate_with(casestudies::sources::MAX, 5, 1, &[]));
    assert_eq!(zero, one);
}
