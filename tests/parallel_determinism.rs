//! Parallel translation is bit-for-bit deterministic: for a fixed seed, the
//! pipeline output — pretty-printed specs at every level, theorem
//! statements, metrics, per-function stat counts — is byte-identical
//! whether translated sequentially (workers = 1) or on a pool (2, 8
//! workers). This is the contract that makes the parallel pipeline safe to
//! use for proof artefacts: scheduling must never leak into the output.

use autocorres::{translate, translate_program, Options, Output, Session};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Everything a consumer can observe of the output, rendered to text:
/// specs of every level, every theorem statement (which embeds guard lists
/// and the recorded test seed), the Table 5 metrics, and the deterministic
/// part of the pipeline stats.
fn render(out: &Output) -> String {
    let mut s = String::new();
    for (level, ctx) in [
        ("l1", &out.l1),
        ("l2", &out.l2),
        ("hl", &out.hl),
        ("wa", &out.wa),
    ] {
        for (name, f) in &ctx.fns {
            let _ = writeln!(s, "=== {level} {name} ===\n{f}");
        }
    }
    for (phase, name, thm) in out.thms.iter() {
        // Debug includes the full derivation tree — rules, premises, and
        // the recorded `Side::Tested` seeds — so scheduling-dependent seed
        // derivation would show up as a byte difference.
        let _ = writeln!(s, "--- thm {phase} {name} ---\n{thm}\n{thm:?}");
    }
    let _ = writeln!(s, "parser metrics: {:?}", out.parser_metrics());
    let _ = writeln!(s, "output metrics: {:?}", out.output_metrics());
    let _ = writeln!(s, "proof size: {}", out.total_proof_size());
    s.push_str(&out.stats.deterministic_summary());
    s
}

fn translate_with(src: &str, seed: u64, workers: usize, concrete: &[&str]) -> Output {
    let opts = Options {
        l2_trials: 12,
        seed,
        workers,
        // Bypass the adaptive sequential fast path: on a small host the
        // planner would collapse every run to one worker and this suite
        // would never exercise the work-stealing pool it exists to test.
        force_pool: workers > 1,
        concrete_fns: concrete.iter().map(|s| (*s).to_owned()).collect(),
        ..Options::default()
    };
    translate(src, &opts).unwrap_or_else(|e| panic!("workers={workers} seed={seed}: {e}"))
}

/// A two-function program whose concrete-kept caller forces the
/// `adapt_concrete_callers` path (call-site lifting + adaptation theorem).
const MIXED_CALLER: &str = "unsigned inc(unsigned x) { return x + 1u; }\n\
     unsigned twice(unsigned x) { return inc(inc(x)); }\n";

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let cases: &[(&str, &str, &[&str])] = &[
        ("max", casestudies::sources::MAX, &[]),
        ("gcd", casestudies::sources::GCD, &[]),
        ("midpoint", casestudies::sources::MIDPOINT, &[]),
        ("swap", casestudies::sources::SWAP, &[]),
        ("mixed_caller", MIXED_CALLER, &["twice"]),
    ];
    for (name, src, concrete) in cases {
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let reference = render(&translate_with(src, seed, 1, concrete));
            for workers in [2usize, 4, 8] {
                let parallel = render(&translate_with(src, seed, workers, concrete));
                assert_eq!(
                    reference, parallel,
                    "{name}: workers={workers} seed={seed} diverges from sequential"
                );
            }
        }
    }
}

#[test]
fn distinct_seeds_give_distinct_theorem_streams() {
    // The per-function seed derivation must actually depend on the seed:
    // `ExecTested` theorems record it, so renderings of different seeds
    // must differ (while everything else stays equal).
    let a = render(&translate_with(casestudies::sources::GCD, 1, 1, &[]));
    let b = render(&translate_with(casestudies::sources::GCD, 2, 1, &[]));
    assert_ne!(a, b, "theorem statements must record the derived seed");
}

#[test]
fn workers_zero_and_one_are_the_same_configuration() {
    let zero = render(&translate_with(casestudies::sources::MAX, 5, 0, &[]));
    let one = render(&translate_with(casestudies::sources::MAX, 5, 1, &[]));
    assert_eq!(zero, one);
}

/// A call-graph-shaped program: `fn_i` calls exactly `deps[i]` (all lower
/// indices), plus a per-function constant that `bump` edits. Mirrors the
/// generator the incremental suite uses so both suites cover the same
/// program family.
fn src_from_graph(g: &[Vec<usize>], bump: Option<usize>) -> String {
    let mut s = String::new();
    for (i, deps) in g.iter().enumerate() {
        let c = if bump == Some(i) { 7 } else { 1 };
        let _ = writeln!(s, "unsigned fn_{i}(unsigned x) {{");
        let _ = writeln!(s, "    unsigned r = x + {c}u;");
        for d in deps {
            let _ = writeln!(s, "    r = r ^ fn_{d}(r % 13u + 1u);");
        }
        let _ = writeln!(s, "    return r;");
        let _ = writeln!(s, "}}");
    }
    s
}

fn graph_opts(seed: u64, workers: usize) -> Options {
    Options {
        l2_trials: 2,
        seed,
        workers,
        force_pool: workers > 1,
        ..Options::default()
    }
}

proptest! {
    /// The scheduler contract over the whole program family the synthetic
    /// Table 5 code bases are drawn from: for random call graphs, the
    /// rendered output (specs, theorems, metrics, deterministic stats) is
    /// byte-identical at workers {1, 2, 4, 8} — all oversubscribed on a
    /// small host, hence `force_pool` — and an incremental `Session`
    /// re-run over a dirty cone converges to the same bytes at every
    /// worker count.
    #[test]
    fn random_call_graphs_are_byte_identical_at_any_worker_count(
        seed in 0u64..1_000_000,
        n in 2usize..8,
        density_pct in 20usize..101,
        pick in 0usize..1_000,
    ) {
        let g = codegen::gen_call_graph(seed, n, density_pct as f64 / 100.0);
        let base = cparser::parse_and_check(&src_from_graph(&g, None)).unwrap();
        let edited_src = src_from_graph(&g, Some(pick % n));
        let edited = cparser::parse_and_check(&edited_src).unwrap();

        let reference = render(&translate_program(&base, &graph_opts(seed, 1)).unwrap());
        let edited_ref = render(&translate_program(&edited, &graph_opts(seed, 1)).unwrap());
        prop_assert_ne!(&reference, &edited_ref, "the edit must be observable");

        for workers in [2usize, 4, 8] {
            let o = graph_opts(seed, workers);
            let scratch = translate_program(&base, &o).unwrap();
            prop_assert_eq!(
                &reference,
                &render(&scratch),
                "graph {:?}: workers={} diverges from sequential", g, workers
            );

            // Incremental re-run with a dirty cone: translate the base,
            // then the edited program, through one session. The second
            // run answers the clean cone from the store and must still
            // match a from-scratch sequential translation byte-for-byte.
            let sess = Session::new(o);
            sess.translate_program(&base).unwrap();
            let incr = sess.translate_program(&edited).unwrap();
            prop_assert!(
                incr.stats.cached_nodes > 0 || n == 1,
                "dirty-cone re-run must hit the store"
            );
            prop_assert_eq!(
                &edited_ref,
                &render(&incr),
                "graph {:?}: incremental at workers={} diverges", g, workers
            );
        }
    }
}

/// First-error reporting is part of the determinism contract: a program
/// with several independently failing functions must surface the same
/// `Diag` (phase, function, message) no matter how many workers raced on
/// it. The sources mix failing and healthy functions so the pipeline has
/// real work in flight when the failure is selected.
#[test]
fn first_diag_is_identical_at_every_worker_count() {
    let cases: &[(&str, &str)] = &[
        (
            "two frontend failures pick the first in source order",
            "unsigned ok_a(unsigned x) { return x + 1u; }\n\
             unsigned bad_b(unsigned x) { goto out; out: return x; }\n\
             unsigned bad_c(unsigned x) { switch (x) { default: return x; } }\n",
        ),
        (
            "simpl failure beats healthy siblings",
            "unsigned inc(unsigned x) { return x + 1u; }\n\
             unsigned spin(unsigned n) { unsigned i = 0u; while (inc(i) < n) { i = i + 1u; } return i; }\n\
             unsigned tail(unsigned x) { return inc(x) * 2u; }\n",
        ),
    ];
    for (what, src) in cases {
        let reference = match translate(src, &graph_opts(11, 1)) {
            Err(d) => format!("{:?}|{:?}|{}", d.phase, d.function, d),
            Ok(_) => panic!("{what}: expected a failure"),
        };
        for workers in [2usize, 4, 8] {
            let got = match translate(src, &graph_opts(11, workers)) {
                Err(d) => format!("{:?}|{:?}|{}", d.phase, d.function, d),
                Ok(_) => panic!("{what}: expected a failure at workers={workers}"),
            };
            assert_eq!(reference, got, "{what}: Diag drifted at workers={workers}");
        }
    }
}
