//! Fig 2 end to end: `max` through every pipeline level, with the exact
//! output shapes the paper shows.

use autocorres::{translate, Options};
use casestudies::sources::MAX;
use ir::state::State;
use ir::value::Value;
use monadic::MonadResult;

#[test]
fn parser_output_is_the_verbose_simpl_of_fig2() {
    let out = translate(MAX, &Options::default()).unwrap();
    let simpl = out.simpl.function("max").unwrap().to_string();
    // The conservative, literal translation: TRY/CATCH, the exception ghost
    // variable, THROW, and the DontReach guard.
    for needle in ["TRY", "CATCH", "global_exn_var", "THROW", "GUARD DontReach", "IF {|"] {
        assert!(simpl.contains(needle), "missing {needle} in:\n{simpl}");
    }
}

#[test]
fn autocorres_output_is_ideal_max() {
    let out = translate(MAX, &Options::default()).unwrap();
    let max = out.wa.function("max").unwrap();
    // The paper: "AutoCorres's output of the max function in Fig 2
    // precisely matches Isabelle's built-in definition of max".
    assert_eq!(max.body.to_string(), "return (if a < b then b else a)");
    assert_eq!(max.ret_ty, ir::ty::Ty::Int);
    assert_eq!(max.params[0].1, ir::ty::Ty::Int);
}

#[test]
fn behaviour_matches_ideal_max_on_ideal_integers() {
    let out = translate(MAX, &Options::default()).unwrap();
    for (a, b) in [(3i64, 5i64), (-7, 2), (0, 0), (i64::from(i32::MAX), -1)] {
        let (r, _) = monadic::exec_fn(
            &out.wa,
            "max",
            &[Value::int(a), Value::int(b)],
            State::conc_empty(),
            1000,
        )
        .unwrap();
        assert_eq!(r, MonadResult::Normal(Value::int(a.max(b))));
    }
}

#[test]
fn every_theorem_replays() {
    let out = translate(MAX, &Options::default()).unwrap();
    out.check_all().unwrap();
}

#[test]
fn word_level_and_ideal_level_agree_via_the_refinement_chain() {
    // Differential test across the entire chain: run the Simpl program on
    // word arguments and the WA output on their abstractions.
    use rand::Rng;
    let out = translate(MAX, &Options::default()).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    use rand::SeedableRng;
    for _ in 0..200 {
        let a: i32 = rng.gen();
        let b: i32 = rng.gen();
        let (sv, _) = simpl::exec_fn(
            &out.simpl,
            "max",
            &[Value::i32(a), Value::i32(b)],
            out.simpl.initial_state(),
            10_000,
        )
        .unwrap();
        let (wv, _) = monadic::exec_fn(
            &out.wa,
            "max",
            &[Value::int(i64::from(a)), Value::int(i64::from(b))],
            State::conc_empty(),
            10_000,
        )
        .unwrap();
        // rx = sint: the ideal result is the sint of the word result.
        let Value::Word(w) = sv else { panic!() };
        assert_eq!(wv, MonadResult::Normal(Value::Int(w.sint())));
    }
}
