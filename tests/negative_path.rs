//! Negative-path end-to-end tests: deliberately wrong C programs whose
//! refuted VCs must yield *validated* concrete counterexamples.
//!
//! Every case asserts the full tentpole contract: the extracted input
//! genuinely falsifies the spec under concrete interpretation, the
//! counterexample carries a statement-level span, and the seed artifact
//! round-trips through serialization to an identical verdict.
//!
//! `regen_artifacts` (ignored by default) regenerates the checked-in
//! `tests/corpus/cex-*.seed` files and the golden trace:
//!
//! ```text
//! cargo test --test negative_path regen_artifacts -- --ignored
//! ```

use std::path::{Path, PathBuf};

use autocorres::{translate, Options, Output};
use counterexample::{analyze, playback, validate_input, Cex, FnSpec, Seed};
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{LoopAnn, RV};

fn u32w(n: &str) -> Ty {
    let _ = n;
    Ty::U32
}

/// One deliberately wrong program: name, C source, spec.
struct WrongProgram {
    name: &'static str,
    src: &'static str,
    spec: FnSpec,
}

/// Off-by-one loop bound: `i <= n` counts one past `n`.
fn off_by_one() -> WrongProgram {
    let src = "unsigned count(unsigned n) {\n\
        unsigned i = 0u;\n\
        while (i <= n) {\n\
            i = i + 1u;\n\
        }\n\
        return i;\n\
    }";
    let n = || Expr::var("n");
    let i = || Expr::var("i");
    WrongProgram {
        name: "count",
        src,
        spec: FnSpec {
            pre: Expr::binop(BinOp::Lt, n(), Expr::u32(1000)),
            post: Expr::eq(Expr::var(RV), n()),
            anns: vec![LoopAnn {
                inv: Expr::and(
                    Expr::binop(
                        BinOp::Le,
                        i(),
                        Expr::binop(BinOp::Add, n(), Expr::u32(1)),
                    ),
                    Expr::binop(BinOp::Lt, n(), Expr::u32(1000)),
                ),
                measure: None,
                var_tys: vec![("i".into(), u32w("i")), ("n".into(), u32w("n"))],
            }],
        },
    }
}

/// Signed overflow: `x + 1` is undefined at `INT_MAX` — the guard VC is
/// refuted with the magic constant only the solver model can supply.
fn signed_overflow() -> WrongProgram {
    let src = "int inc(int x) {\n\
        return x + 1;\n\
    }";
    WrongProgram {
        name: "inc",
        src,
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::tt(),
            anns: vec![],
        },
    }
}

/// Bad heap walk: dereferences `p->next` without a NULL check.
fn bad_heap_walk() -> WrongProgram {
    let src = "struct node { unsigned data; struct node *next; };\n\
        unsigned second(struct node *p) {\n\
        return p->next->data;\n\
    }";
    WrongProgram {
        name: "second",
        src,
        spec: FnSpec {
            pre: Expr::is_valid(Ty::Struct("node".into()), Expr::var("p")),
            post: Expr::tt(),
            anns: vec![],
        },
    }
}

/// Wrong recursion base case: `fact(0)` returns 0, so `fact` is never
/// `>= 1`. Recursion is outside the VCG fragment, exercising the
/// execution-search fallback (VC name `exec`).
fn wrong_base_case() -> WrongProgram {
    let src = "unsigned fact(unsigned n) {\n\
        if (n == 0u) {\n\
            return 0u;\n\
        }\n\
        return n * fact(n - 1u);\n\
    }";
    WrongProgram {
        name: "fact",
        src,
        spec: FnSpec {
            pre: Expr::binop(BinOp::Lt, Expr::var("n"), Expr::u32(6)),
            post: Expr::binop(BinOp::Le, Expr::u32(1), Expr::var(RV)),
            anns: vec![],
        },
    }
}

/// Flipped comparison: returns the *minimum*.
fn flipped_max() -> WrongProgram {
    let src = "int badmax(int a, int b) {\n\
        if (a < b) {\n\
            return a;\n\
        }\n\
        return b;\n\
    }";
    WrongProgram {
        name: "badmax",
        src,
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::and(
                Expr::binop(BinOp::Le, Expr::var("a"), Expr::var(RV)),
                Expr::binop(BinOp::Le, Expr::var("b"), Expr::var(RV)),
            ),
            anns: vec![],
        },
    }
}

/// Wrong accumulator: the loop adds 2 per iteration but the spec claims
/// the result equals `n`.
fn double_counter() -> WrongProgram {
    let src = "unsigned dbl(unsigned n) {\n\
        unsigned r = 0u;\n\
        unsigned i = 0u;\n\
        while (i < n) {\n\
            r = r + 2u;\n\
            i = i + 1u;\n\
        }\n\
        return r;\n\
    }";
    let n = || Expr::var("n");
    let i = || Expr::var("i");
    let r = || Expr::var("r");
    WrongProgram {
        name: "dbl",
        src,
        spec: FnSpec {
            pre: Expr::binop(BinOp::Lt, n(), Expr::u32(100)),
            post: Expr::eq(Expr::var(RV), n()),
            anns: vec![LoopAnn {
                inv: Expr::and(
                    Expr::eq(r(), Expr::binop(BinOp::Add, i(), i())),
                    Expr::and(
                        Expr::binop(BinOp::Le, i(), n()),
                        Expr::binop(BinOp::Lt, n(), Expr::u32(100)),
                    ),
                ),
                measure: None,
                var_tys: vec![
                    ("i".into(), u32w("i")),
                    ("n".into(), u32w("n")),
                    ("r".into(), u32w("r")),
                ],
            }],
        },
    }
}

/// Definite overflow caught *statically*: under the branch refinement
/// `x > 2147483600` the interval analysis proves the addition guard false
/// on every path through the branch — no solver model needed to know the
/// program is wrong. The counterexample extractor then produces a concrete
/// witness for the refuted guard VC.
fn definite_overflow_add() -> WrongProgram {
    let src = "int bump(int x) {\n\
        if (x > 2147483600) {\n\
            return x + 100;\n\
        }\n\
        return x;\n\
    }";
    WrongProgram {
        name: "bump",
        src,
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::tt(),
            anns: vec![],
        },
    }
}

/// The mirror image at the negative end of the range: `x - 100` underflows
/// for every `x < -2147483600`, and the refined interval proves it.
fn definite_underflow_sub() -> WrongProgram {
    let src = "int sink(int x) {\n\
        if (x < -2147483600) {\n\
            return x - 100;\n\
        }\n\
        return x;\n\
    }";
    WrongProgram {
        name: "sink",
        src,
        spec: FnSpec {
            pre: Expr::tt(),
            post: Expr::tt(),
            anns: vec![],
        },
    }
}

fn all_programs() -> Vec<WrongProgram> {
    vec![
        off_by_one(),
        signed_overflow(),
        bad_heap_walk(),
        wrong_base_case(),
        flipped_max(),
        double_counter(),
        definite_overflow_add(),
        definite_underflow_sub(),
    ]
}

/// Runs extraction for one wrong program and checks the full contract.
fn check_program(p: &WrongProgram) -> (Output, Cex) {
    let out = translate(p.src, &Options::default())
        .unwrap_or_else(|e| panic!("{}: translate failed: {e}", p.name));
    let analysis = analyze(&out, p.name, &p.spec)
        .unwrap_or_else(|e| panic!("{}: analyze failed: {e}", p.name));
    let cex = analysis
        .first_cex()
        .unwrap_or_else(|| panic!("{}: no counterexample extracted", p.name))
        .clone();

    // (a) The payload is marked validated and the input actually
    // falsifies the spec when re-run through the interpreter.
    assert!(cex.info.validated, "{}: unvalidated counterexample", p.name);
    let conc0 = cex
        .input_state(&out.simpl.tenv)
        .unwrap_or_else(|e| panic!("{}: input state broken: {e}", p.name));
    assert!(
        validate_input(
            &out,
            p.name,
            &p.spec,
            &cex.info.vc,
            cex.info.span,
            &cex.args,
            &conc0
        )
        .is_some(),
        "{}: extracted input does not falsify the spec on replay",
        p.name
    );

    // (c) Statement-level span: present, and not the degenerate 1:1
    // function-header position.
    let span = cex
        .info
        .span
        .unwrap_or_else(|| panic!("{}: counterexample has no span", p.name));
    assert!(
        span.line > 1,
        "{}: span {span} points at the function header, not a statement",
        p.name
    );

    // The diagnostic carries the structured payload.
    let diag = cex.diag();
    assert!(
        diag.counterexample.is_some(),
        "{}: diag lost the payload",
        p.name
    );

    // (b) Seed round-trip: render → parse → playback gives the identical
    // verdict and observed outcome.
    let seed = Seed::from_cex(&cex, &p.spec, p.src);
    let reparsed = Seed::parse(&seed.render())
        .unwrap_or_else(|e| panic!("{}: seed does not reparse: {e}", p.name));
    assert_eq!(reparsed.function, p.name);
    assert_eq!(reparsed.observed, cex.observed, "{}", p.name);
    let pb = playback(&seed.render())
        .unwrap_or_else(|e| panic!("{}: playback failed: {e}", p.name));
    assert!(
        pb.verdict_matches,
        "{}: playback verdict drifted:\n{}",
        p.name,
        pb.seed.describe_input()
    );
    assert!(
        pb.observed_matches,
        "{}: playback observed outcome drifted:\n{}",
        p.name,
        pb.seed.describe_input()
    );

    (out, cex)
}

#[test]
fn off_by_one_loop_bound_yields_counterexample() {
    let p = off_by_one();
    let (_, cex) = check_program(&p);
    // The refuted obligation is a loop VC, not the main path.
    assert!(cex.info.vc.starts_with("loop"), "vc = {}", cex.info.vc);
}

#[test]
fn signed_overflow_yields_magic_constant() {
    let p = signed_overflow();
    let (_, cex) = check_program(&p);
    // Only x = INT_MAX overflows; grid and random search never try it, so
    // the value must have come from the solver model.
    let x = cex
        .info
        .model
        .iter()
        .find(|(n, _)| n == "x")
        .map(|(_, v)| v.clone())
        .expect("x in assignment");
    assert_eq!(
        x,
        ir::value::Value::i32(i32::MAX),
        "expected the INT_MAX magic constant"
    );
    assert_eq!(cex.observed, counterexample::Observed::Fault);
}

#[test]
fn bad_heap_walk_yields_faulting_heap() {
    let p = bad_heap_walk();
    let (_, cex) = check_program(&p);
    // The falsifying input is a genuine heap shape: p valid (pre) but the
    // walk faults, and the cells are recorded in the payload.
    assert_eq!(cex.observed, counterexample::Observed::Fault);
    assert!(
        !cex.info.heap.is_empty(),
        "heap-walk counterexample should carry heap cells"
    );
}

#[test]
fn wrong_recursion_base_case_yields_counterexample() {
    let p = wrong_base_case();
    let (_, cex) = check_program(&p);
    // Recursion falls back to the execution search.
    assert_eq!(cex.info.vc, "exec");
    // Only n = 0 exposes the wrong base case directly.
    assert_eq!(cex.args, vec![ir::value::Value::u32(0)]);
}

#[test]
fn flipped_max_yields_counterexample() {
    let p = flipped_max();
    let (_, cex) = check_program(&p);
    assert_eq!(cex.info.vc, "main");
}

#[test]
fn wrong_loop_accumulator_yields_counterexample() {
    let p = double_counter();
    let (_, cex) = check_program(&p);
    assert!(cex.info.vc.starts_with("loop"), "vc = {}", cex.info.vc);
}

/// Shared contract of the two definite-overflow programs: the abstract
/// interpreter refutes the guard on its own (a `ProvedFalse` verdict and a
/// `definite-overflow` lint, before any solver involvement), and the
/// extractor still produces a concrete, replayable witness.
fn check_absint_refutes(p: &WrongProgram) -> Cex {
    let (out, cex) = check_program(p);
    let report = &out.absint[p.name].report;
    assert!(
        report.refuted() > 0,
        "{}: abstract interpretation did not refute the guard statically",
        p.name
    );
    let diags = out.lint_diags();
    assert!(
        diags.iter().any(|d| {
            d.function.as_deref() == Some(p.name) && d.message.starts_with("definite-overflow")
        }),
        "{}: no definite-overflow lint emitted: {diags:?}",
        p.name
    );
    // The guard surfaces as the refuted main-path VC.
    assert_eq!(cex.info.vc, "main", "{}", p.name);
    cex
}

/// The signed value of the model's binding for `x`.
fn model_x(cex: &Cex) -> i64 {
    cex.info
        .model
        .iter()
        .find(|(n, _)| n == "x")
        .and_then(|(_, v)| v.as_word())
        .expect("x bound to a word in the model")
        .signed_value()
}

#[test]
fn definite_overflow_is_caught_by_absint_alone() {
    let cex = check_absint_refutes(&definite_overflow_add());
    // Every refined value overflows; the witness must come from the
    // refined range, not a boundary guess.
    let x = model_x(&cex);
    assert!(x > 2_147_483_600, "witness x = {x} outside the refined range");
}

#[test]
fn definite_underflow_is_caught_by_absint_alone() {
    let cex = check_absint_refutes(&definite_underflow_sub());
    let x = model_x(&cex);
    assert!(x < -2_147_483_600, "witness x = {x} outside the refined range");
}

#[test]
fn every_program_in_suite_is_refutable() {
    // The suite invariant the corpus regeneration relies on: all eight
    // programs extract, none is accidentally correct.
    assert_eq!(all_programs().len(), 8);
}

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Regenerates the checked-in seed corpus and the golden trace. Run with
/// `--ignored` after an intentional format or extraction change.
#[test]
#[ignore = "writes tests/corpus and tests/golden artifacts"]
fn regen_artifacts() {
    for (k, p) in all_programs().iter().enumerate() {
        let (_, cex) = check_program(p);
        let seed = Seed::from_cex(&cex, &p.spec, p.src);
        let path = repo_path(&format!("tests/corpus/cex-{:03}.seed", k + 1));
        std::fs::write(&path, seed.render()).unwrap();
        eprintln!("wrote {}", path.display());
    }
    let p = flipped_max();
    let (_, cex) = check_program(&p);
    let path = repo_path("tests/golden/cex_trace.txt");
    std::fs::write(&path, &cex.trace).unwrap();
    eprintln!("wrote {}", path.display());
}

/// The golden divergence trace is byte-identical across pipeline worker
/// counts (determinism of extraction, search, and rendering).
#[test]
fn golden_trace_is_worker_count_independent() {
    let p = flipped_max();
    let golden = std::fs::read_to_string(repo_path("tests/golden/cex_trace.txt"))
        .expect("tests/golden/cex_trace.txt exists (regen with --ignored regen_artifacts)");
    for workers in [1usize, 2, 4] {
        let opts = Options {
            workers,
            ..Options::default()
        };
        let out = translate(p.src, &opts).unwrap();
        let analysis = analyze(&out, p.name, &p.spec).unwrap();
        let cex = analysis.first_cex().expect("refuted");
        assert_eq!(
            cex.trace, golden,
            "trace drifted from golden at workers = {workers}"
        );
    }
}
