//! End-to-end refinement validation: for each case study, the Simpl program
//! (the trusted parser output) and the final AutoCorres output are run
//! differentially on random heaps and arguments — the executable meaning of
//! the composed theorem chain L1 ∘ L2 ∘ HL ∘ WA.

use autocorres::{translate, Options, Output};
use ir::state::State;
use ir::ty::Ty;
use ir::value::Value;
use kernel::AbsFun;
use monadic::MonadResult;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the Simpl function on a concrete state and the WA function on the
/// lifted state with abstracted arguments; whenever the abstract run
/// succeeds, the concrete run must succeed with related results and the
/// lifted final heaps must agree.
fn differential(out: &Output, fname: &str, heap_types: &[Ty], trials: u32, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let f = out.wa.function(fname).unwrap();
    let simpl_f = out.simpl.function(fname).unwrap();
    let mut decided = 0;
    for i in 0..trials {
        let conc = autocorres::testing::gen_state(&mut rng, &out.simpl.tenv, heap_types, 4);
        let args: Vec<Value> = simpl_f
            .params
            .iter()
            .map(|(_, t)| autocorres::testing::random_arg(&mut rng, t, heap_types, 4))
            .collect();
        let abs_args: Vec<Value> = args
            .iter()
            .zip(&simpl_f.params)
            .map(|(v, (_, t))| AbsFun::for_ty(t).apply(v).unwrap())
            .collect();
        let abs_state = State::Abs(heapmodel::lift_state(&conc, &out.simpl.tenv, heap_types));
        let abs_run = monadic::exec_fn(&out.wa, fname, &abs_args, abs_state, 400_000);
        let (abs_val, abs_final) = match abs_run {
            Ok((MonadResult::Normal(v), st)) => (v, st),
            // Abstract failure (guards) or timeout: the refinement claims
            // nothing for this input.
            _ => continue,
        };
        let conc_run = simpl::exec_fn(
            &out.simpl,
            fname,
            &args,
            State::Conc(conc),
            400_000,
        );
        let (conc_val, conc_final) =
            conc_run.unwrap_or_else(|e| panic!("{fname} trial {i}: concrete faults: {e}"));
        // Result relation: the final return type tells us the abstraction
        // the word result went through.
        let expect = match (&conc_val, &f.ret_ty) {
            (Value::Word(w), Ty::Nat) => Value::Nat(w.unat()),
            (Value::Word(w), Ty::Int) => Value::Int(w.sint()),
            (other, _) => other.clone(),
        };
        assert_eq!(abs_val, expect, "{fname} trial {i}: results unrelated");
        // Final heaps agree after lifting.
        let State::Conc(cf) = conc_final else { unreachable!() };
        let lifted = heapmodel::lift_state(&cf, &out.simpl.tenv, heap_types);
        let State::Abs(af) = abs_final else { unreachable!() };
        assert_eq!(lifted.heaps, af.heaps, "{fname} trial {i}: heaps differ");
        decided += 1;
    }
    assert!(decided > 0, "{fname}: no trial was decidable");
}

#[test]
fn reverse_refines_end_to_end() {
    let out = translate(casestudies::sources::REVERSE, &Options::default()).unwrap();
    differential(&out, "reverse", &[Ty::Struct("node".into())], 60, 41);
}

#[test]
fn schorr_waite_refines_end_to_end() {
    let out = translate(casestudies::sources::SCHORR_WAITE, &Options::default()).unwrap();
    differential(&out, "schorr_waite", &[Ty::Struct("node".into())], 40, 42);
}

#[test]
fn swap_refines_end_to_end() {
    let out = translate(casestudies::sources::SWAP, &Options::default()).unwrap();
    differential(&out, "swap", &[Ty::U32], 80, 43);
}

#[test]
fn suzuki_refines_end_to_end() {
    let out = translate(casestudies::sources::SUZUKI, &Options::default()).unwrap();
    differential(&out, "suzuki", &[Ty::Struct("node".into())], 60, 44);
}

#[test]
fn midpoint_refines_end_to_end() {
    let out = translate(casestudies::sources::MIDPOINT, &Options::default()).unwrap();
    differential(&out, "mid", &[], 200, 45);
}
