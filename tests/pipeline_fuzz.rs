//! Whole-system fuzzing: random synthetic C programs through the complete
//! pipeline, with every theorem replayed and every function checked for
//! end-to-end refinement between the parser level and the final output.

use autocorres::{translate, Options};
use ir::ty::Ty;

fn fuzz_profile(seed: u64, functions: usize) {
    let profile = codegen::Profile {
        name: "fuzz",
        loc: functions * 10,
        functions,
    };
    let src = codegen::generate(&profile, seed);
    let opts = Options {
        l2_trials: 10,
        seed,
        ..Options::default()
    };
    let out = translate(&src, &opts)
        .unwrap_or_else(|e| panic!("seed {seed}: pipeline failed: {e}\n{src}"));
    out.check_all()
        .unwrap_or_else(|e| panic!("seed {seed}: checker rejected: {e}"));

    let heap_types = vec![Ty::Struct("obj".into())];
    let names: Vec<String> = out.wa.fns.keys().cloned().collect();
    let mut total_decided = 0;
    for name in &names {
        total_decided +=
            autocorres::testing::check_e2e_refinement(&out, name, &heap_types, 12, seed ^ 0x55);
    }
    assert!(
        total_decided > 0,
        "seed {seed}: no trial decidable across {} functions",
        names.len()
    );
}

#[test]
fn fuzz_seed_1() {
    fuzz_profile(1, 12);
}

#[test]
fn fuzz_seed_2() {
    fuzz_profile(2, 12);
}

#[test]
fn fuzz_seed_3() {
    fuzz_profile(3, 12);
}

#[test]
fn fuzz_seed_4() {
    fuzz_profile(4, 12);
}

#[test]
fn fuzz_seed_5() {
    fuzz_profile(5, 16);
}
