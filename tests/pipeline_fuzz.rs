//! Whole-system fuzzing: random synthetic C programs through the complete
//! pipeline, with every theorem replayed and every function checked for
//! end-to-end refinement between the parser level and the final output.
//!
//! The fixed seeds live in a checked-in corpus (`tests/corpus/*.seed`) so a
//! failing configuration can be named, re-run alone, and new regressions
//! added as data rather than code. On failure the generated C source is
//! printed so the program can be reproduced without re-running the
//! generator.

use std::path::{Path, PathBuf};

use autocorres::{translate, Options};

/// Every corpus entry, replayed by the named tests below.
/// `corpus_dir_matches_replayed_names` fails if this list and the
/// `tests/corpus` directory drift apart.
///
/// Two kinds of entry share the directory: `seed-*` files name a fuzz
/// configuration (generator seed + function count) to re-run through the
/// whole pipeline, and `cex-*` files are counterexample seeds
/// (`format = cex-v1`) replayed through concrete playback — each one a
/// verification failure checked in as a regression test.
const CORPUS: &[&str] = &[
    "cex-001", "cex-002", "cex-003", "cex-004", "cex-005", "cex-006", "cex-007", "cex-008",
    "cex-009", "seed-001", "seed-002", "seed-003", "seed-004", "seed-005",
];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// A parsed `tests/corpus/<name>.seed` entry.
struct SeedEntry {
    seed: u64,
    functions: usize,
}

fn load_entry(name: &str) -> SeedEntry {
    let path = corpus_dir().join(format!("{name}.seed"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus entry {} unreadable: {e}", path.display()));
    let mut seed = None;
    let mut functions = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((k, v)) = line.split_once('=') else {
            panic!("{name}.seed: malformed line `{line}`");
        };
        match k.trim() {
            "seed" => seed = Some(v.trim().parse().expect("seed is a u64")),
            "functions" => functions = Some(v.trim().parse().expect("functions is a usize")),
            other => panic!("{name}.seed: unknown key `{other}`"),
        }
    }
    SeedEntry {
        seed: seed.unwrap_or_else(|| panic!("{name}.seed: missing `seed`")),
        functions: functions.unwrap_or_else(|| panic!("{name}.seed: missing `functions`")),
    }
}

/// Replays a counterexample seed (`format = cex-v1`): re-translates the
/// embedded C source, rebuilds the recorded input state, re-runs the
/// function, and re-checks that the input still falsifies the spec with
/// the same observed outcome. On mismatch the concrete input state is
/// printed so the failure can be reproduced by hand.
fn replay_cex(name: &str) {
    let path = corpus_dir().join(format!("{name}.seed"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus entry {} unreadable: {e}", path.display()));
    let pb = counterexample::playback(&text)
        .unwrap_or_else(|e| panic!("corpus {name}: playback failed: {e}"));
    assert!(
        pb.verdict_matches,
        "corpus {name}: recorded input no longer falsifies the spec\n{}",
        pb.seed.describe_input()
    );
    assert!(
        pb.observed_matches,
        "corpus {name}: observed outcome drifted (recorded {})\n{}",
        pb.seed.observed.render(),
        pb.seed.describe_input()
    );
}

/// Replays one corpus entry by name. Panics with the generated C source on
/// any failure so the offending program is visible in the test log.
fn replay(name: &str) {
    let entry = load_entry(name);
    let seed = entry.seed;
    let profile = codegen::Profile {
        name: "fuzz",
        loc: entry.functions * 10,
        functions: entry.functions,
    };
    let src = codegen::generate(&profile, seed);
    let opts = Options {
        l2_trials: 10,
        seed,
        ..Options::default()
    };
    let out = translate(&src, &opts)
        .unwrap_or_else(|e| panic!("corpus {name} (seed {seed}): pipeline failed: {e}\n{src}"));
    out.check_all()
        .unwrap_or_else(|e| panic!("corpus {name} (seed {seed}): checker rejected: {e}\n{src}"));

    // Heap types come from the generated program itself (its struct
    // definitions and pointer parameters), not a hardcoded list — the
    // generator's type vocabulary can grow without this test silently
    // fuzzing states that alias no heap cell.
    let heap_types = autocorres::testing::heap_types_of(&out.simpl.tenv, &out.l1);
    assert!(
        !heap_types.is_empty(),
        "corpus {name}: no heap types found in generated program\n{src}"
    );
    let names: Vec<String> = out.wa.fns.keys().cloned().collect();
    let mut total_decided = 0;
    for fname in &names {
        total_decided +=
            autocorres::testing::check_e2e_refinement(&out, fname, &heap_types, 12, seed ^ 0x55);
    }
    assert!(
        total_decided > 0,
        "corpus {name} (seed {seed}): no trial decidable across {} functions\n{src}",
        names.len()
    );
}

#[test]
fn corpus_dir_matches_replayed_names() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "seed"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut named: Vec<String> = CORPUS.iter().map(|s| (*s).to_owned()).collect();
    named.sort();
    assert_eq!(
        on_disk, named,
        "tests/corpus/*.seed and the CORPUS list have drifted"
    );
}

#[test]
fn corpus_seed_001() {
    replay("seed-001");
}

#[test]
fn corpus_cex_001() {
    replay_cex("cex-001");
}

#[test]
fn corpus_cex_002() {
    replay_cex("cex-002");
}

#[test]
fn corpus_cex_003() {
    replay_cex("cex-003");
}

#[test]
fn corpus_cex_004() {
    replay_cex("cex-004");
}

#[test]
fn corpus_cex_005() {
    replay_cex("cex-005");
}

#[test]
fn corpus_cex_006() {
    replay_cex("cex-006");
}

#[test]
fn corpus_cex_007() {
    replay_cex("cex-007");
}

#[test]
fn corpus_cex_008() {
    replay_cex("cex-008");
}

#[test]
fn corpus_cex_009() {
    // Array out-of-bounds read (ISSUE 9); regenerated by
    // tests/array_oob_cex.rs.
    replay_cex("cex-009");
}

#[test]
fn corpus_seed_002() {
    replay("seed-002");
}

#[test]
fn corpus_seed_003() {
    replay("seed-003");
}

#[test]
fn corpus_seed_004() {
    replay("seed-004");
}

#[test]
fn corpus_seed_005() {
    replay("seed-005");
}
