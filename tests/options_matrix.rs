//! The pipeline's user-facing options, in combination: selective word
//! abstraction, selective heap abstraction (concrete functions), custom
//! rules, and the theorem bookkeeping for each choice.

use autocorres::{translate, Options};
use std::collections::BTreeSet;

const SRC: &str = "unsigned add1(unsigned x) { return x + 1u; }\n\
unsigned twice(unsigned x) { return add1(x) + add1(x); }\n\
void poke(unsigned char *p) { *p = 7u; }\n";

fn names(set: &[&str]) -> BTreeSet<String> {
    set.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn default_options_abstract_everything() {
    let out = translate(SRC, &Options::default()).unwrap();
    out.check_all().unwrap();
    assert_eq!(out.thms.l1.len(), 3);
    assert_eq!(out.thms.l2.len(), 3);
    assert_eq!(out.thms.hl.len(), 3);
    assert_eq!(out.thms.wa.len(), 3);
    for f in ["add1", "twice"] {
        assert_eq!(out.wa.function(f).unwrap().ret_ty, ir::ty::Ty::Nat, "{f}");
    }
}

#[test]
fn no_word_abstraction_stops_at_hl() {
    let out = translate(
        SRC,
        &Options {
            word_abstract_fns: Some(BTreeSet::new()),
            ..Options::default()
        },
    )
    .unwrap();
    out.check_all().unwrap();
    assert_eq!(out.thms.wa.len(), 0);
    // Final output *is* the HL output.
    for f in ["add1", "twice", "poke"] {
        assert_eq!(
            out.wa.function(f).unwrap().body,
            out.hl.function(f).unwrap().body,
            "{f}"
        );
    }
    assert_eq!(out.wa.function("twice").unwrap().ret_ty, ir::ty::Ty::U32);
}

#[test]
fn selective_word_abstraction_adapts_call_sites() {
    // Only the callee is abstracted: the word-level caller must lift its
    // arguments and re-concretise the result.
    let out = translate(
        SRC,
        &Options {
            word_abstract_fns: Some(names(&["add1"])),
            ..Options::default()
        },
    )
    .unwrap();
    out.check_all().unwrap();
    assert_eq!(out.wa.function("add1").unwrap().ret_ty, ir::ty::Ty::Nat);
    let twice = out.wa.function("twice").unwrap();
    assert_eq!(twice.ret_ty, ir::ty::Ty::U32);
    let body = twice.body.to_string();
    assert!(body.contains("unat"), "lifted argument: {body}");
    // Caller-side adaptations carry their own refines theorems.
    assert!(
        out.thms.wa.iter().filter(|(n, _)| n == "twice").count() >= 1,
        "adaptation theorem for twice"
    );
}

#[test]
fn selective_caller_abstraction_reconcretises() {
    // Only the caller is abstracted: its calls to the word-level callee
    // wrap the result with `unat` (handled inside the WA call rule).
    let out = translate(
        SRC,
        &Options {
            word_abstract_fns: Some(names(&["twice"])),
            ..Options::default()
        },
    )
    .unwrap();
    out.check_all().unwrap();
    assert_eq!(out.wa.function("add1").unwrap().ret_ty, ir::ty::Ty::U32);
    assert_eq!(out.wa.function("twice").unwrap().ret_ty, ir::ty::Ty::Nat);
    // Semantics agree with the fully-concrete program.
    let (r, _) = monadic::exec_fn(
        &out.wa,
        "twice",
        &[ir::value::Value::nat(20u64)],
        ir::state::State::conc_empty(),
        100_000,
    )
    .unwrap();
    assert_eq!(
        r,
        monadic::MonadResult::Normal(ir::value::Value::nat(42u64))
    );
}

#[test]
fn concrete_fns_and_word_abs_compose() {
    let out = translate(
        SRC,
        &Options {
            concrete_fns: names(&["poke"]),
            word_abstract_fns: Some(names(&["add1", "twice"])),
            ..Options::default()
        },
    )
    .unwrap();
    out.check_all().unwrap();
    // poke is untouched from L2 onward.
    assert_eq!(
        out.wa.function("poke").unwrap().body,
        out.l2.function("poke").unwrap().body
    );
    assert_eq!(out.thms.hl.len(), 2);
    assert_eq!(out.thms.wa.len(), 2);
}

#[test]
fn seeds_are_deterministic() {
    let a = translate(SRC, &Options { seed: 7, ..Options::default() }).unwrap();
    let b = translate(SRC, &Options { seed: 7, ..Options::default() }).unwrap();
    for f in ["add1", "twice", "poke"] {
        assert_eq!(
            a.wa.function(f).unwrap().body,
            b.wa.function(f).unwrap().body,
            "{f}"
        );
    }
}

#[test]
fn trial_budget_is_respected_in_theorems() {
    let out = translate(
        SRC,
        &Options {
            l2_trials: 7,
            ..Options::default()
        },
    )
    .unwrap();
    // Every L2 theorem records the requested differential-testing budget.
    for (name, thm) in &out.thms.l2 {
        let dbg = format!("{thm:?}");
        assert!(dbg.contains("Tested"), "{name} should be exec-tested: {dbg}");
    }
}
