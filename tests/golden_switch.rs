//! Golden snapshot of a `switch` with fallthrough: the desugared WA spec
//! (single scrutinee evaluation, match-index selection, fallthrough
//! windows) must be byte-identical to the committed artifact at every
//! worker count — the same discipline `golden_quickstart.rs` applies to
//! the paper's Fig 2.
//!
//! To update after an intentional output change, replace
//! `tests/golden/switch_wa.txt` with the new pretty-printing and explain
//! the diff in the PR.

use autocorres::{translate, Options};

/// `case 2` falls through into `case 3`, so `classify(2) = 21`; `case 0`
/// shares an arm with `case 1`.
const SWITCH_SRC: &str = "unsigned classify(int x) {\n\
    \x20   unsigned r = 0u;\n\
    \x20   switch (x) {\n\
    \x20       case 0:\n\
    \x20       case 1:\n\
    \x20           r = 10u;\n\
    \x20           break;\n\
    \x20       case 2:\n\
    \x20           r = 20u;\n\
    \x20       case 3:\n\
    \x20           r += 1u;\n\
    \x20           break;\n\
    \x20       default:\n\
    \x20           r = 99u;\n\
    \x20   }\n\
    \x20   return r;\n\
    }\n";

const GOLDEN: &str = include_str!("golden/switch_wa.txt");

fn wa_pretty(workers: usize) -> String {
    let opts = Options {
        workers,
        ..Options::default()
    };
    let out = translate(SWITCH_SRC, &opts).expect("switch translates");
    out.check_all().expect("theorems replay");
    format!("{}", out.wa.function("classify").expect("classify is translated"))
}

#[test]
fn switch_wa_spec_matches_committed_golden() {
    for workers in [1, 2, 4] {
        assert_eq!(
            wa_pretty(workers),
            GOLDEN,
            "WA pretty-printing differs from tests/golden/switch_wa.txt at {workers} worker(s)"
        );
    }
}
