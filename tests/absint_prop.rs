//! Properties of the abstract-interpretation phase (ISSUE 8):
//!
//! 1. **Soundness**: every guard the phase discharges statically is also
//!    valid according to the independent solver oracle, and every minted
//!    `absint_discharge` theorem replays through the proof kernel.
//! 2. **Non-interference**: disabling the phase (`no_absint`) leaves the
//!    translation verdicts — specs, refinement theorems, metrics — byte
//!    identical; the phase only *adds* its report.
//! 3. **Determinism**: the lint set is identical at 1, 2, 4, and 8
//!    workers.
//!
//! A separate golden test pins the lint output for the checked-in demo
//! program (`tests/golden/lint_demo.c`), the same file the tier-1 lint
//! smoke feeds to the CLI.

use std::fmt::Write as _;

use autocorres::{translate, Options, Output};
use codegen::{generate_mix, Mix, Profile};
use proptest::prelude::*;

/// The translation verdicts alone — specs, refinement theorems, metrics —
/// excluding the stats summary (whose `absint` row differs on/off by
/// design). Mirrors the bench's on/off byte-identity gate.
fn verdict_fingerprint(out: &Output) -> String {
    let mut s = String::new();
    for ctx_fns in [&out.l1.fns, &out.hl.fns, &out.wa.fns] {
        for (name, f) in ctx_fns {
            let _ = writeln!(s, "{name}\n{f}");
        }
    }
    for (name, f) in &out.l2.fns {
        let _ = writeln!(s, "{name}\n{f}");
    }
    for (phase, name, thm) in out.thms.iter() {
        let _ = writeln!(s, "{phase} {name} {thm} {:?}", thm.side());
    }
    let _ = writeln!(
        s,
        "{:?} {:?} {}",
        out.parser_metrics(),
        out.output_metrics(),
        out.total_proof_size()
    );
    s
}

/// Renders the lint diagnostics to comparable lines.
fn lint_lines(out: &Output) -> Vec<String> {
    out.lint_diags()
        .iter()
        .map(|d| {
            let at = match (&d.function, d.span) {
                (Some(f), Some(s)) => format!("{f}:{}:{}", s.line, s.col),
                (Some(f), None) => f.clone(),
                _ => String::new(),
            };
            format!("warning[{at}]: {}", d.message)
        })
        .collect()
}

fn gen_program(seed: u64) -> String {
    let profile = Profile {
        name: "absint-prop",
        loc: 60,
        functions: 4,
    };
    generate_mix(&profile, &Mix::audit(), seed)
}

fn opts(seed: u64) -> Options {
    Options {
        seed,
        l2_trials: 4,
        workers: 1,
        ..Options::default()
    }
}

proptest! {
    /// Every statically discharged guard is solver-valid, and the minted
    /// discharge theorems replay through the kernel.
    #[test]
    fn discharged_guards_are_solver_valid(seed in 0u64..4096) {
        let src = gen_program(seed);
        let out = translate(&src, &opts(seed))
            .unwrap_or_else(|e| panic!("seed={seed}: translate failed: {e}"));
        let stats = audit::check_discharges(&out, &format!("seed={seed}"));
        prop_assert!(
            stats.disagreements.is_empty(),
            "solver refuted a discharged guard: {:?}",
            stats.disagreements
        );
        out.check_absint()
            .unwrap_or_else(|e| panic!("seed={seed}: discharge replay failed: {e}"));
    }

    /// Disabling the phase leaves every translation verdict byte-identical
    /// and reports zero guards.
    #[test]
    fn output_unchanged_with_absint_disabled(seed in 0u64..4096) {
        let src = gen_program(seed);
        let on = translate(&src, &opts(seed)).expect("absint-on translate");
        let off = translate(
            &src,
            &Options {
                no_absint: true,
                ..opts(seed)
            },
        )
        .expect("absint-off translate");
        prop_assert_eq!(off.stats.guards_total, 0);
        prop_assert!(off.lint_diags().is_empty(), "lints with phase disabled");
        prop_assert_eq!(verdict_fingerprint(&on), verdict_fingerprint(&off));
    }

    /// The lint set does not depend on the worker count.
    #[test]
    fn lint_set_identical_across_worker_counts(seed in 0u64..4096) {
        let src = gen_program(seed);
        let base = translate(&src, &opts(seed)).expect("translate at 1 worker");
        let want = lint_lines(&base);
        for workers in [2usize, 4, 8] {
            let out = translate(
                &src,
                &Options {
                    workers,
                    ..opts(seed)
                },
            )
            .unwrap_or_else(|e| panic!("seed={seed} workers={workers}: {e}"));
            prop_assert_eq!(
                &want,
                &lint_lines(&out),
                "lint set differs at {} workers",
                workers
            );
        }
    }
}

/// Golden lint snapshot: the demo program's warnings are pinned in
/// `tests/golden/lint_demo.txt` (counterexample lines are attached by the
/// CLI and checked by the tier-1 smoke; here we pin the warning lines).
#[test]
fn lint_demo_golden() {
    let src = include_str!("golden/lint_demo.c");
    let golden = include_str!("golden/lint_demo.txt");
    let out = translate(src, &Options::default()).expect("demo translates");
    let got = lint_lines(&out);
    let want: Vec<String> = golden
        .lines()
        .filter(|l| l.starts_with("warning"))
        .map(str::to_owned)
        .collect();
    assert_eq!(
        got, want,
        "lint output drifted from tests/golden/lint_demo.txt — if the \
         change is intended, regenerate it via the tier-1 lint smoke recipe"
    );
    // All four lint kinds are represented.
    for kind in ["definite-overflow", "use-before-init", "dead-store", "unreachable"] {
        assert!(
            got.iter().any(|l| l.contains(kind)),
            "demo no longer triggers `{kind}`"
        );
    }
}
