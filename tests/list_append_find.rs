//! Two further list case studies, exercised end to end on random heaps:
//! in-place append (destructive tail splice) and find (returning a pointer
//! at the abstract level — pointers survive word abstraction untouched).

use autocorres::{translate, Options};
use casestudies::lists::{build_list, list_data, node_ty, walk_list};
use ir::state::State;
use ir::value::{Ptr, Value};
use monadic::MonadResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SRC: &str = "struct node { struct node *next; unsigned data; };\n\
struct node *append(struct node *a, struct node *b) {\n\
    struct node *cur = a;\n\
    if (!a) return b;\n\
    while (cur->next) { cur = cur->next; }\n\
    cur->next = b;\n\
    return a;\n\
}\n\
struct node *find(struct node *p, unsigned needle) {\n\
    while (p) {\n\
        if (p->data == needle) return p;\n\
        p = p->next;\n\
    }\n\
    return p;\n\
}\n";

fn pipeline() -> &'static autocorres::Output {
    static OUT: std::sync::OnceLock<autocorres::Output> = std::sync::OnceLock::new();
    OUT.get_or_init(|| translate(SRC, &Options::default()).expect("append/find translate"))
}

#[test]
fn append_and_find_translate_and_check() {
    let out = pipeline();
    out.check_all().unwrap();
    // `find` returns a pointer: word abstraction leaves both the parameter
    // `p` and the result type alone, abstracting only `needle`.
    let find = out.wa.function("find").unwrap();
    assert_eq!(find.ret_ty, node_ty().ptr_to());
    assert_eq!(find.params[0].1, node_ty().ptr_to());
    assert_eq!(find.params[1].1, ir::ty::Ty::Nat);
}

#[test]
fn append_splices_in_place_on_random_lists() {
    let out = pipeline();
    let tenv = out.wa.tenv.clone();
    let mut rng = StdRng::seed_from_u64(41);
    for round in 0..60 {
        let n_a = rng.gen_range(0..6);
        let n_b = rng.gen_range(0..6);
        let data_a: Vec<u32> = (0..n_a).map(|_| rng.gen_range(0..100)).collect();
        let data_b: Vec<u32> = (0..n_b).map(|_| rng.gen_range(0..100)).collect();
        let mut conc = ir::state::ConcState::default();
        let (pa, addrs_a) = build_list(&mut conc, &tenv, 0x1000, &data_a);
        let (pb, addrs_b) = build_list(&mut conc, &tenv, 0x8000, &data_b);
        let abs = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
        let (r, st) = monadic::exec_fn(
            &out.wa,
            "append",
            &[Value::Ptr(pa), Value::Ptr(pb)],
            State::Abs(abs),
            1_000_000,
        )
        .unwrap();
        let MonadResult::Normal(Value::Ptr(head)) = r else {
            panic!("append returned {r:?}");
        };
        let State::Abs(final_abs) = st else { unreachable!() };
        // The result is the concatenation, sharing both lists' nodes.
        let walked = walk_list(&final_abs, &head, 64).expect("acyclic");
        let expect_addrs: Vec<u64> =
            addrs_a.iter().chain(&addrs_b).copied().collect();
        assert_eq!(walked, expect_addrs, "round {round}");
        let expect_data: Vec<u32> =
            data_a.iter().chain(&data_b).copied().collect();
        assert_eq!(list_data(&final_abs, &walked), expect_data, "round {round}");
    }
}

#[test]
fn find_returns_first_match_or_null() {
    let out = pipeline();
    let tenv = out.wa.tenv.clone();
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..60 {
        let n = rng.gen_range(0..8);
        let data: Vec<u32> = (0..n).map(|_| rng.gen_range(0..6)).collect();
        let needle: u32 = rng.gen_range(0..6);
        let mut conc = ir::state::ConcState::default();
        let (p, addrs) = build_list(&mut conc, &tenv, 0x1000, &data);
        let abs = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
        let (r, _) = monadic::exec_fn(
            &out.wa,
            "find",
            &[Value::Ptr(p), Value::nat(u64::from(needle))],
            State::Abs(abs),
            1_000_000,
        )
        .unwrap();
        let MonadResult::Normal(Value::Ptr(got)) = r else {
            panic!("find returned {r:?}");
        };
        let expect = data
            .iter()
            .position(|&d| d == needle)
            .map_or(0, |i| addrs[i]);
        assert_eq!(got.addr, expect, "find {needle} in {data:?}");
    }
}

#[test]
fn append_guards_reject_invalid_lists() {
    // Appending to a list whose tail points into untagged memory must fail
    // a validity guard rather than corrupt anything.
    let out = pipeline();
    let tenv = out.wa.tenv.clone();
    let mut conc = ir::state::ConcState::default();
    let (pa, addrs) = build_list(&mut conc, &tenv, 0x1000, &[1, 2]);
    let (pb, _) = build_list(&mut conc, &tenv, 0x8000, &[3]);
    // Corrupt: tail now points at an untagged address.
    let abs = {
        let mut abs = heapmodel::lift_state(&conc, &tenv, &[node_ty()]);
        let h = abs.heaps.get_mut(&node_ty()).unwrap();
        let tail = h
            .get(addrs[1])
            .unwrap()
            .with_field("next", Value::Ptr(Ptr::new(0xDEAD0, node_ty())))
            .unwrap();
        h.set(addrs[1], tail);
        abs
    };
    let r = monadic::exec_fn(
        &out.wa,
        "append",
        &[Value::Ptr(pa), Value::Ptr(pb)],
        State::Abs(abs),
        1_000_000,
    );
    assert!(
        matches!(r, Err(monadic::MonadFault::Failure(_))),
        "dangling tail must fail a guard: {r:?}"
    );
}
