/* Lint demo: one function per lint kind. Exercised by the --lint golden
 * smoke in scripts/tier1.sh and by tests/lint_golden.rs; the expected
 * warnings live in lint_demo.txt next to this file. */

int shadowed(int a) {
    int x = a + 1;
    x = 2;
    return x;
}

int tail(int a) {
    return a;
    a = 2;
    return a;
}

int maybe(int a) {
    int x;
    if (a < 0) {
        x = 1;
    }
    return x;
}

int boom(int x) {
    if (x > 2147483645) {
        return x + 10;
    }
    return x;
}
