/* Lint demo: one function per lint kind. Exercised by the --lint golden
 * smoke in scripts/tier1.sh and by tests/lint_golden.rs; the expected
 * warnings live in lint_demo.txt next to this file. */

int shadowed(int a) {
    int x = a + 1;
    x = 2;
    return x;
}

int tail(int a) {
    return a;
    a = 2;
    return a;
}

int maybe(int a) {
    int x;
    if (a < 0) {
        x = 1;
    }
    return x;
}

int boom(int x) {
    if (x > 2147483645) {
        return x + 10;
    }
    return x;
}

unsigned widened(int s) {
    /* The widened subset (ISSUE 9): arrays, switch with fallthrough,
     * compound assignment, qualifiers — each still subject to the same
     * lints as the older syntax. */
    const unsigned one = 1u;
    unsigned acc = 0u;
    unsigned a[4];
    a[0] = one;
    a[1] = 2u;
    a[2] = 3u;
    a[3] = 4u;
    switch (s) {
        case 0:
            acc += a[0];
        case 1: /* fallthrough */
            acc += a[1];
            break;
        default:
            acc += a[2];
            break;
    }
    acc += one; /* dead store: acc is never read again */
    return a[3];
}

int peeked(int s) {
    int b[2];
    if (s > 0) {
        b[0] = s;
    }
    /* use-before-init: `b` is only initialised on one path */
    return b[0];
}
