//! Golden snapshot of the quickstart example's final output: the
//! pretty-printed WA spec of `max` (the paper's Fig 2) must be
//! byte-identical to the committed artifact at every worker count.
//! Catches both accidental spec drift (an abstraction phase producing a
//! different term) and scheduler nondeterminism leaking into outputs.
//!
//! To update after an intentional output change, replace
//! `tests/golden/quickstart_wa.txt` with the new pretty-printing and
//! explain the diff in the PR.

use autocorres::{translate, Options};

/// The same source `examples/quickstart.rs` uses.
const QUICKSTART_SRC: &str = "int max(int a, int b) {\n    if (a < b)\n        return b;\n    return a;\n}\n";

const GOLDEN: &str = include_str!("golden/quickstart_wa.txt");

fn wa_pretty(workers: usize) -> String {
    let opts = Options {
        workers,
        ..Options::default()
    };
    let out = translate(QUICKSTART_SRC, &opts).expect("quickstart translates");
    out.check_all().expect("theorems replay");
    format!("{}", out.wa.function("max").expect("max is translated"))
}

#[test]
fn quickstart_wa_spec_matches_committed_golden_single_worker() {
    assert_eq!(
        wa_pretty(1),
        GOLDEN,
        "WA pretty-printing drifted from tests/golden/quickstart_wa.txt"
    );
}

#[test]
fn quickstart_wa_spec_matches_committed_golden_parallel() {
    // Byte-identical at a parallel worker count too: scheduling must not
    // influence the final spec.
    for workers in [2, 4] {
        assert_eq!(
            wa_pretty(workers),
            GOLDEN,
            "WA pretty-printing differs from golden at {workers} workers"
        );
    }
}
