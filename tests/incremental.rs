//! Incremental recomputation: a [`Session`] re-runs only the dirty cone.
//!
//! The phase graph keys every per-function artifact by a content digest of
//! its inputs (the function's terms, the environment, the options, and —
//! for the exec-testing phases — the transitive callee cone). Editing one
//! function must therefore re-run exactly that function in the translation
//! phases plus its transitive callers in the testing phases, answer
//! everything else from the session store, and still produce output
//! byte-identical to a from-scratch translation at any worker count.

use autocorres::{translate_program, Options, Output, Session};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Everything a consumer can observe of the output, rendered to text (the
/// same shape the parallel-determinism suite byte-compares).
fn render(out: &Output) -> String {
    let mut s = String::new();
    for (level, ctx) in [
        ("l1", &out.l1),
        ("l2", &out.l2),
        ("hl", &out.hl),
        ("wa", &out.wa),
    ] {
        for (name, f) in &ctx.fns {
            let _ = writeln!(s, "=== {level} {name} ===\n{f}");
        }
    }
    for (phase, name, thm) in out.thms.iter() {
        let _ = writeln!(s, "--- thm {phase} {name} ---\n{thm}\n{thm:?}");
    }
    let _ = writeln!(s, "parser metrics: {:?}", out.parser_metrics());
    let _ = writeln!(s, "output metrics: {:?}", out.output_metrics());
    let _ = writeln!(s, "proof size: {}", out.total_proof_size());
    s.push_str(&out.stats.deterministic_summary());
    s
}

fn opts(workers: usize) -> Options {
    Options {
        l2_trials: 4,
        seed: 0xA11CE,
        workers,
        ..Options::default()
    }
}

/// `leaf ← mid ← top`, plus `lone` with no calls at all.
fn diamond(leaf_const: u32) -> String {
    format!(
        "unsigned leaf(unsigned x) {{ return x + {leaf_const}u; }}\n\
         unsigned mid(unsigned x) {{ return leaf(x) + 2u; }}\n\
         unsigned top(unsigned x) {{ return mid(x) ^ leaf(x); }}\n\
         unsigned lone(unsigned x) {{ return x * 3u; }}\n"
    )
}

fn phase_cached(out: &Output, phase: &str) -> usize {
    out.stats
        .phases
        .iter()
        .find(|p| p.name == phase)
        .unwrap_or_else(|| panic!("phase {phase} missing"))
        .cached
}

#[test]
fn identical_retranslation_is_a_full_cache_hit() {
    let sess = Session::new(opts(2));
    let first = sess.translate(&diamond(1)).unwrap();
    assert_eq!(first.stats.dirty_fns, 4, "fresh session: everything dirty");
    assert_eq!(first.stats.cached_nodes, 0);

    let second = sess.translate(&diamond(1)).unwrap();
    assert_eq!(second.stats.dirty_fns, 0, "nothing changed");
    // Every per-function job of every phase (7 phases including absint)
    // was answered from the store.
    assert_eq!(second.stats.cached_nodes, 7 * 4);
    assert_eq!(render(&first), render(&second), "cache changed the output");
}

#[test]
fn editing_one_function_reruns_exactly_the_dirty_cone() {
    let sess = Session::new(opts(2));
    sess.translate(&diamond(1)).unwrap();

    // Edit `leaf`: its callers `mid` and `top` must re-test (their
    // differential tests execute the edited callee), `lone` must not.
    let incr = sess.translate(&diamond(9)).unwrap();
    assert_eq!(
        incr.stats.dirty_fns, 3,
        "dirty cone is leaf + mid + top, not {}",
        incr.stats.dirty_fns
    );
    // Translation phases are per-function: only `leaf` re-ran there.
    assert_eq!(phase_cached(&incr, "l1"), 3);
    assert_eq!(phase_cached(&incr, "hl"), 3);
    // l2 merges translation (3 cached) + testing (only `lone`'s callee
    // cone is unchanged: 1 cached).
    assert_eq!(phase_cached(&incr, "l2"), 4);
    // Exec-testing phases re-run the whole caller cone.
    assert_eq!(phase_cached(&incr, "wa"), 1);
    assert_eq!(phase_cached(&incr, "adapt"), 1);

    // Byte-identical to from-scratch translation of the edited source, at
    // several worker counts.
    let reference = render(&incr);
    for workers in [1usize, 2, 8] {
        let typed = cparser::parse_and_check(&diamond(9)).unwrap();
        let fresh = translate_program(&typed, &opts(workers)).unwrap();
        assert_eq!(
            reference,
            render(&fresh),
            "incremental output diverges from scratch (workers={workers})"
        );
    }
}

#[test]
fn session_replay_skips_previously_checked_proofs() {
    let sess = Session::new(opts(2));
    let out = sess.translate(&diamond(1)).unwrap();
    let first = sess.check_all_report(&out, 2).unwrap();
    assert!(first.cache_misses > 0, "first replay validates something");
    let again = sess.check_all_report(&out, 2).unwrap();
    assert_eq!(
        again.cache_misses, 0,
        "second replay of identical theorems must be all hits"
    );
    assert!(again.cache_hits > 0);
    // An incremental re-translation reuses cached theorems, so its replay
    // through the same session is also fully cached.
    let out2 = sess.translate(&diamond(1)).unwrap();
    let third = sess.check_all_report(&out2, 1).unwrap();
    assert_eq!(third.cache_misses, 0);
}

/// A call-graph-shaped program: `fn_i` calls exactly `deps[i]` (all lower
/// indices), plus a per-function constant that `bump` edits.
fn src_from_graph(g: &[Vec<usize>], bump: Option<usize>) -> String {
    let mut s = String::new();
    for (i, deps) in g.iter().enumerate() {
        let c = if bump == Some(i) { 7 } else { 1 };
        let _ = writeln!(s, "unsigned fn_{i}(unsigned x) {{");
        let _ = writeln!(s, "    unsigned r = x + {c}u;");
        for d in deps {
            let _ = writeln!(s, "    r = r ^ fn_{d}(r % 13u + 1u);");
        }
        let _ = writeln!(s, "    return r;");
        let _ = writeln!(s, "}}");
    }
    s
}

/// The edited function plus its transitive callers.
fn caller_cone(g: &[Vec<usize>], k: usize) -> BTreeSet<usize> {
    let mut cone = BTreeSet::from([k]);
    loop {
        let before = cone.len();
        for (i, deps) in g.iter().enumerate() {
            if deps.iter().any(|d| cone.contains(d)) {
                cone.insert(i);
            }
        }
        if cone.len() == before {
            return cone;
        }
    }
}

proptest! {
    #[test]
    fn random_single_edit_invalidates_exactly_the_caller_cone(
        seed in 0u64..1_000_000,
        n in 2usize..7,
        density_pct in 20usize..101,
        pick in 0usize..1_000,
        workers in 1usize..5,
    ) {
        let g = codegen::gen_call_graph(seed, n, density_pct as f64 / 100.0);
        let k = pick % n;
        let o = Options {
            l2_trials: 2,
            seed: 3,
            workers,
            ..Options::default()
        };
        let sess = Session::new(o.clone());
        let base = cparser::parse_and_check(&src_from_graph(&g, None)).unwrap();
        sess.translate_program(&base).unwrap();

        let edited = cparser::parse_and_check(&src_from_graph(&g, Some(k))).unwrap();
        let incr = sess.translate_program(&edited).unwrap();
        let cone = caller_cone(&g, k);
        prop_assert_eq!(
            incr.stats.dirty_fns,
            cone.len(),
            "graph {:?}, edited fn_{}: dirty set must be the caller cone {:?}",
            g, k, cone
        );
        // The untouched functions' translation jobs all hit the store.
        prop_assert_eq!(phase_cached(&incr, "l1"), n - 1);

        let fresh = translate_program(&edited, &o).unwrap();
        prop_assert_eq!(
            render(&incr),
            render(&fresh),
            "incremental output diverges from scratch"
        );
    }
}
