//! An out-of-bounds array index must surface exactly like any other
//! refuted obligation: a validated concrete counterexample anchored at
//! the offending *statement*, packaged into a replayable seed.
//!
//! The checked-in regression seed `tests/corpus/cex-009.seed` is the
//! rendered form of this extraction; `corpus_cex_009` in
//! `tests/pipeline_fuzz.rs` (and the tier-1 `--playback` loop) replay it.

use autocorres::{translate, Options};
use counterexample::{analyze, FnSpec, Observed, Seed};
use ir::expr::Expr;
use ir::value::Value;

/// `a[i]` is only guarded by the conditional for `i ≤ 2`; any `i ≥ 4`
/// reaches the read with the bounds guard `0 ≤ i ∧ i < 4` false.
const OOB_SRC: &str = "int oob(int i) {\n\
    \x20   int a[4];\n\
    \x20   a[0] = i;\n\
    \x20   a[1] = 2;\n\
    \x20   a[2] = 3;\n\
    \x20   a[3] = 4;\n\
    \x20   if (i > 2) {\n\
    \x20       return a[i];\n\
    \x20   }\n\
    \x20   return a[0];\n\
    }\n";

fn trivial_spec() -> FnSpec {
    FnSpec {
        pre: Expr::tt(),
        post: Expr::tt(),
        anns: vec![],
    }
}

fn extract() -> (autocorres::Output, counterexample::Cex) {
    let out = translate(OOB_SRC, &Options::default()).expect("oob translates");
    out.check_all().expect("theorems replay");
    let analysis = analyze(&out, "oob", &trivial_spec()).expect("analysis runs");
    let cex = analysis
        .first_cex()
        .expect("the out-of-bounds read is refutable")
        .clone();
    (out, cex)
}

#[test]
fn oob_read_yields_validated_counterexample_with_statement_span() {
    let (_, cex) = extract();
    assert!(
        cex.info.validated,
        "counterexample must be re-validated by concrete execution: {}",
        cex.info
    );
    // The observation is a guard fault (the bounds guard), not a normal
    // return that merely violates a postcondition.
    assert_eq!(cex.observed, Observed::Fault, "{}", cex.info);
    // Anchored at a statement inside the body, not the function header.
    let span = cex.info.span.expect("counterexample carries a span");
    assert!(span.line > 1, "statement span expected, got {span}");
    // The model names the one input, and it is genuinely out of bounds.
    let (name, v) = cex
        .info
        .model
        .iter()
        .find(|(n, _)| n == "i")
        .expect("model binds `i`");
    assert_eq!(name, "i");
    match v {
        Value::Word(w) => {
            let i = w.signed_value();
            assert!(!(0..4).contains(&i), "model i = {i} is in bounds");
        }
        other => panic!("unexpected model value {other:?}"),
    }
}

#[test]
fn oob_counterexample_seed_replays() {
    let (_, cex) = extract();
    let seed = Seed::from_cex(&cex, &trivial_spec(), OOB_SRC);
    let pb = counterexample::playback(&seed.render()).expect("seed plays back");
    assert!(pb.verdict_matches, "input no longer falsifies the guard");
    assert!(pb.observed_matches, "observed outcome drifted");
}

#[test]
fn checked_in_seed_matches_regeneration() {
    // Extraction is deterministic, so the checked-in regression seed must
    // be byte-identical to a fresh extraction. Regenerate it with
    // `cargo test --test array_oob_cex -- --ignored` after an intentional
    // format or extraction change.
    let (_, cex) = extract();
    let seed = Seed::from_cex(&cex, &trivial_spec(), OOB_SRC);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/cex-009.seed");
    let on_disk = std::fs::read_to_string(path).expect("cex-009.seed is checked in");
    assert_eq!(on_disk, seed.render(), "regenerate tests/corpus/cex-009.seed");
}

#[test]
#[ignore = "writes tests/corpus/cex-009.seed; run after an intentional extraction change"]
fn regenerate_checked_in_seed() {
    let (_, cex) = extract();
    let seed = Seed::from_cex(&cex, &trivial_spec(), OOB_SRC);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/cex-009.seed");
    std::fs::write(path, seed.render()).expect("seed written");
}
