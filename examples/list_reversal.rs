//! The Sec 5.2 case study: in-place linked-list reversal.
//!
//! Shows the Fig 6 translation, runs the final specification on a real
//! heap, and checks Mehta & Nipkow's correctness statement plus the
//! termination measure at every loop iteration.
//!
//! Run with: `cargo run --example list_reversal`

use casestudies::reverse::{mehta_nipkow_post, pipeline, run_reverse};
use casestudies::sources::REVERSE;

fn main() {
    println!("C source (Fig 6):\n{REVERSE}");
    let out = pipeline();

    println!("── AutoCorres output ──");
    println!("{}", out.wa.function("reverse").unwrap());

    out.check_all().expect("theorems replay");
    println!("theorems checked ✓\n");

    for data in [vec![], vec![7], vec![1, 2, 3], (0..8).collect::<Vec<u32>>()] {
        let run = run_reverse(&out, &data);
        let ok = mehta_nipkow_post(&run, &data);
        println!(
            "reverse {:?} → head {} — List next q (rev Ps): {}",
            data,
            run.head,
            if ok { "holds ✓" } else { "FAILS ✗" }
        );
        assert!(ok);
    }

    println!("\nProof accounting (the Sec 5.2 port):");
    let script = casestudies::schorr_waite::reverse_proof_script();
    for c in &script.components {
        println!("  {:<38} {:>4} lines", c.name, c.lines);
    }
    println!("  total: {} lines", script.total());
}
