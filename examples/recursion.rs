//! Recursive functions through the pipeline: the final specifications
//! recurse on the *abstract* functions over ideal arithmetic, with the
//! overflow obligations surfaced as guards.
//!
//! ```bash
//! cargo run --example recursion
//! ```

use autocorres::{translate, Options};
use ir::state::State;
use ir::value::Value;

const SRC: &str = "unsigned fact(unsigned n) {\n\
  if (n == 0u) return 1u;\n\
  return n * fact(n - 1u);\n\
}\n\
unsigned is_odd(unsigned n);\n\
unsigned is_even(unsigned n) { if (n == 0u) return 1u; return is_odd(n - 1u); }\n\
unsigned is_odd(unsigned n) { if (n == 0u) return 0u; return is_even(n - 1u); }\n";

fn main() {
    let out = translate(SRC, &Options::default()).expect("translates");
    println!("C input:\n{SRC}");
    println!("AutoCorres output:\n");
    for f in ["fact", "is_even", "is_odd"] {
        println!("{}", out.wa.function(f).unwrap());
    }
    println!("Running the abstract factorial:");
    for n in [0u64, 5, 12, 13] {
        let r = monadic::exec_fn(
            &out.wa,
            "fact",
            &[Value::nat(n)],
            State::conc_empty(),
            10_000_000,
        );
        match r {
            Ok((monadic::MonadResult::Normal(v), _)) => println!("  fact({n}) = {v}"),
            Err(monadic::MonadFault::Failure(g)) => {
                println!("  fact({n}) fails its {g} guard — 13! exceeds UINT_MAX");
            }
            other => println!("  fact({n}): {other:?}"),
        }
    }
    out.check_all().expect("derivations replay");
    let thms = out.thms.l1.len() + out.thms.l2.len() + out.thms.hl.len() + out.thms.wa.len();
    println!("\nAll {thms} theorems replayed by the proof checker ✓");
}
