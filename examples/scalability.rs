//! A fast version of the Table 5 scalability experiment: translate the two
//! smaller synthetic code bases and the real Schorr-Waite source, printing
//! the size/cost comparison rows (the full sweep including the seL4-sized
//! program lives in `cargo bench --bench table5_scalability`).
//!
//! Run with: `cargo run --release --example scalability`

use std::time::Instant;

use autocorres::{translate_program, Options};

fn main() {
    println!("Table 5 (small profiles) — parser output vs AutoCorres output");
    println!(
        "{:<16} {:>6} {:>4} | {:>9} {:>9} | {:>13} | {:>13}",
        "Program", "LoC", "Fns", "parser", "AutoCorres", "spec lines", "avg term size"
    );
    println!("{:-<86}", "");
    for profile in &codegen::TABLE5[2..] {
        let src = if profile.name == "Schorr-Waite" {
            casestudies::sources::SCHORR_WAITE.to_owned()
        } else {
            codegen::generate(profile, 0xAC)
        };
        let loc = src.lines().filter(|l| !l.trim().is_empty()).count();

        let t0 = Instant::now();
        let typed = cparser::parse_and_check(&src).unwrap();
        let _simpl = simpl::translate_program(&typed).unwrap();
        let parser_s = t0.elapsed().as_secs_f64();

        let opts = Options {
            l2_trials: 2,
            seed: 0xAC,
            ..Options::default()
        };
        let t1 = Instant::now();
        let out = translate_program(&typed, &opts).unwrap();
        let ac_s = t1.elapsed().as_secs_f64();

        let pm = out.parser_metrics();
        let om = out.output_metrics();
        let fns = out.wa.fns.len();
        println!(
            "{:<16} {:>6} {:>4} | {:>8.3}s {:>8.3}s | {:>5} → {:>5} | {:>5} → {:>5}",
            profile.name,
            loc,
            fns,
            parser_s,
            ac_s,
            pm.lines,
            om.lines,
            pm.term_size / fns.max(1),
            om.term_size / fns.max(1),
        );
    }
    println!("{:-<86}", "");
    println!("(AutoCorres output is consistently smaller; translation is a one-off cost)");
}
