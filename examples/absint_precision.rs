//! Prints the static guard-discharge precision for every case-study
//! source (the EXPERIMENTS.md precision table is generated from this).
//!
//! Run with: `cargo run --release --example absint_precision`

use autocorres::{translate, Options};
use casestudies::sources;

fn main() {
    println!("{:<16} {:>6} {:>10} {:>7}", "case study", "guards", "discharged", "%");
    for (name, src) in [
        ("max", sources::MAX),
        ("gcd", sources::GCD),
        ("midpoint", sources::MIDPOINT),
        ("swap", sources::SWAP),
        ("suzuki", sources::SUZUKI),
        ("reverse", sources::REVERSE),
        ("schorr-waite", sources::SCHORR_WAITE),
        ("memset", sources::MEMSET),
        ("overflow-idiom", sources::OVERFLOW_IDIOM),
    ] {
        let out = translate(src, &Options::default()).expect(name);
        let (t, d) = (out.stats.guards_total, out.stats.guards_discharged);
        let pct = if t == 0 { 0.0 } else { 100.0 * d as f64 / t as f64 };
        println!("{name:<16} {t:>6} {d:>10} {pct:>6.1}");
    }
}
