//! The Sec 4.3 example: Suzuki's challenge.
//!
//! Proves that the pointer-juggling fragment returns 4 under the
//! distinctness assumption — automatically, on the lifted heap — and shows
//! why the byte-level version is the scalability wall Tuch's shallow
//! lifting hit.
//!
//! Run with: `cargo run --example suzuki`

use std::collections::HashMap;

use autocorres::{translate, Options};
use casestudies::sources::SUZUKI;
use ir::expr::{BinOp, Expr};
use ir::ty::Ty;
use vcg::{auto, HeapModel, ProofEffort, Spec};

fn main() {
    println!("C source (Sec 4.3):\n{SUZUKI}");
    let out = translate(SUZUKI, &Options::default()).expect("pipeline runs");

    println!("── AutoCorres output ──");
    println!("{}", out.wa.function("suzuki").unwrap());
    out.check_all().expect("theorems replay");

    // {valid w,x,y,z ∧ pairwise distinct} suzuki {·rv = 4}
    let node = Ty::Struct("node".into());
    let names = ["w", "x", "y", "z"];
    let mut pre = Expr::tt();
    for n in names {
        pre = Expr::and(pre, Expr::is_valid(node.clone(), Expr::var(n)));
    }
    for i in 0..4 {
        for j in (i + 1)..4 {
            pre = Expr::and(
                pre,
                Expr::binop(BinOp::Ne, Expr::var(names[i]), Expr::var(names[j])),
            );
        }
    }
    let spec = Spec {
        pre,
        post: Expr::eq(Expr::var(vcg::wp::RV), Expr::i32(4)),
    };
    let vars: HashMap<String, Ty> = names
        .iter()
        .map(|n| ((*n).to_owned(), node.clone().ptr_to()))
        .collect();

    let body = out.hl.function("suzuki").unwrap().body.clone();
    let vcs = vcg::vcg(&body, &spec, &[], HeapModel::SplitHeaps, &out.hl.tenv).unwrap();
    let mut effort = ProofEffort::default();
    let proved = auto(&vcs[0].goal, &vars, &mut effort);
    println!(
        "split-heap VC ({} nodes): {} — {effort}",
        vcs[0].goal.term_size(),
        if proved { "auto discharges it ✓" } else { "NOT proved ✗" }
    );
    assert!(proved, "Sec 4.5: auto immediately discharges the VCs");
}
