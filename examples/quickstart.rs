//! Quickstart: translate a C function through the full AutoCorres-rs
//! pipeline and inspect every level (the paper's Fig 1 and Fig 2).
//!
//! Run with: `cargo run --example quickstart`

use autocorres::{translate, Options};

fn main() {
    let src = "int max(int a, int b) {\n    if (a < b)\n        return b;\n    return a;\n}\n";
    println!("C source (Fig 2):\n{src}");

    let opts = Options {
        workers: 4,
        ..Options::default()
    };
    let out = translate(src, &opts).expect("pipeline runs");

    println!("── parser output (Simpl, the trusted literal translation) ──");
    println!("{}", out.simpl.function("max").unwrap());

    println!("── L1 (monadic, locals in state) ──");
    println!("{}", out.l1.function("max").unwrap());

    println!("── L2 (control-flow abstraction, lambda-bound locals) ──");
    println!("{}", out.l2.function("max").unwrap());

    println!("── HL (typed split heaps) ──");
    println!("{}", out.hl.function("max").unwrap());

    println!("── WA (ideal integers) — the AutoCorres output ──");
    println!("{}", out.wa.function("max").unwrap());

    println!("── theorems ──");
    for (phase, thms) in [
        ("L1", &out.thms.l1),
        ("L2", &out.thms.l2),
        ("HL", &out.thms.hl),
        ("WA", &out.thms.wa),
    ] {
        for (name, thm) in thms {
            println!("{phase}: {name}: {thm}");
        }
    }

    let report = out
        .check_all_report(opts.workers)
        .expect("every theorem replays through the checker");
    println!(
        "\n{} theorems ({} rule applications) replayed by the proof checker on {} worker(s) ✓",
        report.checked, report.proof_nodes, report.workers
    );

    let pm = out.parser_metrics();
    let om = out.output_metrics();
    println!(
        "spec size: parser {} lines / {} nodes → AutoCorres {} lines / {} nodes",
        pm.lines, pm.term_size, om.lines, om.term_size
    );
    println!(
        "guards: {} total, {} discharged statically",
        out.stats.guards_total, out.stats.guards_discharged
    );

    println!("\n── pipeline stats ──");
    println!("{}", out.stats);
}
