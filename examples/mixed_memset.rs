//! The Sec 4.6 case study: mixing byte-level and heap-abstracted code.
//!
//! `memset_b` writes individual bytes, so it stays at the byte level; the
//! type-safe caller `zero_word` is heap-abstracted and calls it through
//! `exec_concrete`. The mixed-level Hoare triple
//! `{is_valid_w32 p} exec_concrete (memset' p 0 4) {s[p] = 0}` is checked
//! on concrete heaps.
//!
//! Run with: `cargo run --example mixed_memset`

use casestudies::memset::{check_triple, pipeline};
use casestudies::sources::MEMSET;

fn main() {
    println!("C source (Sec 4.6):\n{MEMSET}");
    let out = pipeline();

    println!("── memset_b stays at the byte level ──");
    println!("{}", out.wa.function("memset_b").unwrap());
    println!("── zero_word is abstracted; the call goes through exec_concrete ──");
    println!("{}", out.wa.function("zero_word").unwrap());

    out.check_all().expect("theorems replay");
    println!("theorems checked ✓\n");

    for initial in [0u32, 42, 0xDEAD_BEEF, u32::MAX] {
        let ok = check_triple(&out, 0x400, initial);
        println!(
            "{{is_valid p ∧ s[p] = {initial:#x}}} zero_word(p) {{s[p] = 0}}: {}",
            if ok { "holds ✓" } else { "FAILS ✗" }
        );
        assert!(ok);
    }
}
