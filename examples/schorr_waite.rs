//! The Sec 5.3 case study: the Schorr-Waite graph marking algorithm.
//!
//! Translates the Fig 8 C implementation, runs it on random graphs (cycles,
//! sharing, disconnected parts — "every graph shape is supported"), and
//! checks the ported Mehta & Nipkow postcondition: exactly the reachable
//! nodes are marked and all pointers are restored.
//!
//! Run with: `cargo run --example schorr_waite`

use casestudies::graphs::random_graph;
use casestudies::schorr_waite::{mehta_nipkow_post, pipeline, run};
use casestudies::sources::SCHORR_WAITE;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("C source (Fig 8):\n{SCHORR_WAITE}");
    let out = pipeline();

    println!("── AutoCorres output ──");
    println!("{}", out.wa.function("schorr_waite").unwrap());
    out.check_all().expect("theorems replay");
    println!("theorems checked ✓\n");

    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for n in [0usize, 1, 3, 6, 10] {
        let g = random_graph(&mut rng, n);
        let root = g.addrs.first().copied().unwrap_or(0);
        let st = run(&out, &g, root);
        let reach = g.reachable(root).len();
        let ok = mehta_nipkow_post(&g, root, &st);
        println!(
            "graph with {n:>2} nodes, {reach:>2} reachable: postcondition {}",
            if ok { "holds ✓" } else { "FAILS ✗" }
        );
        assert!(ok);
    }

    println!("\nTable 6 proof accounting (measured from the proof artefacts):");
    let script = casestudies::schorr_waite::proof_script();
    for c in &script.components {
        println!("  {:<24} {:>4} lines", c.name, c.lines);
    }
    println!(
        "  total: {} (Mehta/Nipkow: {}, Hubert/Marché: {})",
        script.total(),
        casestudies::proofs::published::MN_TOTAL,
        casestudies::proofs::published::HM_TOTAL
    );
}
