//! Independent proof-certificate checker.
//!
//! ```text
//! certcheck FILE.cert [--quiet]
//! ```
//!
//! Reads a `cert-v1` file produced by `autocorres --emit-cert`, replays
//! every proof node bottom-up through the validating kernel
//! ([`kernel::cert::check_cert`]), and exits 0 iff the whole derivation
//! checks. The binary links only the term language (`ir`) and the proof
//! kernel — none of the translation pipeline — so a certificate's
//! acceptance depends on nothing but the kernel's rule checker: a
//! mutated, truncated, or forged certificate cannot pass, because every
//! node is reconstructed through `Thm::admit` (DESIGN.md §6g).

use std::process::ExitCode;

fn run(path: &str, quiet: bool) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let report = kernel::cert::check_cert(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if !quiet {
        eprintln!(
            "{path}: OK — {} proof node(s), {} theorem(s) replayed",
            report.nodes,
            report.roots.len()
        );
        for (label, thm) in &report.roots {
            println!("{label}: [{:?}] {:?}", thm.rule(), thm.judgment());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut quiet = false;
    for a in &args {
        match a.as_str() {
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: certcheck FILE.cert [--quiet]");
                return ExitCode::FAILURE;
            }
            f if f.starts_with('-') => {
                eprintln!("certcheck: unknown flag `{f}`");
                return ExitCode::FAILURE;
            }
            f => {
                if file.replace(f.to_owned()).is_some() {
                    eprintln!("certcheck: more than one input file");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: certcheck FILE.cert [--quiet]");
        return ExitCode::FAILURE;
    };
    match run(&file, quiet) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("certcheck: REJECTED — {msg}");
            ExitCode::FAILURE
        }
    }
}
