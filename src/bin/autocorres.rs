//! Command-line front end: translate a C file and print the abstracted
//! specifications.
//!
//! ```text
//! autocorres [OPTIONS] FILE.c
//!
//!   --level l1|l2|hl|wa      pipeline level to print (default: wa)
//!   --fn NAME                print only this function (repeatable)
//!   --concrete NAME          keep NAME at the byte level (repeatable)
//!   --no-word-abs            stop after heap abstraction
//!   --word-abs NAME          word-abstract only NAME (repeatable)
//!   --trials N               differential-test budget per theorem (default 60)
//!   --seed N                 RNG seed for testing-validated rules
//!   --workers N              worker threads for the phase graph (default:
//!                            adaptive; output is identical at any count)
//!   --metrics                print Table 5-style size metrics and exit
//!   --check                  replay all theorems through the proof checker
//!   --lint[=deny]            print static-analysis lints (dead stores,
//!                            unreachable code, use-before-init, definite
//!                            overflow); `=deny` exits nonzero on any lint
//!   --no-absint              disable the abstract-interpretation phase
//!   --cache-dir DIR          persist the artifact store and replay cache in
//!                            DIR so a later run (any process) warm-starts;
//!                            corrupt or version-skewed entries degrade to
//!                            recomputation, never to different output
//!   --emit-cert FILE         export every checked theorem as a
//!                            self-contained proof certificate, replayable
//!                            offline with the `certcheck` binary
//!   --playback SEED          replay a counterexample seed file and exit
//!   --corpus DIR             sweep every .c file in DIR, print a
//!                            per-function proof-status table, and exit
//!                            nonzero on any failure
//!   --quiet                  suppress the banner
//! ```
//!
//! With `--playback` no C file argument is taken: the seed embeds the
//! source, spec, and falsifying input. The replay re-translates, re-runs,
//! and prints the divergence trace; the exit code is nonzero when the
//! recorded input no longer falsifies the spec (the regression is fixed or
//! the pipeline drifted).

use std::collections::BTreeSet;
use std::process::ExitCode;

use autocorres::{Options, Session};
use monadic::ProgramCtx;

struct Cli {
    file: String,
    level: String,
    only: Vec<String>,
    concrete: BTreeSet<String>,
    word_abs: Option<BTreeSet<String>>,
    trials: u32,
    seed: u64,
    workers: usize,
    metrics: bool,
    check: bool,
    lint: bool,
    lint_deny: bool,
    no_absint: bool,
    cache_dir: Option<String>,
    emit_cert: Option<String>,
    playback: Option<String>,
    corpus: Option<String>,
    quiet: bool,
}

fn usage() -> &'static str {
    "usage: autocorres [--level l1|l2|hl|wa] [--fn NAME]... [--concrete NAME]...\n\
     \x20                 [--no-word-abs] [--word-abs NAME]... [--trials N] [--seed N]\n\
     \x20                 [--workers N] [--metrics] [--check] [--lint[=deny]]\n\
     \x20                 [--no-absint] [--cache-dir DIR] [--emit-cert FILE]\n\
     \x20                 [--quiet] FILE.c\n\
     \x20      autocorres --playback SEED\n\
     \x20      autocorres --corpus DIR [--trials N] [--seed N] [--workers N]"
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        file: String::new(),
        level: "wa".into(),
        only: Vec::new(),
        concrete: BTreeSet::new(),
        word_abs: None,
        trials: 60,
        seed: 2014,
        workers: 0,
        metrics: false,
        check: false,
        lint: false,
        lint_deny: false,
        no_absint: false,
        cache_dir: None,
        emit_cert: None,
        playback: None,
        corpus: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--level" => {
                let v = value("--level")?;
                if !matches!(v.as_str(), "l1" | "l2" | "hl" | "wa") {
                    return Err(format!("unknown level `{v}`"));
                }
                cli.level = v;
            }
            "--fn" => cli.only.push(value("--fn")?),
            "--concrete" => {
                cli.concrete.insert(value("--concrete")?);
            }
            "--no-word-abs" => cli.word_abs = Some(BTreeSet::new()),
            "--word-abs" => {
                cli.word_abs
                    .get_or_insert_with(BTreeSet::new)
                    .insert(value("--word-abs")?);
            }
            "--trials" => {
                cli.trials = value("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                cli.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--metrics" => cli.metrics = true,
            "--check" => cli.check = true,
            "--lint" => cli.lint = true,
            "--no-absint" => cli.no_absint = true,
            f if f.starts_with("--lint=") => {
                cli.lint = true;
                match &f["--lint=".len()..] {
                    "deny" => cli.lint_deny = true,
                    "warn" => {}
                    v => return Err(format!("--lint: unknown mode `{v}` (warn|deny)")),
                }
            }
            "--cache-dir" => cli.cache_dir = Some(value("--cache-dir")?),
            "--emit-cert" => cli.emit_cert = Some(value("--emit-cert")?),
            "--playback" => cli.playback = Some(value("--playback")?),
            "--corpus" => cli.corpus = Some(value("--corpus")?),
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            f if f.starts_with('-') => return Err(format!("unknown flag `{f}`")),
            f => {
                if !cli.file.is_empty() {
                    return Err("more than one input file".into());
                }
                cli.file = f.to_owned();
            }
        }
    }
    if cli.playback.is_some() {
        if !cli.file.is_empty() {
            return Err("--playback takes no C file (the seed embeds the source)".into());
        }
    } else if cli.corpus.is_some() {
        if !cli.file.is_empty() {
            return Err("--corpus takes a directory, not a C file argument".into());
        }
    } else if cli.file.is_empty() {
        return Err(usage().to_owned());
    }
    Ok(cli)
}

/// Replays a counterexample seed file: prints the recorded input, the
/// fresh divergence trace, and whether the verdict still holds.
fn run_playback(path: &str, quiet: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let pb = counterexample::playback(&text)?;
    if !quiet {
        eprintln!(
            "replaying {path}: {} / {}",
            pb.seed.function, pb.seed.vc
        );
    }
    match &pb.cex {
        Some(cex) => {
            print!("{}", cex.trace);
            if !pb.observed_matches {
                println!(
                    "playback: input still falsifies the spec, but the observed outcome \
                     drifted (recorded {}, now {})",
                    pb.seed.observed.render(),
                    cex.observed.render()
                );
                print!("{}", pb.seed.describe_input());
                return Err("observed outcome drifted".into());
            }
            println!("playback: verdict reproduced (still falsified)");
            Ok(())
        }
        None => {
            print!("{}", pb.seed.describe_input());
            println!("playback: recorded input no longer falsifies the spec");
            Err("verdict not reproduced".into())
        }
    }
}

fn print_ctx(ctx: &ProgramCtx, only: &[String]) -> Result<(), String> {
    for name in only {
        if ctx.function(name).is_none() {
            return Err(format!("no function named `{name}`"));
        }
    }
    for (name, f) in &ctx.fns {
        if only.is_empty() || only.iter().any(|o| o == name) {
            println!("{f}");
        }
    }
    Ok(())
}

/// Prints the abstract-interpretation lints as warnings, attaching a
/// validated counterexample (via the extractor, with a trivial spec — the
/// guards themselves are the obligations) to each definite-overflow lint.
/// Returns the lint count.
fn print_lints(out: &autocorres::Output) -> Result<usize, String> {
    let mut diags = out.lint_diags();
    // Eager counterexamples for definite overflows: analyze each affected
    // function once and attach the first validated counterexample.
    let overflowing: BTreeSet<String> = out
        .absint
        .iter()
        .filter(|(_, a)| a.report.refuted() > 0)
        .map(|(n, _)| n.clone())
        .collect();
    for name in &overflowing {
        let spec = counterexample::FnSpec {
            pre: ir::expr::Expr::tt(),
            post: ir::expr::Expr::tt(),
            anns: Vec::new(),
        };
        let Ok(analysis) = counterexample::analyze(out, name, &spec) else {
            continue;
        };
        if let Some(cex) = analysis.first_cex() {
            for d in &mut diags {
                if d.function.as_deref() == Some(name.as_str())
                    && d.message.starts_with("definite-overflow")
                    && d.counterexample.is_none()
                {
                    d.counterexample = Some(Box::new(cex.info.clone()));
                }
            }
        }
    }
    for d in &diags {
        let at = match (&d.function, d.span) {
            (Some(f), Some(s)) => format!("{f}:{}:{}", s.line, s.col),
            (Some(f), None) => f.clone(),
            _ => String::new(),
        };
        println!("warning[{at}]: {}", d.message);
        if let Some(cex) = &d.counterexample {
            println!("    counterexample: {cex}");
        }
    }
    Ok(diags.len())
}

/// Sweeps a corpus directory and prints the per-function table. Exits
/// with an error when any file is rejected or any theorem fails to
/// replay, so CI can gate on a known-good corpus.
fn run_corpus(dir: &str, opts: &Options) -> Result<(), String> {
    let report = autocorres::corpus::sweep(std::path::Path::new(dir), opts)?;
    println!("{report}");
    if report.failures() > 0 {
        return Err(format!("--corpus: {} failure(s)", report.failures()));
    }
    Ok(())
}

/// Exports every theorem of `out` (refinement phases + absint discharge)
/// as a `cert-v1` proof certificate, independently replayable with the
/// `certcheck` binary.
fn emit_cert(path: &str, out: &autocorres::Output) -> Result<(), String> {
    let mut labels: Vec<(String, &kernel::Thm)> = out
        .thms
        .iter()
        .map(|(phase, name, thm)| (format!("{phase}:{name}"), thm))
        .collect();
    for (name, a) in &out.absint {
        for (idx, thm) in &a.thms {
            labels.push((format!("absint:{name}:{idx}"), thm));
        }
    }
    let roots: Vec<(&str, &kernel::Thm)> =
        labels.iter().map(|(l, t)| (l.as_str(), *t)).collect();
    let bytes = kernel::cert::encode_cert(&out.check_ctx, &roots);
    std::fs::write(path, &bytes).map_err(|e| format!("--emit-cert {path}: {e}"))?;
    Ok(())
}

fn run(cli: &Cli) -> Result<(), String> {
    if let Some(path) = &cli.playback {
        return run_playback(path, cli.quiet);
    }
    let opts_of = |cli: &Cli| Options {
        concrete_fns: cli.concrete.clone(),
        word_abstract_fns: cli.word_abs.clone(),
        l2_trials: cli.trials,
        seed: cli.seed,
        workers: cli.workers,
        no_absint: cli.no_absint,
        cache_dir: cli.cache_dir.clone().map(std::path::PathBuf::from),
        ..Options::default()
    };
    if let Some(dir) = &cli.corpus {
        return run_corpus(dir, &opts_of(cli));
    }
    let src = std::fs::read_to_string(&cli.file)
        .map_err(|e| format!("{}: {e}", cli.file))?;
    let sess = Session::new(opts_of(cli));
    if !cli.quiet {
        for w in &sess.load_report().warnings {
            eprintln!("warning: {}", w.message);
        }
    }
    let out = sess.translate(&src).map_err(|e| e.to_string())?;
    if let Some(path) = &cli.emit_cert {
        emit_cert(path, &out)?;
        if !cli.quiet {
            eprintln!(
                "wrote certificate: {} theorem(s) to {path}",
                out.thms.len() + out.absint.values().map(|a| a.thms.len()).sum::<usize>()
            );
        }
    }
    if cli.metrics {
        let pm = out.parser_metrics();
        let am = out.output_metrics();
        println!("{:<18} {:>8} {:>12}", "", "lines", "term size");
        println!("{:<18} {:>8} {:>12}", "parser output", pm.lines, pm.term_size);
        println!("{:<18} {:>8} {:>12}", "autocorres output", am.lines, am.term_size);
        if cli.cache_dir.is_some() {
            let s = &out.stats;
            println!(
                "store: hits={} misses={} rejected={} dirty_fns={}",
                s.store_hits, s.store_misses, s.store_rejected, s.dirty_fns
            );
        }
        return Ok(());
    }
    if !cli.quiet {
        let n = out.wa.fns.len();
        let thms = out.thms.l1.len() + out.thms.l2.len() + out.thms.hl.len() + out.thms.wa.len();
        eprintln!("translated {n} function(s); {thms} theorem(s) produced");
    }
    let ctx = match cli.level.as_str() {
        "l1" => &out.l1,
        "l2" => &out.l2,
        "hl" => &out.hl,
        _ => &out.wa,
    };
    print_ctx(ctx, &cli.only)?;
    if cli.lint {
        let n = print_lints(&out)?;
        if cli.lint_deny && n > 0 {
            return Err(format!("--lint=deny: {n} lint(s)"));
        }
    }
    if cli.check {
        // Through the session (not `out.check_all()`) so a `--cache-dir`
        // run persists the newly validated replay digests too.
        sess.check_all_report(&out, out.stats.workers)
            .map_err(|(f, e)| format!("proof check failed: {f}: {e}"))?;
        if !cli.quiet {
            eprintln!("all theorems replayed through the checker: OK");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("autocorres: {msg}");
            ExitCode::FAILURE
        }
    }
}
