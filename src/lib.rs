//! Meta-crate for the AutoCorres-rs workspace.
//!
//! Re-exports the main entry points so examples and integration tests can use
//! a single dependency. See the individual crates for documentation.
pub use autocorres;
pub use casestudies;
